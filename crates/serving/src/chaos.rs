//! Chaos-mode fault injection and fleet-level resilience policies.
//!
//! PRs 6–8 inject at most one scripted [`ChipDeath`](crate::ChipDeath)
//! per run. This module drives the fleet from the seeded MTBF machinery
//! of `meshslice-faults` instead: a [`ChaosSpec`] draws exponential
//! chip/link death arrivals per replica over the trace horizon, so a
//! long trace can see zero, one, or several deaths per replica, each
//! optionally followed by a repair that returns the replica to nominal
//! pricing.
//!
//! Two fleet-level policies ride along:
//!
//! - [`RouterPolicy`]: requests whose round-robin home replica sits
//!   inside a failover blackout window are re-enqueued with capped
//!   exponential backoff onto the first open replica (home preferred),
//!   under a per-request retry budget and deadline. The routing pass is
//!   a deterministic *pre-pass* over the arrival trace — it plans
//!   against the scheduled outage windows, never against simulation
//!   state — so per-replica timelines stay independent and the report
//!   stays bit-identical at any thread count.
//! - [`ShedPolicy`]: SLO-aware admission control inside each replica
//!   sheds the newest arrivals when the windowed queue depth or the
//!   projected TTFT of the backlog crosses a threshold, and can switch
//!   prefill admission to a degraded batch cap while overloaded.
//!
//! Everything here is a pure function of `(spec, seed)`: chaos draws
//! derive a per-replica seed by mixing the replica index into the chaos
//! seed, and the router consumes no randomness at all.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use meshslice_faults::FailureSpec;
use meshslice_recovery::RepairModel;
use meshslice_telemetry::ServingEvent;

use crate::arrival::Request;

/// Backoff growth cap: the retry backoff doubles per attempt but never
/// exceeds this multiple of [`RouterPolicy::backoff_secs`].
pub const BACKOFF_CAP_FACTOR: f64 = 8.0;

/// Default [`ShedPolicy::ttft_factor`]: shed when the backlog projects
/// to more than this multiple of the TTFT SLO.
pub const DEFAULT_SHED_TTFT_FACTOR: f64 = 4.0;

/// Stochastic multi-fault injection for a serving fleet: each replica
/// draws seeded exponential chip/link death arrivals from `failures`
/// over the spec's horizon, optionally followed by an exponential
/// repair that returns the replica to nominal pricing.
///
/// `None` chaos (the spec default) reproduces the single-scripted-death
/// behavior bit-for-bit; a zero-rate chaos spec (infinite MTBFs) draws
/// no deaths and is property-tested byte-identical to the nominal path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosSpec {
    /// Per-chip / per-link MTBF machinery; `horizon` bounds the window
    /// deaths are sampled over (normally the arrival-trace span).
    pub failures: FailureSpec,
    /// Repair/replacement model; `None` means a dead replica serves
    /// degraded forever (the scripted-death behavior).
    pub repair: Option<RepairModel>,
    /// Chaos seed, independent of the arrival seed.
    pub seed: u64,
}

impl ChaosSpec {
    /// A chaos spec with no repair.
    pub fn new(failures: FailureSpec, seed: u64) -> ChaosSpec {
        ChaosSpec {
            failures,
            repair: None,
            seed,
        }
    }

    /// Adds a repair model.
    pub fn with_repair(self, repair: RepairModel) -> ChaosSpec {
        ChaosSpec {
            repair: Some(repair),
            ..self
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.failures.validate().map_err(|e| e.to_string())?;
        if let Some(repair) = &self.repair {
            repair.validate()?;
        }
        Ok(())
    }

    /// Draws one replica's death schedule, sorted by time: every chip
    /// and link failure of a `num_chips`-chip replica becomes a replica
    /// death (a chip death knocks the whole replica out for the
    /// failover outage; a link death degrades the torus the same way).
    ///
    /// Deterministic in `(self, replica, num_chips)`: the replica index
    /// is mixed into the seed (splitmix-style), so schedules are
    /// independent of how replicas are scheduled onto worker threads.
    /// With a repair model, each death consumes one extra uniform draw
    /// and `repaired_at = at + outage_secs + repair draw`.
    pub fn replica_deaths(
        &self,
        replica: usize,
        num_chips: usize,
        outage_secs: f64,
    ) -> Vec<DeathEvent> {
        let seed = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(replica as u64 + 1));
        let draw = self.failures.sample(num_chips, seed);
        let times = draw.event_times();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5265_7061_6972_5253); // "RepairRS"
        times
            .into_iter()
            .map(|at| {
                let repaired_at = match &self.repair {
                    Some(m) => at + outage_secs + m.repair_secs(unit(&mut rng)),
                    None => f64::INFINITY,
                };
                DeathEvent { at, repaired_at }
            })
            .collect()
    }
}

/// One scheduled replica death of a chaos draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeathEvent {
    /// Death instant, seconds from simulation start.
    pub at: f64,
    /// When the replica returns to nominal pricing (`at` + failover
    /// outage + repair draw); `f64::INFINITY` without a repair model.
    pub repaired_at: f64,
}

/// A uniform draw in `[0, 1)` — 53 random mantissa bits.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Cross-replica failover routing: retry/backoff knobs for requests
/// stranded on a replica inside a failover blackout window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterPolicy {
    /// Retry budget per request: each retry waits one backoff and then
    /// probes for an open replica.
    pub max_retries: usize,
    /// Initial backoff, seconds; doubles per attempt, capped at
    /// [`BACKOFF_CAP_FACTOR`] times this.
    pub backoff_secs: f64,
    /// Per-request deadline, seconds past arrival: a retry that would
    /// land beyond it times the request out instead.
    pub deadline_secs: f64,
}

impl RouterPolicy {
    /// A policy proportioned to the TTFT SLO: 3 retries, half-SLO
    /// initial backoff, 60-SLO deadline.
    pub fn for_slo(slo_secs: f64) -> RouterPolicy {
        RouterPolicy {
            max_retries: 3,
            backoff_secs: slo_secs / 2.0,
            deadline_secs: 60.0 * slo_secs,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Describes the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_retries == 0 {
            return Err("router needs at least one retry".into());
        }
        if !(self.backoff_secs.is_finite() && self.backoff_secs > 0.0) {
            return Err(format!(
                "router backoff {} s must be finite and positive",
                self.backoff_secs
            ));
        }
        if !(self.deadline_secs.is_finite() && self.deadline_secs > 0.0) {
            return Err(format!(
                "router deadline {} s must be finite and positive",
                self.deadline_secs
            ));
        }
        Ok(())
    }
}

/// SLO-aware graceful degradation: shed the newest arrivals (lowest
/// priority) when the replica's backlog crosses a threshold, and
/// optionally gate prefill admission behind a degraded batch cap while
/// overloaded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShedPolicy {
    /// Shed arrivals while the waiting queue holds at least this many
    /// requests.
    pub queue_depth: usize,
    /// ... or while the backlog's projected TTFT (queued tokens priced
    /// at the nominal largest-bucket prefill rate) exceeds this
    /// multiple of the SLO.
    pub ttft_factor: f64,
    /// While overloaded, cap prefill admission at this batch size
    /// instead of the policy cap (decode drains down to it naturally).
    pub degraded_max_batch: Option<usize>,
}

impl ShedPolicy {
    /// Queue-depth shedding with the default projected-TTFT factor and
    /// no degraded cap.
    pub fn for_queue_depth(queue_depth: usize) -> ShedPolicy {
        ShedPolicy {
            queue_depth,
            ttft_factor: DEFAULT_SHED_TTFT_FACTOR,
            degraded_max_batch: None,
        }
    }

    /// Adds a degraded batch cap for overload periods.
    pub fn with_degraded_cap(self, cap: usize) -> ShedPolicy {
        ShedPolicy {
            degraded_max_batch: Some(cap),
            ..self
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Describes the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.queue_depth == 0 {
            return Err("shed queue depth must be at least 1".into());
        }
        if !(self.ttft_factor.is_finite() && self.ttft_factor > 0.0) {
            return Err(format!(
                "shed TTFT factor {} must be finite and positive",
                self.ttft_factor
            ));
        }
        if self.degraded_max_batch == Some(0) {
            return Err("degraded batch cap must be at least 1".into());
        }
        Ok(())
    }
}

/// A request the router gave up on: every candidate replica stayed
/// blacked out through the retry budget or deadline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct RouterTimeout {
    pub id: usize,
    /// Original arrival time, seconds.
    pub arrival_secs: f64,
    /// When the budget/deadline expired, seconds.
    pub at: f64,
    /// Retries spent before giving up.
    pub retries: usize,
}

/// A routed request that landed: the fleet merge restores the original
/// arrival (kept here so the restoration is bit-exact, not recomputed
/// from the effective arrival) and folds the routing delay into TTFT.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct RoutedRequest {
    pub id: usize,
    /// Original (pre-backoff) arrival time, seconds.
    pub arrival_secs: f64,
    /// Backoff delay the router added before the request landed.
    pub delay_secs: f64,
    /// Retries spent before landing.
    pub retries: usize,
}

/// The routing pre-pass output: per-replica request streams (sorted by
/// effective arrival), the router's trace events per home replica, and
/// the bookkeeping the fleet merge needs to restore user-perceived
/// arrival times.
pub(crate) struct RoutedTrace {
    /// Per-replica streams, sorted by `(arrival_secs, id)`. Routed
    /// requests carry their *effective* (post-backoff) arrival.
    pub streams: Vec<Vec<Request>>,
    /// Router events (`Retried`/`Redistributed`/`TimedOut`), attached
    /// to the request's home replica.
    pub events: Vec<Vec<ServingEvent>>,
    /// Every routed request that landed, in trace order.
    pub routed: Vec<RoutedRequest>,
    /// Requests that never landed.
    pub timeouts: Vec<RouterTimeout>,
    /// Total retry decisions.
    pub retries: usize,
    /// Requests landed off their home replica.
    pub redistributed: usize,
}

/// Routes the arrival trace around the scheduled blackout windows.
///
/// A request whose home replica (`id % replicas`) is open at its
/// arrival passes through untouched — with no blackouts the output
/// streams equal plain round-robin dispatch exactly. A stranded request
/// retries with doubling (capped) backoff; each retry probes replicas
/// in `home, home+1, …` order and lands on the first open one,
/// emitting [`ServingEvent::Retried`] per attempt and
/// [`ServingEvent::Redistributed`] when it lands off-home. Exhausting
/// the budget or deadline emits [`ServingEvent::TimedOut`].
///
/// Deterministic and simulation-state independent: blackouts are the
/// *scheduled* outage windows `[death, death + outage]`, so this runs
/// as a pre-pass before the per-replica simulations fan out.
pub(crate) fn route_requests(
    trace: &[Request],
    replicas: usize,
    blackouts: &[Vec<(f64, f64)>],
    policy: &RouterPolicy,
) -> RoutedTrace {
    let in_blackout = |r: usize, t: f64| blackouts[r].iter().any(|&(s, e)| t >= s && t < e);
    let mut out = RoutedTrace {
        streams: vec![Vec::new(); replicas],
        events: vec![Vec::new(); replicas],
        routed: Vec::new(),
        timeouts: Vec::new(),
        retries: 0,
        redistributed: 0,
    };
    for req in trace {
        let home = req.id % replicas;
        if !in_blackout(home, req.arrival_secs) {
            out.streams[home].push(*req);
            continue;
        }
        let deadline = req.arrival_secs + policy.deadline_secs;
        let max_backoff = policy.backoff_secs * BACKOFF_CAP_FACTOR;
        let mut t = req.arrival_secs;
        let mut backoff = policy.backoff_secs;
        let mut landed = None;
        let mut timed_out_at = None;
        let mut attempts = 0;
        for attempt in 1..=policy.max_retries {
            let next = t + backoff;
            if next > deadline {
                timed_out_at = Some(deadline);
                break;
            }
            t = next;
            backoff = (backoff * 2.0).min(max_backoff);
            attempts = attempt;
            out.events[home].push(ServingEvent::Retried {
                id: req.id,
                t,
                attempt,
            });
            out.retries += 1;
            if let Some(target) = (0..replicas)
                .map(|k| (home + k) % replicas)
                .find(|&r| !in_blackout(r, t))
            {
                landed = Some(target);
                break;
            }
        }
        match landed {
            Some(target) => {
                if target != home {
                    out.events[home].push(ServingEvent::Redistributed {
                        id: req.id,
                        t,
                        from: home,
                        to: target,
                    });
                    out.redistributed += 1;
                }
                out.streams[target].push(Request {
                    arrival_secs: t,
                    ..*req
                });
                out.routed.push(RoutedRequest {
                    id: req.id,
                    arrival_secs: req.arrival_secs,
                    delay_secs: t - req.arrival_secs,
                    retries: attempts,
                });
            }
            None => {
                let at = timed_out_at.unwrap_or(t);
                out.events[home].push(ServingEvent::TimedOut { id: req.id, t: at });
                out.timeouts.push(RouterTimeout {
                    id: req.id,
                    arrival_secs: req.arrival_secs,
                    at,
                    retries: attempts,
                });
            }
        }
    }
    for stream in &mut out.streams {
        stream.sort_by(|a, b| {
            a.arrival_secs
                .total_cmp(&b.arrival_secs)
                .then(a.id.cmp(&b.id))
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, at: f64) -> Request {
        Request {
            id,
            arrival_secs: at,
            prompt_tokens: 64,
            output_tokens: 8,
        }
    }

    #[test]
    fn chaos_draws_are_deterministic_and_replica_independent() {
        let chaos = ChaosSpec::new(FailureSpec::chip_mtbf(50.0, 100.0), 7);
        let a = chaos.replica_deaths(0, 16, 2.0);
        assert_eq!(a, chaos.replica_deaths(0, 16, 2.0));
        let b = chaos.replica_deaths(1, 16, 2.0);
        assert_ne!(a, b, "replicas draw independent schedules");
        for deaths in [&a, &b] {
            for w in deaths.windows(2) {
                assert!(w[0].at <= w[1].at, "schedule sorted by time");
            }
            for d in deaths.iter() {
                assert!(d.at < 100.0, "no death past the horizon");
                assert_eq!(d.repaired_at, f64::INFINITY, "no repair model");
            }
        }
    }

    #[test]
    fn zero_rate_chaos_draws_nothing() {
        let chaos = ChaosSpec::new(FailureSpec::none(), 3);
        assert!(chaos.replica_deaths(0, 64, 2.0).is_empty());
    }

    #[test]
    fn repair_bounds_the_degraded_window() {
        let chaos = ChaosSpec::new(FailureSpec::chip_mtbf(20.0, 200.0), 11)
            .with_repair(RepairModel::exponential(30.0));
        let deaths = chaos.replica_deaths(0, 8, 2.5);
        assert!(!deaths.is_empty(), "MTBF 20 s over 200 s must draw deaths");
        for d in &deaths {
            assert!(d.repaired_at.is_finite());
            assert!(
                d.repaired_at >= d.at + 2.5,
                "repair starts after the outage"
            );
        }
    }

    #[test]
    fn shorter_mtbf_draws_at_least_as_many_deaths() {
        let hot = ChaosSpec::new(FailureSpec::chip_mtbf(10.0, 100.0), 5);
        let cold = ChaosSpec::new(FailureSpec::chip_mtbf(1000.0, 100.0), 5);
        assert!(
            hot.replica_deaths(0, 16, 2.0).len() >= cold.replica_deaths(0, 16, 2.0).len(),
            "the draw structure is parameter-independent, so a shorter MTBF only pulls arrivals in"
        );
    }

    #[test]
    fn router_passes_open_replicas_through_untouched() {
        let trace = vec![req(0, 0.1), req(1, 0.2), req(2, 0.3)];
        let routed = route_requests(&trace, 2, &[vec![], vec![]], &RouterPolicy::for_slo(0.5));
        assert_eq!(routed.streams[0], vec![req(0, 0.1), req(2, 0.3)]);
        assert_eq!(routed.streams[1], vec![req(1, 0.2)]);
        assert!(routed.events.iter().all(Vec::is_empty));
        assert_eq!(routed.retries, 0);
        assert!(routed.timeouts.is_empty());
    }

    #[test]
    fn stranded_requests_redistribute_to_the_survivor() {
        // Replica 0 is out over [0, 10); replica 1 never fails.
        let trace = vec![req(0, 1.0), req(1, 1.5)];
        let policy = RouterPolicy {
            max_retries: 3,
            backoff_secs: 0.25,
            deadline_secs: 30.0,
        };
        let routed = route_requests(&trace, 2, &[vec![(0.0, 10.0)], vec![]], &policy);
        // Request 0: stranded, one retry at 1.25, lands on replica 1 —
        // ahead of request 1 in the stream, which sorts by arrival.
        assert!(routed.streams[0].is_empty());
        assert_eq!(routed.streams[1], vec![req(0, 1.25), req(1, 1.5)]);
        assert_eq!(routed.retries, 1);
        assert_eq!(routed.redistributed, 1);
        assert_eq!(
            routed.routed,
            vec![RoutedRequest {
                id: 0,
                arrival_secs: 1.0,
                delay_secs: 0.25,
                retries: 1,
            }]
        );
        assert!(matches!(
            routed.events[0][..],
            [
                ServingEvent::Retried {
                    id: 0,
                    attempt: 1,
                    ..
                },
                ServingEvent::Redistributed {
                    id: 0,
                    from: 0,
                    to: 1,
                    ..
                }
            ]
        ));
    }

    #[test]
    fn total_blackout_times_the_request_out() {
        // Both replicas dark for the whole deadline.
        let trace = vec![req(0, 0.0)];
        let policy = RouterPolicy {
            max_retries: 2,
            backoff_secs: 1.0,
            deadline_secs: 100.0,
        };
        let routed = route_requests(
            &trace,
            2,
            &[vec![(0.0, 200.0)], vec![(0.0, 200.0)]],
            &policy,
        );
        assert!(routed.streams.iter().all(Vec::is_empty));
        assert_eq!(routed.timeouts.len(), 1);
        let to = routed.timeouts[0];
        assert_eq!(to.id, 0);
        assert_eq!(to.retries, 2);
        // Budget spent at the second retry: 0 + 1 + 2 = 3 s.
        assert_eq!(to.at, 3.0);
        assert!(matches!(
            routed.events[0].last(),
            Some(ServingEvent::TimedOut { id: 0, .. })
        ));
    }

    #[test]
    fn deadline_preempts_the_retry_budget() {
        let trace = vec![req(0, 0.0)];
        let policy = RouterPolicy {
            max_retries: 50,
            backoff_secs: 1.0,
            deadline_secs: 5.0,
        };
        let routed = route_requests(&trace, 1, &[vec![(0.0, 1e6)]], &policy);
        let to = routed.timeouts[0];
        assert_eq!(to.at, 5.0, "timed out at the deadline, not the budget");
        assert!(to.retries < 50);
        // Retries at 1 s and 3 s; the next backoff (4 s) would land at
        // 7 s, past the 5 s deadline.
        assert_eq!(to.retries, 2);
    }

    #[test]
    fn request_lands_back_home_after_the_outage() {
        // Single replica: redistribution impossible, but a retry past
        // the blackout end lands home.
        let trace = vec![req(0, 0.9)];
        let policy = RouterPolicy {
            max_retries: 5,
            backoff_secs: 0.2,
            deadline_secs: 10.0,
        };
        let routed = route_requests(&trace, 1, &[vec![(0.5, 1.2)]], &policy);
        assert_eq!(routed.streams[0].len(), 1);
        let landed = routed.streams[0][0];
        assert!(landed.arrival_secs >= 1.2, "lands after the blackout");
        assert_eq!(routed.redistributed, 0, "home again, not redistributed");
        assert!(routed.retries >= 1);
    }

    #[test]
    fn policies_validate() {
        assert!(RouterPolicy::for_slo(0.5).validate().is_ok());
        assert!(RouterPolicy {
            max_retries: 0,
            ..RouterPolicy::for_slo(0.5)
        }
        .validate()
        .is_err());
        assert!(RouterPolicy {
            backoff_secs: 0.0,
            ..RouterPolicy::for_slo(0.5)
        }
        .validate()
        .is_err());
        assert!(RouterPolicy {
            deadline_secs: f64::NAN,
            ..RouterPolicy::for_slo(0.5)
        }
        .validate()
        .is_err());

        assert!(ShedPolicy::for_queue_depth(16).validate().is_ok());
        assert!(ShedPolicy::for_queue_depth(0).validate().is_err());
        assert!(ShedPolicy {
            ttft_factor: -1.0,
            ..ShedPolicy::for_queue_depth(16)
        }
        .validate()
        .is_err());
        assert!(ShedPolicy::for_queue_depth(16)
            .with_degraded_cap(0)
            .validate()
            .is_err());

        let chaos = ChaosSpec::new(FailureSpec::chip_mtbf(100.0, 10.0), 0);
        assert!(chaos.validate().is_ok());
        assert!(chaos
            .with_repair(RepairModel::exponential(0.0))
            .validate()
            .is_err());
        let bad = ChaosSpec::new(FailureSpec::chip_mtbf(-1.0, 10.0), 0);
        assert!(bad.validate().is_err());
    }
}
