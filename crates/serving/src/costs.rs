//! Batch-bucket phase-cost tables: the serving plan cache.
//!
//! Continuous batching changes the decode batch size at every step, but
//! lowering a fresh plan per step would dwarf the simulated work. The
//! fleet simulator instead quantizes both phases to power-of-two
//! *buckets* — prefill by chunk tokens, decode by batch size — and
//! prices each bucket exactly once per `(model, mesh, S)` triple:
//! schedule the four FC GeMMs with MeshSlice (weight-stationary `Rs`,
//! so weights stay resident between requests), lower once, and replay
//! the lowered plan on both the nominal engine and a degraded-torus
//! engine (one chip dead, traffic detoured). Steps then cost a table
//! lookup, and a mid-simulation chip death switches the replica from
//! the nominal to the degraded column of the same table.
//!
//! Requests falling between buckets are padded up to the next bucket —
//! the same rounding a real serving engine's CUDA-graph / XLA-program
//! cache performs.
//!
//! Building a table is the expensive part of serving simulation — the
//! fleet loop itself is just lookups — so [`CostTableCache`] dedups
//! builds across a whole tuning grid: one build per
//! `(model, mesh, S, batch-cap class)`, warmed in parallel with
//! per-worker [`RunScratch`] reuse and one shared [`ScheduleCache`],
//! then sliced down to each candidate's batch cap by
//! [`ReplicaCosts::with_max_batch`] (bit-for-bit what a direct build at
//! that cap produces).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use meshslice::autotuner::{Autotuner, ScheduleCache};
use meshslice::llm::{FcGemm, LlmConfig, TrainingSetup};
use meshslice::memory::{inference_footprint, kv_bytes_per_token, HBM_BYTES};
use meshslice::par;
use meshslice::{Dataflow, Engine, GemmProblem, MeshShape, SimConfig};
use meshslice_mesh::Torus2d;
use meshslice_sim::{degraded_torus_profile, RunScratch};

/// Largest prefill chunk (tokens) the tables are sized for.
pub const MAX_PREFILL_TOKENS: usize = 8192;

/// Context length the decode KV-streaming term is priced at. Decode is
/// memory-bound on reading the KV cache; the table prices it at a fixed
/// nominal context so bucket costs stay state-independent.
pub const NOMINAL_KV_CONTEXT: usize = 512;

/// Smallest batch cap [`CostTableCache`] builds tables at: caps below
/// this share one cached build and read a truncated view of it.
pub const CACHED_BATCH_CAP: usize = 32;

/// Typed lookup error: the phase-cost table has no buckets, so no cost
/// can be quoted. [`build_replica_costs`] never returns such a table
/// (empty tables make the build infeasible), so hitting this means a
/// hand-assembled [`ReplicaCosts`] skipped validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmptyCostTable;

impl fmt::Display for EmptyCostTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase cost table has no feasible buckets")
    }
}

impl std::error::Error for EmptyCostTable {}

/// Which engine columns a table build prices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostProfile {
    /// Price both the nominal and the degraded-torus column (two
    /// replays per GeMM). Required to simulate a [`ChipDeath`].
    ///
    /// [`ChipDeath`]: crate::fleet::ChipDeath
    Full,
    /// Price the nominal column only and mirror it into the degraded
    /// one; halves the replay work. The tuner uses this profile — it
    /// never injects failures, so the degraded column is never read.
    /// [`ServingSpec::validate`] rejects nominal-only tables when a
    /// failure is injected.
    ///
    /// [`ServingSpec::validate`]: crate::fleet::ServingSpec::validate
    NominalOnly,
}

/// The simulated cost of one phase execution at one bucket size, under
/// the nominal and the degraded (one dead chip) torus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BucketCost {
    /// Bucket size: decode batch, or prefill chunk tokens.
    pub size: usize,
    /// All-layers phase latency on the healthy mesh, seconds.
    pub nominal_secs: f64,
    /// Same phase on the degraded torus (dead chip detoured), seconds.
    pub degraded_secs: f64,
}

/// Bucketed costs of one phase, ascending by size.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseCostTable {
    /// Feasible buckets, ascending.
    pub buckets: Vec<BucketCost>,
}

impl PhaseCostTable {
    /// Cost of serving `n` units (batch rows or chunk tokens): the
    /// smallest bucket that fits, or the largest bucket if `n` exceeds
    /// every bucket (the fleet loop never builds such steps, but the
    /// table stays total). Binary search — buckets are ascending.
    ///
    /// # Errors
    ///
    /// [`EmptyCostTable`] when the table has no buckets.
    pub fn cost_secs(&self, n: usize, degraded: bool) -> Result<f64, EmptyCostTable> {
        let i = self.buckets.partition_point(|b| b.size < n);
        let b = self
            .buckets
            .get(i)
            .or_else(|| self.buckets.last())
            .ok_or(EmptyCostTable)?;
        Ok(if degraded {
            b.degraded_secs
        } else {
            b.nominal_secs
        })
    }

    /// Largest bucket size.
    pub fn max_size(&self) -> usize {
        self.buckets.last().map(|b| b.size).unwrap_or(0)
    }
}

/// Everything one replica needs to serve: the two phase tables plus the
/// KV-cache accounting constants its admission control enforces.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicaCosts {
    /// Mesh shape of the replica.
    pub mesh: MeshShape,
    /// Requested slice count (clamped per GeMM to the largest legal S).
    pub slice_count: usize,
    /// Decode batch-size cap of the batching policy.
    pub max_batch: usize,
    /// Prefill cost by chunk tokens.
    pub prefill: PhaseCostTable,
    /// Decode cost by batch size.
    pub decode: PhaseCostTable,
    /// Per-chip KV bytes one token pins.
    pub kv_bytes_per_token: u64,
    /// Per-chip KV budget: HBM minus weights and workspace.
    pub kv_budget_bytes: u64,
    /// Whether the degraded column was actually priced
    /// ([`CostProfile::Full`]) or mirrors the nominal one.
    pub degraded_priced: bool,
}

impl ReplicaCosts {
    /// KV tokens that fit the budget.
    pub fn kv_capacity_tokens(&self) -> usize {
        (self.kv_budget_bytes / self.kv_bytes_per_token.max(1)) as usize
    }

    /// A copy of these tables restricted to decode batches of at most
    /// `max_batch`. Bucket feasibility and cost are independent of the
    /// cap, so this equals a direct [`build_replica_costs`] at the
    /// smaller cap bit for bit; `None` when no decode bucket survives
    /// (exactly when the direct build would be infeasible).
    pub fn with_max_batch(&self, max_batch: usize) -> Option<ReplicaCosts> {
        assert!(max_batch > 0, "batching policy needs a positive batch cap");
        let decode = PhaseCostTable {
            buckets: self
                .decode
                .buckets
                .iter()
                .copied()
                .take_while(|b| b.size <= max_batch)
                .collect(),
        };
        if decode.buckets.is_empty() {
            return None;
        }
        Some(ReplicaCosts {
            decode,
            max_batch,
            ..self.clone()
        })
    }
}

/// Builds the bucketed phase-cost tables for serving `model` on one
/// replica of shape `mesh` with requested slice count `requested_s` and
/// decode batches up to `max_batch`, pricing the [`CostProfile::Full`]
/// columns with fresh tuner/schedule/scratch state.
///
/// Returns `None` when the configuration cannot serve at all: the
/// weights don't leave a KV budget on this mesh, or no decode/prefill
/// bucket divides over it.
pub fn build_replica_costs(
    model: &LlmConfig,
    mesh: MeshShape,
    requested_s: usize,
    max_batch: usize,
    cfg: &SimConfig,
) -> Option<ReplicaCosts> {
    let tuner = Autotuner::new(cfg.clone());
    let schedules = ScheduleCache::new();
    let mut scratch = RunScratch::new();
    build_replica_costs_with(
        model,
        mesh,
        requested_s,
        max_batch,
        cfg,
        CostProfile::Full,
        &tuner,
        &schedules,
        &mut scratch,
    )
}

/// [`build_replica_costs`] with the expensive state supplied by the
/// caller, so a sweep can share one [`ScheduleCache`] across builds and
/// reuse one [`RunScratch`] per worker (both bit-for-bit neutral), and
/// can skip the degraded-column replays via
/// [`CostProfile::NominalOnly`].
#[allow(clippy::too_many_arguments)]
pub fn build_replica_costs_with(
    model: &LlmConfig,
    mesh: MeshShape,
    requested_s: usize,
    max_batch: usize,
    cfg: &SimConfig,
    profile: CostProfile,
    tuner: &Autotuner,
    schedules: &ScheduleCache,
    scratch: &mut RunScratch,
) -> Option<ReplicaCosts> {
    assert!(max_batch > 0, "batching policy needs a positive batch cap");
    let footprint = inference_footprint(model, mesh, requested_s, MAX_PREFILL_TOKENS);
    let kv_budget = footprint.kv_budget(HBM_BYTES);
    let per_token = kv_bytes_per_token(model, mesh.num_chips(), cfg.elem_bytes);
    if kv_budget < per_token {
        return None; // weights fit at most; no room for a single KV token
    }

    let torus = Torus2d::from_shape(mesh);
    let nominal = Engine::new(torus.clone(), cfg.clone());
    // The priced failure: the center chip dies and its traffic detours,
    // mirroring `meshslice-recovery`'s degraded-continuation pricing.
    let degraded = match profile {
        CostProfile::Full => {
            let dead_chip = mesh.num_chips() / 2;
            Some(nominal.with_faults(degraded_torus_profile(&torus, dead_chip)))
        }
        CostProfile::NominalOnly => None,
    };

    let mut price_phase = |sizes: &[usize],
                           gemms_of: &dyn Fn(usize) -> Vec<FcGemm>,
                           non_fc_of: &dyn Fn(usize) -> f64|
     -> PhaseCostTable {
        let mut buckets = Vec::new();
        'bucket: for &size in sizes {
            let mut nominal_secs = 0.0;
            let mut degraded_secs = 0.0;
            for gemm in gemms_of(size) {
                let problem = GemmProblem::new(gemm.shape, Dataflow::Rs);
                if problem.check_divisible(mesh).is_err() {
                    continue 'bucket;
                }
                let legal = tuner.legal_slice_counts(mesh, problem);
                let actual = legal
                    .iter()
                    .copied()
                    .filter(|&s| s <= requested_s)
                    .max()
                    .unwrap_or(1);
                let block = if legal.contains(&actual) {
                    tuner.block()
                } else {
                    1
                };
                let program =
                    match schedules.schedule(&torus, problem, actual, block, cfg.elem_bytes) {
                        Ok(p) => p,
                        Err(_) => continue 'bucket,
                    };
                // Lower once, replay under both fault profiles.
                let lowered = nominal.lower_program(&program);
                let gemm_nominal = nominal
                    .run_lowered_with_scratch(&lowered, scratch)
                    .makespan()
                    .as_secs();
                nominal_secs += gemm_nominal;
                degraded_secs += match &degraded {
                    Some(engine) => engine
                        .run_lowered_with_scratch(&lowered, scratch)
                        .makespan()
                        .as_secs(),
                    None => gemm_nominal,
                };
            }
            let layers = model.layers as f64;
            let non_fc = non_fc_of(size);
            buckets.push(BucketCost {
                size,
                nominal_secs: nominal_secs * layers + non_fc,
                degraded_secs: degraded_secs * layers + non_fc,
            });
        }
        PhaseCostTable { buckets }
    };

    let chips = mesh.num_chips();
    // `non_fc_block_time` prices forward + backward; serving runs the
    // forward pass only, roughly a third of the combined cost.
    let fwd_non_fc = |setup: TrainingSetup| -> f64 {
        model.non_fc_block_time(setup, chips, cfg).as_secs() / 3.0 * model.layers as f64
    };
    // Decode additionally streams every request's KV cache per layer.
    let kv_stream = |batch: usize| -> f64 {
        let bytes =
            (batch * NOMINAL_KV_CONTEXT) as f64 * 2.0 * model.hidden as f64 * cfg.elem_bytes as f64
                / chips as f64;
        bytes / cfg.hbm_bandwidth * model.layers as f64
    };

    let decode_sizes: Vec<usize> = std::iter::successors(Some(1usize), |b| Some(b * 2))
        .take_while(|&b| b <= max_batch)
        .collect();
    let decode = price_phase(&decode_sizes, &|b| model.decode_gemms(b), &|b| {
        fwd_non_fc(TrainingSetup {
            batch: b,
            seq_len: 1,
        }) + kv_stream(b)
    });

    let prefill_sizes: Vec<usize> = std::iter::successors(Some(256usize), |t| Some(t * 2))
        .take_while(|&t| t <= MAX_PREFILL_TOKENS)
        .collect();
    let prefill = price_phase(&prefill_sizes, &|t| model.prefill_gemms(1, t), &|t| {
        fwd_non_fc(TrainingSetup {
            batch: 1,
            seq_len: t,
        })
    });

    if decode.buckets.is_empty() || prefill.buckets.is_empty() {
        return None;
    }
    Some(ReplicaCosts {
        mesh,
        slice_count: requested_s,
        max_batch,
        prefill,
        decode,
        kv_bytes_per_token: per_token,
        kv_budget_bytes: kv_budget,
        degraded_priced: matches!(profile, CostProfile::Full),
    })
}

/// Identity of one cached table build: the model dimensions (not just
/// the name), the mesh, the requested slice count, and the batch-cap
/// class the build was sized for.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct TableKey {
    model: String,
    hidden: usize,
    heads: usize,
    layers: usize,
    ffn_mult: usize,
    mesh: MeshShape,
    requested_s: usize,
    cap: usize,
}

impl TableKey {
    fn new(model: &LlmConfig, mesh: MeshShape, requested_s: usize, cap: usize) -> TableKey {
        TableKey {
            model: model.name.clone(),
            hidden: model.hidden,
            heads: model.heads,
            layers: model.layers,
            ffn_mult: model.ffn_mult,
            mesh,
            requested_s,
            cap,
        }
    }
}

/// The batch-cap class a candidate cap shares a cached build with:
/// builds are sized to the next power of two, at least
/// [`CACHED_BATCH_CAP`], so every cap the tuner sweeps reads a
/// truncated view of one build.
fn cap_class(max_batch: usize) -> usize {
    max_batch.next_power_of_two().max(CACHED_BATCH_CAP)
}

/// A keyed cache of [`ReplicaCosts`] table builds.
///
/// Table building is a pure function of
/// `(model, mesh, requested S, batch cap, sim config, profile)`, so a
/// tuning grid that sweeps `(replicas, max_batch)` on top of
/// `(mesh, S)` re-derives the identical tables many times.  The cache
/// builds each `(model, mesh, S, cap class)` exactly once — on demand,
/// or ahead of time in parallel via [`warm`](Self::warm) — shares one
/// [`ScheduleCache`] across all builds, and hands out `Arc`'d tables
/// (sliced per candidate cap by [`ReplicaCosts::with_max_batch`]).
/// Infeasible builds are cached too, so a grid full of oversized
/// layouts fails fast.
///
/// The cache is `Sync`; a single instance can serve all workers of a
/// [`par::parallel_map`] sweep.
pub struct CostTableCache {
    cfg: SimConfig,
    profile: CostProfile,
    tuner: Autotuner,
    schedules: ScheduleCache,
    tables: Mutex<HashMap<TableKey, Option<Arc<ReplicaCosts>>>>,
    hits: AtomicUsize,
    builds: AtomicUsize,
}

impl CostTableCache {
    /// An empty cache building tables under `profile`.
    pub fn new(cfg: SimConfig, profile: CostProfile) -> CostTableCache {
        CostTableCache {
            tuner: Autotuner::new(cfg.clone()),
            cfg,
            profile,
            schedules: ScheduleCache::new(),
            tables: Mutex::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            builds: AtomicUsize::new(0),
        }
    }

    /// The profile tables are built under.
    pub fn profile(&self) -> CostProfile {
        self.profile
    }

    /// Number of cached builds (feasible and infeasible).
    pub fn len(&self) -> usize {
        self.tables.lock().expect("cost table cache poisoned").len()
    }

    /// Whether the cache holds no builds.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Tables built from scratch so far (including cached infeasibles).
    pub fn builds(&self) -> usize {
        self.builds.load(Ordering::Relaxed)
    }

    /// Schedules the shared [`ScheduleCache`] built across all table
    /// builds, for cache-efficiency reporting.
    pub fn schedule_cache_stats(&self) -> (usize, usize) {
        (self.schedules.hits(), self.schedules.builds())
    }

    /// Builds every table the `(mesh, S, max_batch)` triples of a grid
    /// will need, in parallel over `threads` workers with one
    /// [`RunScratch`] per worker. Triples collapsing to the same cached
    /// key are built once; already-cached keys are skipped. Returns the
    /// number of fresh builds.
    pub fn warm(
        &self,
        model: &LlmConfig,
        keys: &[(MeshShape, usize, usize)],
        threads: usize,
    ) -> usize {
        let mut todo: Vec<(MeshShape, usize, usize)> = Vec::new();
        {
            let tables = self.tables.lock().expect("cost table cache poisoned");
            for &(mesh, s, max_batch) in keys {
                let cap = cap_class(max_batch);
                let key = TableKey::new(model, mesh, s, cap);
                if !tables.contains_key(&key)
                    && !todo.iter().any(|&(m, rs, c)| (m, rs, c) == (mesh, s, cap))
                {
                    todo.push((mesh, s, cap));
                }
            }
        }
        let built = par::parallel_map_with(
            threads,
            &todo,
            RunScratch::new,
            |scratch, &(mesh, s, cap)| {
                build_replica_costs_with(
                    model,
                    mesh,
                    s,
                    cap,
                    &self.cfg,
                    self.profile,
                    &self.tuner,
                    &self.schedules,
                    scratch,
                )
                .map(Arc::new)
            },
        );
        let fresh = built.len();
        let mut tables = self.tables.lock().expect("cost table cache poisoned");
        for ((mesh, s, cap), table) in todo.into_iter().zip(built) {
            tables
                .entry(TableKey::new(model, mesh, s, cap))
                .or_insert(table);
        }
        self.builds.fetch_add(fresh, Ordering::Relaxed);
        fresh
    }

    /// The cached table for this candidate, built on first use:
    /// bit-for-bit what [`build_replica_costs`] produces for the same
    /// arguments under this cache's profile, or `None` when the
    /// candidate cannot serve.
    pub fn replica_costs(
        &self,
        model: &LlmConfig,
        mesh: MeshShape,
        requested_s: usize,
        max_batch: usize,
    ) -> Option<Arc<ReplicaCosts>> {
        assert!(max_batch > 0, "batching policy needs a positive batch cap");
        let cap = cap_class(max_batch);
        let key = TableKey::new(model, mesh, requested_s, cap);
        let cached = {
            let tables = self.tables.lock().expect("cost table cache poisoned");
            tables.get(&key).cloned()
        };
        let base = match cached {
            Some(table) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                table
            }
            None => {
                // Build outside the lock; a duplicate build under a
                // race yields the identical table.
                let mut scratch = RunScratch::new();
                let table = build_replica_costs_with(
                    model,
                    mesh,
                    requested_s,
                    cap,
                    &self.cfg,
                    self.profile,
                    &self.tuner,
                    &self.schedules,
                    &mut scratch,
                )
                .map(Arc::new);
                self.builds.fetch_add(1, Ordering::Relaxed);
                self.tables
                    .lock()
                    .expect("cost table cache poisoned")
                    .entry(key)
                    .or_insert(table)
                    .clone()
            }
        }?;
        if max_batch == base.max_batch {
            Some(base)
        } else {
            base.with_max_batch(max_batch).map(Arc::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LlmConfig {
        LlmConfig::tiny()
    }

    #[test]
    fn tables_are_monotone_and_degraded_is_slower() {
        let cfg = SimConfig::tpu_v4();
        let costs = build_replica_costs(&tiny(), MeshShape::new(2, 2), 4, 8, &cfg)
            .expect("tiny model must fit 4 chips");
        assert!(costs.degraded_priced);
        for table in [&costs.decode, &costs.prefill] {
            assert!(!table.buckets.is_empty());
            for w in table.buckets.windows(2) {
                assert!(w[0].size < w[1].size);
                assert!(w[0].nominal_secs <= w[1].nominal_secs);
            }
            for b in &table.buckets {
                assert!(
                    b.degraded_secs > b.nominal_secs,
                    "bucket {} degraded {} <= nominal {}",
                    b.size,
                    b.degraded_secs,
                    b.nominal_secs
                );
            }
        }
    }

    #[test]
    fn lookup_pads_to_the_next_bucket() {
        let cfg = SimConfig::tpu_v4();
        let costs =
            build_replica_costs(&tiny(), MeshShape::new(2, 2), 1, 8, &cfg).expect("feasible");
        let table = &costs.decode;
        let largest = table.max_size();
        // Between buckets: rounds up. Past the largest: clamps.
        assert_eq!(
            table.cost_secs(largest - 1, false).unwrap(),
            table.cost_secs(largest, false).unwrap()
        );
        assert_eq!(
            table.cost_secs(largest + 100, false).unwrap(),
            table.cost_secs(largest, false).unwrap()
        );
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        let cfg = SimConfig::tpu_v4();
        let costs =
            build_replica_costs(&tiny(), MeshShape::new(2, 2), 4, 32, &cfg).expect("feasible");
        for table in [&costs.decode, &costs.prefill] {
            for n in 0..=table.max_size() + 3 {
                let linear = table
                    .buckets
                    .iter()
                    .find(|b| b.size >= n)
                    .unwrap_or(table.buckets.last().unwrap());
                assert_eq!(table.cost_secs(n, false).unwrap(), linear.nominal_secs);
                assert_eq!(table.cost_secs(n, true).unwrap(), linear.degraded_secs);
            }
        }
    }

    #[test]
    fn empty_table_is_a_typed_error_not_a_panic() {
        let table = PhaseCostTable::default();
        assert_eq!(table.cost_secs(4, false), Err(EmptyCostTable));
        assert!(EmptyCostTable.to_string().contains("no feasible buckets"));
    }

    #[test]
    fn oversized_models_are_rejected() {
        // GPT-3 weights (~350 GB) cannot fit 4 TPUv4 chips.
        let cfg = SimConfig::tpu_v4();
        assert!(
            build_replica_costs(&LlmConfig::gpt3(), MeshShape::new(2, 2), 4, 8, &cfg).is_none()
        );
    }

    #[test]
    fn kv_capacity_matches_budget() {
        let cfg = SimConfig::tpu_v4();
        let costs =
            build_replica_costs(&tiny(), MeshShape::new(2, 2), 4, 8, &cfg).expect("feasible");
        let cap = costs.kv_capacity_tokens();
        assert!(cap as u64 * costs.kv_bytes_per_token <= costs.kv_budget_bytes);
        assert!((cap as u64 + 1) * costs.kv_bytes_per_token > costs.kv_budget_bytes);
    }

    #[test]
    fn nominal_only_profile_mirrors_the_degraded_column() {
        let cfg = SimConfig::tpu_v4();
        let full = build_replica_costs(&tiny(), MeshShape::new(2, 2), 4, 8, &cfg).expect("ok");
        let tuner = Autotuner::new(cfg.clone());
        let schedules = ScheduleCache::new();
        let mut scratch = RunScratch::new();
        let nominal = build_replica_costs_with(
            &tiny(),
            MeshShape::new(2, 2),
            4,
            8,
            &cfg,
            CostProfile::NominalOnly,
            &tuner,
            &schedules,
            &mut scratch,
        )
        .expect("ok");
        assert!(!nominal.degraded_priced);
        assert_eq!(nominal.decode.buckets.len(), full.decode.buckets.len());
        for (n, f) in nominal
            .decode
            .buckets
            .iter()
            .chain(&nominal.prefill.buckets)
            .zip(full.decode.buckets.iter().chain(&full.prefill.buckets))
        {
            assert_eq!(n.size, f.size);
            assert_eq!(n.nominal_secs, f.nominal_secs, "nominal column unchanged");
            assert_eq!(n.degraded_secs, n.nominal_secs, "degraded mirrors nominal");
        }
        assert_eq!(nominal.kv_budget_bytes, full.kv_budget_bytes);
    }

    #[test]
    fn truncated_view_matches_a_direct_build() {
        let cfg = SimConfig::tpu_v4();
        let wide = build_replica_costs(&tiny(), MeshShape::new(2, 2), 4, 32, &cfg).expect("ok");
        for cap in [1, 2, 8, 16, 32] {
            // Infeasible caps (no decode bucket divides) must agree too:
            // the view is None exactly when the direct build is.
            let direct = build_replica_costs(&tiny(), MeshShape::new(2, 2), 4, cap, &cfg);
            assert_eq!(wide.with_max_batch(cap), direct, "cap {cap}");
        }
    }

    #[test]
    fn cache_views_match_direct_builds_and_dedup() {
        let cfg = SimConfig::tpu_v4();
        let cache = CostTableCache::new(cfg.clone(), CostProfile::Full);
        let mesh = MeshShape::new(2, 2);
        for &max_batch in &[8, 32, 8, 16] {
            let view = cache
                .replica_costs(&tiny(), mesh, 4, max_batch)
                .expect("feasible");
            let direct = build_replica_costs(&tiny(), mesh, 4, max_batch, &cfg).expect("feasible");
            assert_eq!(*view, direct);
        }
        // All four caps share one cached build of the cap-32 class.
        assert_eq!(cache.builds(), 1);
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.len(), 1);
        // Infeasible layouts are cached too.
        assert!(cache
            .replica_costs(&LlmConfig::gpt3(), mesh, 4, 8)
            .is_none());
        assert!(cache
            .replica_costs(&LlmConfig::gpt3(), mesh, 4, 8)
            .is_none());
        assert_eq!(cache.builds(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn warm_is_thread_invariant_and_skips_known_keys() {
        let cfg = SimConfig::tpu_v4();
        let keys = vec![
            (MeshShape::new(2, 2), 1, 8),
            (MeshShape::new(2, 2), 4, 32),
            (MeshShape::new(2, 2), 4, 8), // same cap class as the 32 build
            (MeshShape::new(4, 1), 4, 8),
        ];
        let serial = CostTableCache::new(cfg.clone(), CostProfile::NominalOnly);
        let parallel = CostTableCache::new(cfg.clone(), CostProfile::NominalOnly);
        assert_eq!(serial.warm(&tiny(), &keys, 1), 3);
        assert_eq!(parallel.warm(&tiny(), &keys, 4), 3);
        assert_eq!(parallel.warm(&tiny(), &keys, 4), 0, "second warm is free");
        for &(mesh, s, max_batch) in &keys {
            assert_eq!(
                serial.replica_costs(&tiny(), mesh, s, max_batch),
                parallel.replica_costs(&tiny(), mesh, s, max_batch)
            );
        }
        let (_, schedule_builds) = parallel.schedule_cache_stats();
        assert!(schedule_builds > 0, "warm exercises the schedule cache");
    }
}
