//! Batch-bucket phase-cost tables: the serving plan cache.
//!
//! Continuous batching changes the decode batch size at every step, but
//! lowering a fresh plan per step would dwarf the simulated work. The
//! fleet simulator instead quantizes both phases to power-of-two
//! *buckets* — prefill by chunk tokens, decode by batch size — and
//! prices each bucket exactly once per `(model, mesh, S)` triple:
//! schedule the four FC GeMMs with MeshSlice (weight-stationary `Rs`,
//! so weights stay resident between requests), lower once, and replay
//! the lowered plan on both the nominal engine and a degraded-torus
//! engine (one chip dead, traffic detoured). Steps then cost a table
//! lookup, and a mid-simulation chip death switches the replica from
//! the nominal to the degraded column of the same table.
//!
//! Requests falling between buckets are padded up to the next bucket —
//! the same rounding a real serving engine's CUDA-graph / XLA-program
//! cache performs.

use meshslice::autotuner::{Autotuner, ScheduleCache};
use meshslice::llm::{FcGemm, LlmConfig, TrainingSetup};
use meshslice::memory::{inference_footprint, kv_bytes_per_token, HBM_BYTES};
use meshslice::{Dataflow, Engine, GemmProblem, MeshShape, SimConfig};
use meshslice_mesh::Torus2d;
use meshslice_sim::{degraded_torus_profile, RunScratch};

/// Largest prefill chunk (tokens) the tables are sized for.
pub const MAX_PREFILL_TOKENS: usize = 8192;

/// Context length the decode KV-streaming term is priced at. Decode is
/// memory-bound on reading the KV cache; the table prices it at a fixed
/// nominal context so bucket costs stay state-independent.
pub const NOMINAL_KV_CONTEXT: usize = 512;

/// The simulated cost of one phase execution at one bucket size, under
/// the nominal and the degraded (one dead chip) torus.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BucketCost {
    /// Bucket size: decode batch, or prefill chunk tokens.
    pub size: usize,
    /// All-layers phase latency on the healthy mesh, seconds.
    pub nominal_secs: f64,
    /// Same phase on the degraded torus (dead chip detoured), seconds.
    pub degraded_secs: f64,
}

/// Bucketed costs of one phase, ascending by size.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseCostTable {
    /// Feasible buckets, ascending.
    pub buckets: Vec<BucketCost>,
}

impl PhaseCostTable {
    /// Cost of serving `n` units (batch rows or chunk tokens): the
    /// smallest bucket that fits, or the largest bucket if `n` exceeds
    /// every bucket (the fleet loop never builds such steps, but the
    /// table stays total).
    ///
    /// # Panics
    ///
    /// Panics on an empty table.
    pub fn cost_secs(&self, n: usize, degraded: bool) -> f64 {
        assert!(!self.buckets.is_empty(), "empty phase cost table");
        let b = self
            .buckets
            .iter()
            .find(|b| b.size >= n)
            .unwrap_or(self.buckets.last().expect("non-empty"));
        if degraded {
            b.degraded_secs
        } else {
            b.nominal_secs
        }
    }

    /// Largest bucket size.
    pub fn max_size(&self) -> usize {
        self.buckets.last().map(|b| b.size).unwrap_or(0)
    }
}

/// Everything one replica needs to serve: the two phase tables plus the
/// KV-cache accounting constants its admission control enforces.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicaCosts {
    /// Mesh shape of the replica.
    pub mesh: MeshShape,
    /// Requested slice count (clamped per GeMM to the largest legal S).
    pub slice_count: usize,
    /// Decode batch-size cap of the batching policy.
    pub max_batch: usize,
    /// Prefill cost by chunk tokens.
    pub prefill: PhaseCostTable,
    /// Decode cost by batch size.
    pub decode: PhaseCostTable,
    /// Per-chip KV bytes one token pins.
    pub kv_bytes_per_token: u64,
    /// Per-chip KV budget: HBM minus weights and workspace.
    pub kv_budget_bytes: u64,
}

impl ReplicaCosts {
    /// KV tokens that fit the budget.
    pub fn kv_capacity_tokens(&self) -> usize {
        (self.kv_budget_bytes / self.kv_bytes_per_token.max(1)) as usize
    }
}

/// Builds the bucketed phase-cost tables for serving `model` on one
/// replica of shape `mesh` with requested slice count `requested_s` and
/// decode batches up to `max_batch`.
///
/// Returns `None` when the configuration cannot serve at all: the
/// weights don't leave a KV budget on this mesh, or no decode/prefill
/// bucket divides over it.
pub fn build_replica_costs(
    model: &LlmConfig,
    mesh: MeshShape,
    requested_s: usize,
    max_batch: usize,
    cfg: &SimConfig,
) -> Option<ReplicaCosts> {
    assert!(max_batch > 0, "batching policy needs a positive batch cap");
    let footprint = inference_footprint(model, mesh, requested_s, MAX_PREFILL_TOKENS);
    let kv_budget = footprint.kv_budget(HBM_BYTES);
    let per_token = kv_bytes_per_token(model, mesh.num_chips(), cfg.elem_bytes);
    if kv_budget < per_token {
        return None; // weights fit at most; no room for a single KV token
    }

    let tuner = Autotuner::new(cfg.clone());
    let cache = ScheduleCache::new();
    let torus = Torus2d::from_shape(mesh);
    let nominal = Engine::new(torus.clone(), cfg.clone());
    // The priced failure: the center chip dies and its traffic detours,
    // mirroring `meshslice-recovery`'s degraded-continuation pricing.
    let dead_chip = mesh.num_chips() / 2;
    let degraded = nominal.with_faults(degraded_torus_profile(&torus, dead_chip));
    let mut scratch = RunScratch::new();

    let mut price_phase = |sizes: &[usize],
                           gemms_of: &dyn Fn(usize) -> Vec<FcGemm>,
                           non_fc_of: &dyn Fn(usize) -> f64|
     -> PhaseCostTable {
        let mut buckets = Vec::new();
        'bucket: for &size in sizes {
            let mut nominal_secs = 0.0;
            let mut degraded_secs = 0.0;
            for gemm in gemms_of(size) {
                let problem = GemmProblem::new(gemm.shape, Dataflow::Rs);
                if problem.check_divisible(mesh).is_err() {
                    continue 'bucket;
                }
                let legal = tuner.legal_slice_counts(mesh, problem);
                let actual = legal
                    .iter()
                    .copied()
                    .filter(|&s| s <= requested_s)
                    .max()
                    .unwrap_or(1);
                let block = if legal.contains(&actual) {
                    tuner.block()
                } else {
                    1
                };
                let program = match cache.schedule(&torus, problem, actual, block, cfg.elem_bytes) {
                    Ok(p) => p,
                    Err(_) => continue 'bucket,
                };
                // Lower once, replay under both fault profiles.
                let lowered = nominal.lower_program(&program);
                nominal_secs += nominal
                    .run_lowered_with_scratch(&lowered, &mut scratch)
                    .makespan()
                    .as_secs();
                degraded_secs += degraded
                    .run_lowered_with_scratch(&lowered, &mut scratch)
                    .makespan()
                    .as_secs();
            }
            let layers = model.layers as f64;
            let non_fc = non_fc_of(size);
            buckets.push(BucketCost {
                size,
                nominal_secs: nominal_secs * layers + non_fc,
                degraded_secs: degraded_secs * layers + non_fc,
            });
        }
        PhaseCostTable { buckets }
    };

    let chips = mesh.num_chips();
    // `non_fc_block_time` prices forward + backward; serving runs the
    // forward pass only, roughly a third of the combined cost.
    let fwd_non_fc = |setup: TrainingSetup| -> f64 {
        model.non_fc_block_time(setup, chips, cfg).as_secs() / 3.0 * model.layers as f64
    };
    // Decode additionally streams every request's KV cache per layer.
    let kv_stream = |batch: usize| -> f64 {
        let bytes =
            (batch * NOMINAL_KV_CONTEXT) as f64 * 2.0 * model.hidden as f64 * cfg.elem_bytes as f64
                / chips as f64;
        bytes / cfg.hbm_bandwidth * model.layers as f64
    };

    let decode_sizes: Vec<usize> = std::iter::successors(Some(1usize), |b| Some(b * 2))
        .take_while(|&b| b <= max_batch)
        .collect();
    let decode = price_phase(&decode_sizes, &|b| model.decode_gemms(b), &|b| {
        fwd_non_fc(TrainingSetup {
            batch: b,
            seq_len: 1,
        }) + kv_stream(b)
    });

    let prefill_sizes: Vec<usize> = std::iter::successors(Some(256usize), |t| Some(t * 2))
        .take_while(|&t| t <= MAX_PREFILL_TOKENS)
        .collect();
    let prefill = price_phase(&prefill_sizes, &|t| model.prefill_gemms(1, t), &|t| {
        fwd_non_fc(TrainingSetup {
            batch: 1,
            seq_len: t,
        })
    });

    if decode.buckets.is_empty() || prefill.buckets.is_empty() {
        return None;
    }
    Some(ReplicaCosts {
        mesh,
        slice_count: requested_s,
        max_batch,
        prefill,
        decode,
        kv_bytes_per_token: per_token,
        kv_budget_bytes: kv_budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LlmConfig {
        LlmConfig {
            name: "tiny".to_string(),
            hidden: 256,
            heads: 4,
            layers: 2,
            ffn_mult: 4,
        }
    }

    #[test]
    fn tables_are_monotone_and_degraded_is_slower() {
        let cfg = SimConfig::tpu_v4();
        let costs = build_replica_costs(&tiny(), MeshShape::new(2, 2), 4, 8, &cfg)
            .expect("tiny model must fit 4 chips");
        for table in [&costs.decode, &costs.prefill] {
            assert!(!table.buckets.is_empty());
            for w in table.buckets.windows(2) {
                assert!(w[0].size < w[1].size);
                assert!(w[0].nominal_secs <= w[1].nominal_secs);
            }
            for b in &table.buckets {
                assert!(
                    b.degraded_secs > b.nominal_secs,
                    "bucket {} degraded {} <= nominal {}",
                    b.size,
                    b.degraded_secs,
                    b.nominal_secs
                );
            }
        }
    }

    #[test]
    fn lookup_pads_to_the_next_bucket() {
        let cfg = SimConfig::tpu_v4();
        let costs =
            build_replica_costs(&tiny(), MeshShape::new(2, 2), 1, 8, &cfg).expect("feasible");
        let table = &costs.decode;
        let largest = table.max_size();
        // Between buckets: rounds up. Past the largest: clamps.
        assert_eq!(
            table.cost_secs(largest - 1, false),
            table.cost_secs(largest, false)
        );
        assert_eq!(
            table.cost_secs(largest + 100, false),
            table.cost_secs(largest, false)
        );
    }

    #[test]
    fn oversized_models_are_rejected() {
        // GPT-3 weights (~350 GB) cannot fit 4 TPUv4 chips.
        let cfg = SimConfig::tpu_v4();
        assert!(
            build_replica_costs(&LlmConfig::gpt3(), MeshShape::new(2, 2), 4, 8, &cfg).is_none()
        );
    }

    #[test]
    fn kv_capacity_matches_budget() {
        let cfg = SimConfig::tpu_v4();
        let costs =
            build_replica_costs(&tiny(), MeshShape::new(2, 2), 4, 8, &cfg).expect("feasible");
        let cap = costs.kv_capacity_tokens();
        assert!(cap as u64 * costs.kv_bytes_per_token <= costs.kv_budget_bytes);
        assert!((cap as u64 + 1) * costs.kv_bytes_per_token > costs.kv_budget_bytes);
    }
}
