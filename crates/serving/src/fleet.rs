//! The continuous-batching fleet event loop.
//!
//! A fleet is `replicas` identical serving meshes, each running the
//! iteration-level (continuous) batching discipline of Orca/vLLM:
//! requests join the decode batch the step after their prefill and
//! leave the step they emit their last token, so the batch composition
//! changes every iteration instead of every request group. Requests are
//! dispatched to replicas round-robin by id — a state-independent rule,
//! so each replica's timeline can be simulated independently and the
//! whole fleet parallelizes over [`meshslice::par`] with bit-identical
//! results at any thread count.
//!
//! Each replica enforces KV-cache admission control against its HBM
//! budget: requests whose peak KV footprint can never fit are rejected
//! on arrival, and decode-time pressure preempts the most recently
//! admitted request (its KV is dropped and rebuilt by a later
//! re-prefill). A scheduled chip death knocks the replica out for the
//! failover outage (detection plus weight-shard restore from a
//! checkpointed peer), drops its KV, and leaves it serving on the
//! degraded-torus column of the cost tables.

use std::collections::VecDeque;
use std::sync::Arc;

use meshslice::llm::LlmConfig;
use meshslice::par;
use meshslice::{MeshShape, SimConfig};
use meshslice_recovery::ServingFailover;
use meshslice_telemetry::{
    FleetSeries, Json, LatencySummary, RecordingSink, ReplicaSeriesBuilder, ServingEvent,
    ServingTrace, TraceSink,
};

use crate::arrival::{ArrivalSpec, Request};
use crate::chaos::{route_requests, ChaosSpec, DeathEvent, RoutedTrace, RouterPolicy, ShedPolicy};
use crate::costs::{build_replica_costs, PhaseCostTable, ReplicaCosts};

/// A permanent chip failure injected into the fleet mid-simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChipDeath {
    /// Which replica loses a chip.
    pub replica: usize,
    /// When, seconds from simulation start.
    pub at_secs: f64,
}

/// One fleet-simulation configuration.
#[derive(Clone, Debug)]
pub struct ServingSpec {
    /// Model being served (weights replicated per replica).
    pub model: LlmConfig,
    /// Mesh shape of each replica.
    pub mesh: MeshShape,
    /// Requested MeshSlice slice count (clamped to legal per GeMM).
    pub slice_count: usize,
    /// Number of identical replicas.
    pub replicas: usize,
    /// Decode batch-size cap of the batching policy.
    pub max_batch: usize,
    /// Offered load.
    pub arrivals: ArrivalSpec,
    /// Length of the request trace to simulate.
    pub num_requests: usize,
    /// Seed of the arrival draw.
    pub seed: u64,
    /// TTFT p99 target, milliseconds.
    pub slo_p99_ttft_ms: f64,
    /// Optional injected chip death. Mutually exclusive with `chaos`.
    pub failure: Option<ChipDeath>,
    /// Optional stochastic fault injection: seeded MTBF-driven chip and
    /// link death arrivals per replica, with optional repair. Mutually
    /// exclusive with `failure`; a zero-rate spec (infinite MTBFs)
    /// reproduces the nominal path byte-for-byte.
    pub chaos: Option<ChaosSpec>,
    /// Optional cross-replica failover routing: requests stranded in a
    /// scheduled blackout window retry with capped exponential backoff
    /// onto survivor replicas. With no blackouts the router is idle and
    /// dispatch equals plain round-robin exactly.
    pub router: Option<RouterPolicy>,
    /// Optional SLO-aware load shedding at each replica's admission
    /// control.
    pub shed: Option<ShedPolicy>,
    /// Prebuilt cost tables to serve from (e.g. a [`CostTableCache`]
    /// view), skipping the per-call [`build_replica_costs`]. Must match
    /// the spec's mesh and batch cap; [`validate`](Self::validate)
    /// rejects mismatches and nominal-only tables under an injected
    /// failure.
    ///
    /// [`CostTableCache`]: crate::costs::CostTableCache
    pub shared_costs: Option<Arc<ReplicaCosts>>,
    /// Predrawn arrival trace to simulate (ids `0..len`, as
    /// [`ArrivalSpec::generate`] draws them), skipping the per-call
    /// draw. May be longer than `num_requests`; the simulation serves
    /// the prefix, which equals a direct `num_requests`-long draw
    /// because the arrival sampler draws per request.
    pub shared_trace: Option<Arc<[Request]>>,
}

impl ServingSpec {
    /// A spec with sensible defaults: Poisson arrivals at `qps`, slice
    /// count 4, batch cap 32, 200-request trace, 500 ms TTFT SLO.
    pub fn new(model: LlmConfig, mesh: MeshShape, replicas: usize, qps: f64) -> ServingSpec {
        ServingSpec {
            model,
            mesh,
            slice_count: 4,
            replicas,
            max_batch: 32,
            arrivals: ArrivalSpec::poisson(qps),
            num_requests: 200,
            seed: 0,
            slo_p99_ttft_ms: 500.0,
            failure: None,
            chaos: None,
            router: None,
            shed: None,
            shared_costs: None,
            shared_trace: None,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.arrivals.validate()?;
        if self.replicas == 0 {
            return Err("fleet needs at least one replica".into());
        }
        if self.max_batch == 0 {
            return Err("batching policy needs a positive batch cap".into());
        }
        if self.num_requests == 0 {
            return Err("request trace must not be empty".into());
        }
        if !(self.slo_p99_ttft_ms.is_finite() && self.slo_p99_ttft_ms > 0.0) {
            return Err(format!(
                "SLO target {} ms must be finite and positive",
                self.slo_p99_ttft_ms
            ));
        }
        if let Some(f) = &self.failure {
            if f.replica >= self.replicas {
                return Err(format!(
                    "failure replica {} out of range ({} replicas)",
                    f.replica, self.replicas
                ));
            }
            if !(f.at_secs.is_finite() && f.at_secs >= 0.0) {
                return Err(format!(
                    "failure time {} must be finite and non-negative",
                    f.at_secs
                ));
            }
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate()?;
            if self.failure.is_some() {
                return Err(
                    "chaos injection and a scripted chip death are mutually exclusive".into(),
                );
            }
        }
        if let Some(router) = &self.router {
            router.validate()?;
        }
        if let Some(shed) = &self.shed {
            shed.validate()?;
        }
        if let Some(costs) = &self.shared_costs {
            if costs.mesh != self.mesh {
                return Err(format!(
                    "shared cost tables were built for a {} mesh, spec wants {}",
                    costs.mesh, self.mesh
                ));
            }
            if costs.max_batch != self.max_batch {
                return Err(format!(
                    "shared cost tables cap batches at {}, spec wants {}",
                    costs.max_batch, self.max_batch
                ));
            }
            if costs.prefill.buckets.is_empty() || costs.decode.buckets.is_empty() {
                return Err("shared cost tables have no feasible buckets".into());
            }
            if self.failure.is_some() && !costs.degraded_priced {
                return Err(
                    "shared cost tables are nominal-only but the spec injects a chip death".into(),
                );
            }
            if let Some(chaos) = &self.chaos {
                if !costs.degraded_priced
                    && (chaos.failures.chip_mtbf.is_finite()
                        || chaos.failures.link_mtbf.is_finite())
                {
                    return Err(
                        "shared cost tables are nominal-only but the chaos spec can draw deaths"
                            .into(),
                    );
                }
            }
        }
        if let Some(trace) = &self.shared_trace {
            if trace.len() < self.num_requests {
                return Err(format!(
                    "shared trace holds {} requests, spec wants {}",
                    trace.len(),
                    self.num_requests
                ));
            }
            if trace[..self.num_requests]
                .iter()
                .enumerate()
                .any(|(i, r)| r.id != i)
            {
                return Err("shared trace ids must be sequential from 0".into());
            }
        }
        Ok(())
    }
}

/// The terminal state a request reached. Every offered request reaches
/// exactly one (property-tested in `tests/serving_properties.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Generated every output token.
    Completed,
    /// Rejected at admission: peak KV footprint can never fit.
    Rejected,
    /// Shed by SLO-aware admission control under overload.
    Shed,
    /// The fleet router exhausted its retry budget or deadline with
    /// every candidate replica blacked out.
    TimedOut,
}

/// The fate of one request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestOutcome {
    /// Trace id.
    pub id: usize,
    /// Replica it was dispatched to.
    pub replica: usize,
    /// Arrival time, seconds.
    pub arrival_secs: f64,
    /// Time to first token, seconds; `None` if rejected.
    pub ttft_secs: Option<f64>,
    /// Mean time per output token after the first, seconds; `None` for
    /// rejected or single-token requests.
    pub tpot_secs: Option<f64>,
    /// Tokens actually generated.
    pub generated_tokens: usize,
    /// Times this request was preempted (KV dropped and rebuilt).
    pub preemptions: usize,
    /// Router retry decisions this request consumed.
    pub retries: usize,
    /// The terminal state reached.
    pub kind: OutcomeKind,
}

/// Per-replica accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReplicaStats {
    /// Requests completed.
    pub completed: usize,
    /// Requests rejected at admission (peak KV can never fit).
    pub rejected: usize,
    /// Preemption events under KV pressure (plus failover evictions).
    pub preemptions: usize,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Prefill chunks executed.
    pub prefill_chunks: usize,
    /// Steps executed on the degraded torus after a failover.
    pub degraded_steps: usize,
    /// Requests shed by SLO-aware admission control.
    pub shed: usize,
    /// Failover events (scripted or chaos-drawn deaths that fired).
    pub failovers: usize,
    /// Whether any injected death hit this replica.
    pub failed_over: bool,
    /// Peak per-chip KV bytes observed.
    pub kv_peak_bytes: u64,
    /// Time of the last event on this replica, seconds.
    pub makespan_secs: f64,
    /// Seconds the replica was out for failover (detection + restore),
    /// clamped to simulated time when an outage is truncated by trace
    /// end.
    pub outage_secs: f64,
    /// Detection share of `outage_secs`, clamped the same way.
    pub detection_secs: f64,
    /// Restore share of `outage_secs` (`outage_secs - detection_secs`).
    pub restore_secs: f64,
    /// Prefill-chunk seconds spent rebuilding preempted or failed-over
    /// requests (token-weighted share of mixed chunks).
    pub reprefill_secs: f64,
    /// Extra step seconds paid for running on the degraded torus
    /// (degraded cost minus what the nominal mesh would have charged).
    pub degraded_extra_secs: f64,
    /// Step seconds executed while load shedding held the degraded
    /// batch cap active.
    pub shed_degraded_secs: f64,
}

/// Fleet-wide chip-death cost accounting: where the wall-clock lost to
/// the failures went. Present in the report when the spec injects a
/// [`ChipDeath`] or a chaos draw fires at least one death; serialized
/// as the `downtime_s` artifact section. Components are clamped to
/// simulated time, so they sum to the observed outage even when trace
/// end truncates an outage.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServingDowntime {
    /// Failure-detection seconds across failovers.
    pub detection_secs: f64,
    /// Weight-shard restore seconds across failovers.
    pub restore_secs: f64,
    /// Re-prefill seconds rebuilding evicted KV caches.
    pub reprefill_secs: f64,
    /// Extra step seconds paid on the degraded torus.
    pub degraded_extra_secs: f64,
    /// Replicas that failed over.
    pub failovers: usize,
}

impl ServingDowntime {
    /// Serializes the breakdown (all durations seconds).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("detection", Json::Num(self.detection_secs)),
            ("restore", Json::Num(self.restore_secs)),
            ("reprefill", Json::Num(self.reprefill_secs)),
            ("degraded_extra", Json::Num(self.degraded_extra_secs)),
            ("failovers", Json::Num(self.failovers as f64)),
        ])
    }

    /// Total downtime attributed to the chip death, seconds.
    pub fn total_secs(&self) -> f64 {
        self.detection_secs + self.restore_secs + self.reprefill_secs + self.degraded_extra_secs
    }
}

/// Everything a fleet run reports: the latency order statistics, the
/// throughput actually delivered, and the SLO verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetReport {
    /// Spec echo: model name.
    pub model: String,
    /// Spec echo: per-replica mesh.
    pub mesh: MeshShape,
    /// Spec echo: requested slice count.
    pub slice_count: usize,
    /// Spec echo: replica count.
    pub replicas: usize,
    /// Spec echo: batch cap.
    pub max_batch: usize,
    /// Spec echo: mean offered load, requests/second.
    pub qps: f64,
    /// Spec echo: arrival seed.
    pub seed: u64,
    /// Spec echo: TTFT p99 target, milliseconds.
    pub slo_p99_ttft_ms: f64,
    /// Requests offered (trace length).
    pub offered: usize,
    /// Requests completed fleet-wide.
    pub completed: usize,
    /// Requests rejected fleet-wide.
    pub rejected: usize,
    /// Preemption events fleet-wide.
    pub preemptions: usize,
    /// Failover events across the fleet (a chaos replica can fail over
    /// more than once).
    pub failovers: usize,
    /// Requests shed by SLO-aware admission control fleet-wide.
    pub shed: usize,
    /// Requests the router timed out (never served).
    pub timed_out: usize,
    /// Router retry decisions fleet-wide.
    pub retries: usize,
    /// Requests the router landed off their round-robin home replica.
    pub redistributed: usize,
    /// Time-to-first-token order statistics, seconds.
    pub ttft: LatencySummary,
    /// Time-per-output-token order statistics, seconds.
    pub tpot: LatencySummary,
    /// Wall-clock of the longest replica timeline, seconds.
    pub makespan_secs: f64,
    /// Step seconds executed under the load-shedding degraded batch
    /// cap, fleet-wide.
    pub degraded_secs: f64,
    /// Tokens generated by completed requests.
    pub generated_tokens: usize,
    /// Generated tokens per chip per second — the headline efficiency.
    pub goodput_tokens_per_chip_s: f64,
    /// Whether TTFT p99 met the target.
    pub slo_attained: bool,
    /// Fraction of completed requests whose TTFT met the target.
    pub slo_attainment: f64,
    /// Per-chip KV budget, bytes.
    pub kv_budget_bytes: u64,
    /// Peak per-chip KV usage across replicas, bytes.
    pub kv_peak_bytes: u64,
    /// Per-replica accounting.
    pub per_replica: Vec<ReplicaStats>,
    /// Chip-death cost breakdown when the spec injects a failure.
    pub downtime: Option<ServingDowntime>,
    /// Windowed per-replica time-series (always computed, O(windows)).
    pub series: FleetSeries,
    /// Per-request outcomes, by trace id.
    pub outcomes: Vec<RequestOutcome>,
}

impl FleetReport {
    /// Total chips across the fleet.
    pub fn total_chips(&self) -> usize {
        self.mesh.num_chips() * self.replicas
    }

    /// Serializes the report to the `serving.schema.json` artifact shape.
    pub fn to_json(&self) -> Json {
        let per_replica = self
            .per_replica
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("completed", Json::Num(r.completed as f64)),
                    ("rejected", Json::Num(r.rejected as f64)),
                    ("preemptions", Json::Num(r.preemptions as f64)),
                    ("decode_steps", Json::Num(r.decode_steps as f64)),
                    ("prefill_chunks", Json::Num(r.prefill_chunks as f64)),
                    ("degraded_steps", Json::Num(r.degraded_steps as f64)),
                    ("shed", Json::Num(r.shed as f64)),
                    ("failovers", Json::Num(r.failovers as f64)),
                    ("failed_over", Json::Bool(r.failed_over)),
                    ("kv_peak_bytes", Json::Num(r.kv_peak_bytes as f64)),
                    ("makespan_secs", Json::Num(r.makespan_secs)),
                    ("outage_secs", Json::Num(r.outage_secs)),
                    ("detection_secs", Json::Num(r.detection_secs)),
                    ("restore_secs", Json::Num(r.restore_secs)),
                    ("reprefill_secs", Json::Num(r.reprefill_secs)),
                    ("degraded_extra_secs", Json::Num(r.degraded_extra_secs)),
                    ("shed_degraded_secs", Json::Num(r.shed_degraded_secs)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("schema_version", Json::Num(3.0)),
            ("model", Json::Str(self.model.clone())),
            ("mesh_rows", Json::Num(self.mesh.rows() as f64)),
            ("mesh_cols", Json::Num(self.mesh.cols() as f64)),
            ("slice_count", Json::Num(self.slice_count as f64)),
            ("replicas", Json::Num(self.replicas as f64)),
            ("chips_total", Json::Num(self.total_chips() as f64)),
            ("max_batch", Json::Num(self.max_batch as f64)),
            ("qps", Json::Num(self.qps)),
            ("seed", Json::Num(self.seed as f64)),
            ("offered", Json::Num(self.offered as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("preemptions", Json::Num(self.preemptions as f64)),
            ("failovers", Json::Num(self.failovers as f64)),
            ("shed", Json::Num(self.shed as f64)),
            ("timed_out", Json::Num(self.timed_out as f64)),
            ("retries", Json::Num(self.retries as f64)),
            ("redistributed", Json::Num(self.redistributed as f64)),
            ("ttft_ms", self.ttft.to_json_scaled(1e3)),
            ("tpot_ms", self.tpot.to_json_scaled(1e3)),
            ("makespan_secs", Json::Num(self.makespan_secs)),
            ("degraded_secs", Json::Num(self.degraded_secs)),
            ("generated_tokens", Json::Num(self.generated_tokens as f64)),
            (
                "goodput_tokens_per_chip_s",
                Json::Num(self.goodput_tokens_per_chip_s),
            ),
            ("slo_p99_ttft_ms", Json::Num(self.slo_p99_ttft_ms)),
            ("slo_attained", Json::Bool(self.slo_attained)),
            ("slo_attainment", Json::Num(self.slo_attainment)),
            ("kv_budget_bytes", Json::Num(self.kv_budget_bytes as f64)),
            ("kv_peak_bytes", Json::Num(self.kv_peak_bytes as f64)),
            ("per_replica", Json::Arr(per_replica)),
        ];
        if let Some(d) = &self.downtime {
            fields.push(("downtime_s", d.to_json()));
        }
        fields.push(("timeseries", self.series.to_json()));
        Json::obj(fields)
    }

    /// Prometheus text-exposition export of the fleet headline metrics,
    /// mirroring `RunMetrics::to_prometheus` for training runs.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let labels = format!("model=\"{}\",mesh=\"{}\"", self.model, self.mesh);
        let mut gauge = |name: &str, extra: &str, v: f64| {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            let sep = if extra.is_empty() { "" } else { "," };
            out.push_str(&format!("{name}{{{labels}{sep}{extra}}} {v}\n"));
        };
        for (q, v) in [
            ("p50", self.ttft.p50),
            ("p95", self.ttft.p95),
            ("p99", self.ttft.p99),
        ] {
            gauge(
                "meshslice_serving_ttft_seconds",
                &format!("quantile=\"{q}\""),
                v,
            );
        }
        for (q, v) in [
            ("p50", self.tpot.p50),
            ("p95", self.tpot.p95),
            ("p99", self.tpot.p99),
        ] {
            gauge(
                "meshslice_serving_tpot_seconds",
                &format!("quantile=\"{q}\""),
                v,
            );
        }
        gauge(
            "meshslice_serving_goodput_tokens_per_chip",
            "",
            self.goodput_tokens_per_chip_s,
        );
        gauge("meshslice_serving_slo_attainment", "", self.slo_attainment);
        for (outcome, v) in [
            ("offered", self.offered),
            ("completed", self.completed),
            ("rejected", self.rejected),
            ("shed", self.shed),
            ("timed_out", self.timed_out),
            ("preemptions", self.preemptions),
            ("failovers", self.failovers),
            ("retries", self.retries),
            ("redistributed", self.redistributed),
        ] {
            gauge(
                "meshslice_serving_requests_total",
                &format!("outcome=\"{outcome}\""),
                v as f64,
            );
        }
        gauge(
            "meshslice_serving_kv_peak_bytes",
            "",
            self.kv_peak_bytes as f64,
        );
        gauge(
            "meshslice_serving_kv_budget_bytes",
            "",
            self.kv_budget_bytes as f64,
        );
        for (r, s) in self.per_replica.iter().enumerate() {
            gauge(
                "meshslice_serving_replica_completed",
                &format!("replica=\"{r}\""),
                s.completed as f64,
            );
            gauge(
                "meshslice_serving_replica_makespan_seconds",
                &format!("replica=\"{r}\""),
                s.makespan_secs,
            );
        }
        out
    }
}

/// Simulates the fleet serially. See [`simulate_fleet_threads`].
///
/// # Errors
///
/// Returns a message when the spec is invalid or the model cannot be
/// served on the configured mesh.
pub fn simulate_fleet(spec: &ServingSpec, cfg: &SimConfig) -> Result<FleetReport, String> {
    simulate_fleet_threads(spec, cfg, 1)
}

/// Simulates the fleet while recording the full request-level trace.
///
/// Tracing is observation-only: the returned `FleetReport` is
/// bit-for-bit identical to what [`simulate_fleet_threads`] produces
/// for the same spec (property-tested in `tests/serving_properties.rs`).
///
/// # Errors
///
/// Same conditions as [`simulate_fleet_threads`].
pub fn simulate_fleet_traced(
    spec: &ServingSpec,
    cfg: &SimConfig,
    threads: usize,
) -> Result<(FleetReport, ServingTrace), String> {
    let (report, trace) = run_fleet(spec, cfg, threads, true)?;
    Ok((report, trace.expect("recording was requested")))
}

/// Simulates the fleet with replicas distributed over `threads` workers.
///
/// Dispatch is round-robin by request id and each replica's timeline is
/// simulated independently, so the report is bit-for-bit identical at
/// any thread count.
///
/// # Errors
///
/// Returns a message when the spec is invalid or the model cannot be
/// served on the configured mesh (weights leave no KV budget, or no
/// batch bucket divides over it).
pub fn simulate_fleet_threads(
    spec: &ServingSpec,
    cfg: &SimConfig,
    threads: usize,
) -> Result<FleetReport, String> {
    run_fleet(spec, cfg, threads, false).map(|(report, _)| report)
}

/// Per-replica sink stack: the windowed series is always built (it is
/// part of the report); full event recording is opt-in. Neither feeds
/// back into the loop's arithmetic.
struct ReplicaSinks {
    series: ReplicaSeriesBuilder,
    record: Option<RecordingSink>,
}

impl TraceSink for ReplicaSinks {
    fn event(&mut self, e: &ServingEvent) {
        self.series.event(e);
        if let Some(r) = &mut self.record {
            r.event(e);
        }
    }
}

fn run_fleet(
    spec: &ServingSpec,
    cfg: &SimConfig,
    threads: usize,
    record: bool,
) -> Result<(FleetReport, Option<ServingTrace>), String> {
    spec.validate()?;
    let costs: Arc<ReplicaCosts> = match &spec.shared_costs {
        Some(shared) => shared.clone(),
        None => Arc::new(
            build_replica_costs(
                &spec.model,
                spec.mesh,
                spec.slice_count,
                spec.max_batch,
                cfg,
            )
            .ok_or_else(|| {
                format!(
                    "{} cannot be served on a {} mesh: weights leave no KV budget or no batch bucket divides",
                    spec.model.name, spec.mesh
                )
            })?,
        ),
    };
    let failover = ServingFailover::for_model(&spec.model, spec.mesh);
    let owned_trace;
    let trace: &[Request] = match &spec.shared_trace {
        // The prefix of a longer shared draw equals a direct
        // `num_requests`-long draw: the sampler draws per request.
        Some(shared) => &shared[..spec.num_requests],
        None => {
            owned_trace = spec.arrivals.generate(spec.num_requests, spec.seed);
            &owned_trace
        }
    };

    // Death schedules: chaos draws one per replica; a scripted death is
    // a one-event schedule with no repair — that path reproduces the
    // legacy single-death loop decisions bit-for-bit.
    let death_plans: Vec<Vec<DeathEvent>> = if let Some(chaos) = &spec.chaos {
        (0..spec.replicas)
            .map(|r| chaos.replica_deaths(r, spec.mesh.num_chips(), failover.outage_secs()))
            .collect()
    } else {
        let mut plans = vec![Vec::new(); spec.replicas];
        if let Some(f) = &spec.failure {
            plans[f.replica].push(DeathEvent {
                at: f.at_secs,
                repaired_at: f64::INFINITY,
            });
        }
        plans
    };
    let death_events: usize = death_plans.iter().map(Vec::len).sum();

    // Router pre-pass: plan the dispatch around the *scheduled* outage
    // windows before any replica simulates, so per-replica timelines
    // stay independent. With no blackouts the routed streams equal
    // plain round-robin dispatch exactly.
    let mut routed: Option<RoutedTrace> = spec.router.as_ref().map(|policy| {
        let blackouts: Vec<Vec<(f64, f64)>> = death_plans
            .iter()
            .map(|deaths| {
                deaths
                    .iter()
                    .map(|d| (d.at, d.at + failover.outage_secs()))
                    .collect()
            })
            .collect();
        route_requests(trace, spec.replicas, &blackouts, policy)
    });
    let streams: Vec<Vec<Request>> = match routed.as_mut() {
        Some(r) => std::mem::take(&mut r.streams),
        None => {
            // Round-robin dispatch by id: state-independent, so the
            // per-replica request streams — and therefore the simulation
            // — do not depend on how replicas are scheduled onto worker
            // threads.
            let mut streams = vec![Vec::new(); spec.replicas];
            for r in trace {
                streams[r.id % spec.replicas].push(*r);
            }
            streams
        }
    };
    let router_events: Vec<Vec<ServingEvent>> = routed
        .as_mut()
        .map(|r| std::mem::take(&mut r.events))
        .unwrap_or_default();

    let slo_secs = spec.slo_p99_ttft_ms / 1e3;
    let indices: Vec<usize> = (0..spec.replicas).collect();
    let runs = par::parallel_map_threads(threads, &indices, |&r| {
        let ctx = ReplicaCtx {
            costs: &costs,
            requests: &streams[r],
            deaths: &death_plans[r],
            failover: &failover,
            shed: spec.shed.as_ref(),
            slo_secs,
        };
        let mut sinks = ReplicaSinks {
            series: ReplicaSeriesBuilder::new(),
            record: record.then(RecordingSink::default),
        };
        let run = simulate_replica(&ctx, &mut sinks);
        (run, sinks)
    });

    let mut outcomes = Vec::with_capacity(trace.len());
    let mut per_replica = Vec::with_capacity(spec.replicas);
    let mut builders = Vec::with_capacity(spec.replicas);
    let mut recorded: Vec<Vec<ServingEvent>> = Vec::with_capacity(spec.replicas);
    for (r, (run, mut sinks)) in runs.into_iter().enumerate() {
        outcomes.extend(run.outcomes.into_iter().map(|mut o| {
            o.replica = r;
            o
        }));
        per_replica.push(run.stats);
        // Router events fold into the home replica's lanes after the
        // simulation: window binning is order-independent, so this
        // equals having observed them inline.
        if let Some(evs) = router_events.get(r) {
            for e in evs {
                sinks.series.event(e);
            }
        }
        builders.push(sinks.series);
        if let Some(rec) = sinks.record {
            let mut evs = router_events.get(r).cloned().unwrap_or_default();
            evs.extend(rec.events);
            recorded.push(evs);
        }
    }
    outcomes.sort_by_key(|o| o.id);
    if let Some(r) = &routed {
        // Restore user-perceived arrivals: a routed request simulated
        // with its effective (post-backoff) arrival, so the backoff
        // delay it sat through folds back into TTFT.
        for rr in &r.routed {
            let i = outcomes
                .binary_search_by_key(&rr.id, |o| o.id)
                .expect("routed requests land in exactly one stream");
            let o = &mut outcomes[i];
            o.arrival_secs = rr.arrival_secs;
            if let Some(ttft) = &mut o.ttft_secs {
                *ttft += rr.delay_secs;
            }
            o.retries = rr.retries;
        }
        for to in &r.timeouts {
            outcomes.push(RequestOutcome {
                id: to.id,
                replica: to.id % spec.replicas,
                arrival_secs: to.arrival_secs,
                ttft_secs: None,
                tpot_secs: None,
                generated_tokens: 0,
                preemptions: 0,
                retries: to.retries,
                kind: OutcomeKind::TimedOut,
            });
        }
        if !r.timeouts.is_empty() {
            outcomes.sort_by_key(|o| o.id);
        }
    }
    let series = FleetSeries::from_builders(builders);

    let ttft_samples: Vec<f64> = outcomes.iter().filter_map(|o| o.ttft_secs).collect();
    let slo_hits = ttft_samples.iter().filter(|&&t| t <= slo_secs).count();
    let ttft = LatencySummary::from_unsorted(ttft_samples.clone());
    let tpot = LatencySummary::from_unsorted(outcomes.iter().filter_map(|o| o.tpot_secs).collect());

    let completed: usize = per_replica.iter().map(|s| s.completed).sum();
    let generated_tokens: usize = outcomes
        .iter()
        .filter(|o| o.ttft_secs.is_some())
        .map(|o| o.generated_tokens)
        .sum();
    let makespan_secs = per_replica
        .iter()
        .map(|s| s.makespan_secs)
        .fold(0.0, f64::max);
    let total_chips = spec.mesh.num_chips() * spec.replicas;
    let goodput = if makespan_secs > 0.0 {
        generated_tokens as f64 / makespan_secs / total_chips as f64
    } else {
        0.0
    };
    let failovers: usize = per_replica.iter().map(|s| s.failovers).sum();
    let shed: usize = per_replica.iter().map(|s| s.shed).sum();
    let (timed_out, retries, redistributed) = match &routed {
        Some(r) => (r.timeouts.len(), r.retries, r.redistributed),
        None => (0, 0, 0),
    };
    // A scripted death always reports a (possibly zeroed) breakdown; a
    // chaos spec reports one only when a draw actually fired, so a
    // zero-rate chaos run serializes byte-identically to nominal.
    let downtime = (spec.failure.is_some() || death_events > 0).then(|| ServingDowntime {
        detection_secs: per_replica.iter().map(|s| s.detection_secs).sum(),
        restore_secs: per_replica.iter().map(|s| s.restore_secs).sum(),
        reprefill_secs: per_replica.iter().map(|s| s.reprefill_secs).sum(),
        degraded_extra_secs: per_replica.iter().map(|s| s.degraded_extra_secs).sum(),
        failovers,
    });
    let serving_trace = if record {
        Some(ServingTrace {
            model: spec.model.name.clone(),
            mesh: format!("{}", spec.mesh),
            replicas: spec.replicas,
            qps: spec.arrivals.qps,
            seed: spec.seed,
            slo_p99_ttft_ms: spec.slo_p99_ttft_ms,
            events: recorded,
        })
    } else {
        None
    };

    let report = FleetReport {
        model: spec.model.name.to_string(),
        mesh: spec.mesh,
        slice_count: spec.slice_count,
        replicas: spec.replicas,
        max_batch: spec.max_batch,
        qps: spec.arrivals.qps,
        seed: spec.seed,
        slo_p99_ttft_ms: spec.slo_p99_ttft_ms,
        offered: trace.len(),
        completed,
        rejected: per_replica.iter().map(|s| s.rejected).sum(),
        preemptions: per_replica.iter().map(|s| s.preemptions).sum(),
        failovers,
        shed,
        timed_out,
        retries,
        redistributed,
        slo_attained: ttft.count > 0 && ttft.p99 <= slo_secs,
        slo_attainment: if ttft.count > 0 {
            slo_hits as f64 / ttft.count as f64
        } else {
            0.0
        },
        ttft,
        tpot,
        makespan_secs,
        degraded_secs: per_replica.iter().map(|s| s.shed_degraded_secs).sum(),
        generated_tokens,
        goodput_tokens_per_chip_s: goodput,
        kv_budget_bytes: costs.kv_budget_bytes,
        kv_peak_bytes: per_replica
            .iter()
            .map(|s| s.kv_peak_bytes)
            .max()
            .unwrap_or(0),
        per_replica,
        downtime,
        series,
        outcomes,
    };
    Ok((report, serving_trace))
}

struct ReplicaRun {
    outcomes: Vec<RequestOutcome>,
    stats: ReplicaStats,
}

/// Builds the completion event for one finished request.
fn completed_event(
    req: &Request,
    end: f64,
    first: f64,
    generated: usize,
    preempts: usize,
    slo_secs: f64,
) -> ServingEvent {
    let ttft = first - req.arrival_secs;
    ServingEvent::Completed {
        id: req.id,
        t: end,
        ttft,
        generated,
        preemptions: preempts,
        slo_ok: ttft <= slo_secs,
    }
}

/// Per-request progress, one slab slot per stream request. `generated`
/// counts emitted tokens (the first comes out of prefill); a request
/// pins `prompt + generated` KV tokens while resident.
#[derive(Clone, Copy, Default)]
struct ReqState {
    generated: usize,
    first_token: Option<f64>,
    finish: Option<f64>,
    preemptions: usize,
    rejected: bool,
    shed: bool,
}

/// Everything one replica's simulation reads: the cost tables, its
/// request stream, its scheduled death events (sorted by time), the
/// failover timing, and the optional shed policy.
struct ReplicaCtx<'a> {
    costs: &'a ReplicaCosts,
    requests: &'a [Request],
    deaths: &'a [DeathEvent],
    failover: &'a ServingFailover,
    shed: Option<&'a ShedPolicy>,
    slo_secs: f64,
}

/// One replica's timeline: a sequential discrete-event loop over its
/// request stream. All arithmetic is sequential f64, so the result is a
/// pure function of the context — the sink only observes, it never
/// influences the loop.
///
/// Request state lives in one [`ReqState`] slab indexed by stream
/// position, and the batch-assembly buffers are reused across
/// iterations: the steady-state decode path allocates nothing per step
/// (property-tested to leave the report bit-for-bit unchanged).
fn simulate_replica(ctx: &ReplicaCtx<'_>, sink: &mut dyn TraceSink) -> ReplicaRun {
    let ReplicaCtx {
        costs,
        requests,
        deaths,
        failover,
        shed,
        slo_secs,
    } = *ctx;
    let per_token = costs.kv_bytes_per_token;
    let budget = costs.kv_budget_bytes;
    let n = requests.len();

    let mut reqs: Vec<ReqState> = vec![ReqState::default(); n];

    let mut t = 0.0_f64;
    let mut next_arrival = 0usize;
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new(); // admission order (oldest first)
    let mut kv_used = 0u64;
    // The replica serves on the degraded torus while `t` is below this:
    // never for a healthy replica, forever after an unrepaired death
    // (the legacy boolean), or until the repair completes.
    let mut degraded_until = f64::NEG_INFINITY;
    let mut next_death = 0usize;
    let mut outage_starts: Vec<f64> = Vec::new();
    // KV tokens pinned by the waiting queue, priced like the prefill
    // chunk assembly prices them — the shed policy's TTFT projection.
    let mut queued_tokens = 0usize;
    let mut stats = ReplicaStats::default();

    // Per-iteration batch buffers, reused across the whole loop.
    let mut chunk: Vec<usize> = Vec::new();
    let mut fresh_ids: Vec<usize> = Vec::new();
    let mut resumed_ids: Vec<usize> = Vec::new();
    let mut finished: Vec<usize> = Vec::new();

    let kv_of =
        |idx: usize, reqs: &[ReqState]| (requests[idx].prompt_tokens + reqs[idx].generated) as u64;
    let phase_secs = |table: &PhaseCostTable, size: usize, degraded: bool| {
        table
            .cost_secs(size, degraded)
            .expect("replica cost tables are validated non-empty")
    };
    // Nominal per-token prefill rate of the largest bucket: the shed
    // policy projects the backlog's TTFT as `queued_tokens` priced at
    // this rate.
    let prefill_tok_secs = {
        let size = costs.prefill.max_size();
        phase_secs(&costs.prefill, size, false) / size as f64
    };
    let overloaded = |p: &ShedPolicy, depth: usize, queued_tokens: usize| {
        depth >= p.queue_depth || queued_tokens as f64 * prefill_tok_secs > p.ttft_factor * slo_secs
    };

    loop {
        // Admission: a request whose peak KV footprint exceeds the whole
        // budget can never run is rejected; under an overloaded queue
        // the shed policy drops the newest arrivals; everything else
        // queues.
        while next_arrival < n && requests[next_arrival].arrival_secs <= t {
            let idx = next_arrival;
            next_arrival += 1;
            let id = requests[idx].id;
            let at = requests[idx].arrival_secs;
            sink.event(&ServingEvent::Arrival { id, t: at });
            if requests[idx].peak_kv_tokens() as u64 * per_token > budget {
                reqs[idx].rejected = true;
                stats.rejected += 1;
                sink.event(&ServingEvent::Rejected { id, t: at });
            } else if shed.is_some_and(|p| overloaded(p, waiting.len(), queued_tokens)) {
                reqs[idx].shed = true;
                stats.shed += 1;
                sink.event(&ServingEvent::Shed {
                    id,
                    t: at,
                    queue: waiting.len(),
                });
            } else {
                waiting.push_back(idx);
                queued_tokens += requests[idx].prompt_tokens + reqs[idx].generated.max(1);
                sink.event(&ServingEvent::Queued {
                    id,
                    t: at,
                    queue: waiting.len(),
                });
            }
        }

        // Chip death: the replica is out for detection + weight restore,
        // its KV cache is gone (the in-flight batch re-prefills), and it
        // continues on the degraded torus until the repair completes
        // (forever, without a repair model).
        if next_death < deaths.len() && t >= deaths[next_death].at {
            let ev = deaths[next_death];
            next_death += 1;
            stats.failed_over = true;
            stats.failovers += 1;
            degraded_until = degraded_until.max(ev.repaired_at);
            let start = t;
            t += failover.outage_secs();
            outage_starts.push(start);
            sink.event(&ServingEvent::Outage { start, end: t });
            while let Some(idx) = active.pop() {
                reqs[idx].preemptions += 1;
                stats.preemptions += 1;
                waiting.push_front(idx);
                queued_tokens += requests[idx].prompt_tokens + reqs[idx].generated.max(1);
                sink.event(&ServingEvent::Preempted {
                    id: requests[idx].id,
                    t: start,
                });
            }
            kv_used = 0;
            continue;
        }

        let degraded = t < degraded_until;
        // While the shed policy sees overload it can gate prefill
        // admission behind a smaller batch cap; decode drains the
        // resident batch down to it naturally.
        let prefill_cap = match shed {
            Some(p) if overloaded(p, waiting.len(), queued_tokens) => p
                .degraded_max_batch
                .map_or(costs.max_batch, |c| c.min(costs.max_batch)),
            _ => costs.max_batch,
        };
        let shed_cap_active = prefill_cap < costs.max_batch;

        // Prefill-prioritized continuous batching: fill the batch before
        // decoding. A preempted or failed-over request re-prefills its
        // prompt plus everything it had generated.
        if !waiting.is_empty() && active.len() < prefill_cap {
            chunk.clear();
            fresh_ids.clear();
            resumed_ids.clear();
            let mut chunk_tokens = 0usize;
            let mut chunk_kv = 0u64;
            let mut resumed_tokens = 0usize;
            while let Some(&idx) = waiting.front() {
                if active.len() + chunk.len() >= prefill_cap {
                    break;
                }
                let tokens = requests[idx].prompt_tokens + reqs[idx].generated.max(1);
                if !chunk.is_empty() && chunk_tokens + tokens > costs.prefill.max_size() {
                    break;
                }
                if kv_used + chunk_kv + tokens as u64 * per_token > budget {
                    break;
                }
                waiting.pop_front();
                queued_tokens -= tokens;
                chunk.push(idx);
                chunk_tokens += tokens;
                chunk_kv += tokens as u64 * per_token;
                if reqs[idx].generated > 0 {
                    resumed_tokens += tokens;
                    resumed_ids.push(requests[idx].id);
                } else {
                    fresh_ids.push(requests[idx].id);
                }
            }
            if !chunk.is_empty() {
                let start = t;
                let cost = phase_secs(&costs.prefill, chunk_tokens, degraded);
                t += cost;
                stats.prefill_chunks += 1;
                if degraded {
                    stats.degraded_steps += 1;
                    stats.degraded_extra_secs +=
                        cost - phase_secs(&costs.prefill, chunk_tokens, false);
                }
                if shed_cap_active {
                    stats.shed_degraded_secs += cost;
                }
                if chunk_tokens > 0 {
                    stats.reprefill_secs += cost * resumed_tokens as f64 / chunk_tokens as f64;
                }
                finished.clear();
                for &idx in &chunk {
                    reqs[idx].generated = reqs[idx].generated.max(1);
                    if reqs[idx].first_token.is_none() {
                        reqs[idx].first_token = Some(t);
                    }
                    if reqs[idx].generated >= requests[idx].output_tokens {
                        reqs[idx].finish = Some(t);
                        stats.completed += 1;
                        finished.push(idx);
                    } else {
                        kv_used += kv_of(idx, &reqs) * per_token;
                        active.push(idx);
                    }
                }
                stats.kv_peak_bytes = stats.kv_peak_bytes.max(kv_used);
                stats.makespan_secs = t;
                sink.event(&ServingEvent::Prefill {
                    start,
                    end: t,
                    tokens: chunk_tokens,
                    fresh: fresh_ids.clone(),
                    resumed: resumed_ids.clone(),
                    degraded,
                    kv_bytes: kv_used,
                    queue: waiting.len(),
                });
                for &id in &fresh_ids {
                    sink.event(&ServingEvent::FirstToken { id, t });
                }
                for &idx in &finished {
                    let first = reqs[idx]
                        .first_token
                        .expect("completed requests have a first token");
                    sink.event(&completed_event(
                        &requests[idx],
                        t,
                        first,
                        reqs[idx].generated,
                        reqs[idx].preemptions,
                        slo_secs,
                    ));
                }
                continue;
            }
        }

        // Decode step: one token per active request. Under KV pressure,
        // preempt the most recently admitted request (LIFO) — its cache
        // is dropped and rebuilt by a later re-prefill.
        if !active.is_empty() {
            while active.len() > 1 && kv_used + active.len() as u64 * per_token > budget {
                let victim = active.pop().expect("non-empty");
                kv_used -= kv_of(victim, &reqs) * per_token;
                reqs[victim].preemptions += 1;
                stats.preemptions += 1;
                waiting.push_front(victim);
                sink.event(&ServingEvent::Preempted {
                    id: requests[victim].id,
                    t,
                });
            }
            let batch = active.len();
            let start = t;
            let cost = phase_secs(&costs.decode, batch, degraded);
            t += cost;
            stats.decode_steps += 1;
            if degraded {
                stats.degraded_steps += 1;
                stats.degraded_extra_secs += cost - phase_secs(&costs.decode, batch, false);
            }
            if shed_cap_active {
                stats.shed_degraded_secs += cost;
            }
            kv_used += batch as u64 * per_token;
            stats.kv_peak_bytes = stats.kv_peak_bytes.max(kv_used);
            finished.clear();
            let mut i = 0;
            while i < active.len() {
                let idx = active[i];
                reqs[idx].generated += 1;
                if reqs[idx].generated >= requests[idx].output_tokens {
                    reqs[idx].finish = Some(t);
                    stats.completed += 1;
                    kv_used -= kv_of(idx, &reqs) * per_token;
                    active.remove(i);
                    finished.push(idx);
                } else {
                    i += 1;
                }
            }
            stats.makespan_secs = t;
            sink.event(&ServingEvent::Decode {
                start,
                end: t,
                batch,
                degraded,
                kv_bytes: kv_used,
                queue: waiting.len(),
            });
            for &idx in &finished {
                let first = reqs[idx]
                    .first_token
                    .expect("completed requests have a first token");
                sink.event(&completed_event(
                    &requests[idx],
                    t,
                    first,
                    reqs[idx].generated,
                    reqs[idx].preemptions,
                    slo_secs,
                ));
            }
            continue;
        }

        // Idle: jump to the next arrival (or the next scheduled death if
        // it comes first and is still pending).
        if next_arrival < n {
            let mut wake = requests[next_arrival].arrival_secs;
            if next_death < deaths.len() {
                wake = wake.min(deaths[next_death].at.max(t));
            }
            t = t.max(wake);
            continue;
        }
        break;
    }

    // Outage accounting, clamped to simulated time: an outage the trace
    // end truncates only charges the share that actually elapsed, so
    // `detection + restore` always sums to the observed outage.
    for &start in &outage_starts {
        let end = start + failover.outage_secs();
        let observed = if end <= stats.makespan_secs {
            failover.outage_secs()
        } else {
            (stats.makespan_secs - start)
                .max(0.0)
                .min(failover.outage_secs())
        };
        stats.outage_secs += observed;
        let detect = observed.min(failover.detect_secs);
        stats.detection_secs += detect;
        stats.restore_secs += observed - detect;
    }

    let outcomes = requests
        .iter()
        .zip(&reqs)
        .map(|(r, state)| {
            let ttft = state.first_token.map(|ft| ft - r.arrival_secs);
            let tpot = match (state.first_token, state.finish) {
                (Some(ft), Some(fin)) if state.generated > 1 => {
                    Some((fin - ft) / (state.generated - 1) as f64)
                }
                _ => None,
            };
            let kind = if state.rejected {
                OutcomeKind::Rejected
            } else if state.shed {
                OutcomeKind::Shed
            } else {
                OutcomeKind::Completed
            };
            RequestOutcome {
                id: r.id,
                replica: 0, // filled in by the fleet merge
                arrival_secs: r.arrival_secs,
                ttft_secs: ttft,
                tpot_secs: tpot,
                generated_tokens: if kind == OutcomeKind::Completed {
                    state.generated
                } else {
                    0
                },
                preemptions: state.preemptions,
                retries: 0, // filled in by the fleet merge for routed requests
                kind,
            }
        })
        .collect();
    ReplicaRun { outcomes, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{CostProfile, CostTableCache};

    fn tiny() -> LlmConfig {
        LlmConfig::tiny()
    }

    fn tiny_spec(qps: f64) -> ServingSpec {
        let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 2, qps);
        spec.num_requests = 80;
        spec.seed = 7;
        spec
    }

    #[test]
    fn fleet_completes_all_requests_at_low_load() {
        let report = simulate_fleet(&tiny_spec(5.0), &SimConfig::tpu_v4()).expect("feasible");
        assert_eq!(report.offered, 80);
        assert_eq!(report.completed + report.rejected, 80);
        assert_eq!(report.rejected, 0, "tiny requests all fit the KV budget");
        assert!(report.ttft.p50 > 0.0);
        assert!(report.goodput_tokens_per_chip_s > 0.0);
        assert!(report.slo_attainment > 0.0);
    }

    #[test]
    fn same_seed_same_report_different_seed_differs() {
        let cfg = SimConfig::tpu_v4();
        let a = simulate_fleet(&tiny_spec(5.0), &cfg).expect("feasible");
        let b = simulate_fleet(&tiny_spec(5.0), &cfg).expect("feasible");
        assert_eq!(a.ttft, b.ttft);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        let mut other = tiny_spec(5.0);
        other.seed = 8;
        let c = simulate_fleet(&other, &cfg).expect("feasible");
        assert_ne!(a.ttft, c.ttft);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(20.0);
        spec.replicas = 4;
        let serial = simulate_fleet_threads(&spec, &cfg, 1).expect("feasible");
        for threads in [2, 8] {
            let parallel = simulate_fleet_threads(&spec, &cfg, threads).expect("feasible");
            assert_eq!(serial.ttft, parallel.ttft);
            assert_eq!(serial.tpot, parallel.tpot);
            assert_eq!(serial.outcomes, parallel.outcomes);
            assert_eq!(serial.makespan_secs, parallel.makespan_secs);
        }
    }

    #[test]
    fn overload_raises_tail_latency() {
        let cfg = SimConfig::tpu_v4();
        let light = simulate_fleet(&tiny_spec(2.0), &cfg).expect("feasible");
        let heavy = simulate_fleet(&tiny_spec(2000.0), &cfg).expect("feasible");
        assert!(
            heavy.ttft.p99 > light.ttft.p99,
            "queueing must show up in the tail: {} vs {}",
            heavy.ttft.p99,
            light.ttft.p99
        );
    }

    #[test]
    fn chip_death_degrades_but_does_not_abort() {
        let cfg = SimConfig::tpu_v4();
        // Overloaded, so the fleet is never idle: the outage and the
        // degraded torus must show up as strictly lost throughput rather
        // than being absorbed by slack.
        let mut spec = tiny_spec(2000.0);
        let healthy = simulate_fleet(&spec, &cfg).expect("feasible");
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: healthy.makespan_secs / 4.0,
        });
        let wounded = simulate_fleet(&spec, &cfg).expect("feasible");
        assert_eq!(wounded.failovers, 1);
        assert!(wounded.per_replica[0].failed_over);
        assert!(wounded.per_replica[0].degraded_steps > 0);
        assert_eq!(wounded.completed + wounded.rejected, wounded.offered);
        assert!(wounded.goodput_tokens_per_chip_s > 0.0);
        assert!(
            wounded.goodput_tokens_per_chip_s < healthy.goodput_tokens_per_chip_s,
            "outage + degraded torus must cost throughput"
        );
    }

    #[test]
    fn kv_peak_stays_within_budget() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(500.0);
        spec.max_batch = 64;
        let report = simulate_fleet(&spec, &cfg).expect("feasible");
        assert!(report.kv_peak_bytes <= report.kv_budget_bytes);
        assert!(report.kv_peak_bytes > 0);
    }

    #[test]
    fn invalid_specs_error_out() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(5.0);
        spec.replicas = 0;
        assert!(simulate_fleet(&spec, &cfg).is_err());
        let mut spec = tiny_spec(5.0);
        spec.failure = Some(ChipDeath {
            replica: 9,
            at_secs: 1.0,
        });
        assert!(simulate_fleet(&spec, &cfg).is_err());
        // GPT-3 on 4 chips: weights cannot fit.
        let spec = ServingSpec::new(LlmConfig::gpt3(), MeshShape::new(2, 2), 1, 5.0);
        let err = simulate_fleet(&spec, &cfg).unwrap_err();
        assert!(err.contains("KV budget"), "{err}");
    }

    #[test]
    fn shared_costs_and_trace_do_not_change_the_report() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(200.0);
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: 0.5,
        });
        let plain = simulate_fleet(&spec, &cfg).expect("feasible");

        let cache = CostTableCache::new(cfg.clone(), CostProfile::Full);
        let mut shared = spec.clone();
        shared.shared_costs = Some(
            cache
                .replica_costs(&spec.model, spec.mesh, spec.slice_count, spec.max_batch)
                .expect("feasible"),
        );
        // Longer draw than needed: the prefix must behave identically.
        shared.shared_trace = Some(Arc::from(
            spec.arrivals.generate(spec.num_requests + 40, spec.seed),
        ));
        let fast = simulate_fleet(&shared, &cfg).expect("feasible");
        assert_eq!(plain, fast, "shared resources must be simulation-neutral");
        assert_eq!(
            plain.to_json().to_string_pretty(),
            fast.to_json().to_string_pretty(),
            "artifacts must be byte-identical"
        );
    }

    #[test]
    fn mismatched_shared_resources_error_out() {
        let cfg = SimConfig::tpu_v4();
        let spec = tiny_spec(5.0);
        let cache = CostTableCache::new(cfg.clone(), CostProfile::NominalOnly);
        let table = cache
            .replica_costs(&spec.model, spec.mesh, spec.slice_count, spec.max_batch)
            .expect("feasible");

        let mut wrong_mesh = spec.clone();
        wrong_mesh.mesh = MeshShape::new(4, 1);
        wrong_mesh.shared_costs = Some(table.clone());
        assert!(simulate_fleet(&wrong_mesh, &cfg)
            .unwrap_err()
            .contains("mesh"));

        let mut wrong_cap = spec.clone();
        wrong_cap.max_batch = 16;
        wrong_cap.shared_costs = Some(table.clone());
        assert!(simulate_fleet(&wrong_cap, &cfg)
            .unwrap_err()
            .contains("cap"));

        // Nominal-only tables cannot price a chip death.
        let mut nominal_death = spec.clone();
        nominal_death.failure = Some(ChipDeath {
            replica: 0,
            at_secs: 1.0,
        });
        nominal_death.shared_costs = Some(table);
        assert!(simulate_fleet(&nominal_death, &cfg)
            .unwrap_err()
            .contains("nominal-only"));

        let mut short_trace = spec.clone();
        short_trace.shared_trace = Some(Arc::from(
            spec.arrivals.generate(spec.num_requests - 1, spec.seed),
        ));
        assert!(simulate_fleet(&short_trace, &cfg)
            .unwrap_err()
            .contains("shared trace"));
    }

    #[test]
    fn report_serializes_with_expected_keys() {
        let report = simulate_fleet(&tiny_spec(5.0), &SimConfig::tpu_v4()).expect("feasible");
        let json = report.to_json();
        for key in [
            "schema_version",
            "ttft_ms",
            "tpot_ms",
            "goodput_tokens_per_chip_s",
            "slo_attained",
            "per_replica",
            "timeseries",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            json.get("ttft_ms")
                .and_then(|t| t.get("count"))
                .and_then(Json::as_usize),
            Some(report.completed)
        );
        assert_eq!(json.get("schema_version").and_then(Json::as_usize), Some(3));
        assert!(
            json.get("downtime_s").is_none(),
            "no failure injected, no downtime section"
        );
    }

    #[test]
    fn tracing_is_observation_only() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(200.0);
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: 0.5,
        });
        let untraced = simulate_fleet(&spec, &cfg).expect("feasible");
        let (traced, trace) = simulate_fleet_traced(&spec, &cfg, 2).expect("feasible");
        assert_eq!(untraced, traced, "tracing must not perturb the report");
        assert_eq!(
            untraced.to_json().to_string_pretty(),
            traced.to_json().to_string_pretty(),
            "artifacts must be byte-identical"
        );
        trace.check_invariants().expect("well-formed trace");
        assert_eq!(trace.replicas, spec.replicas);
        assert!(!trace.is_empty());
    }

    #[test]
    fn blame_matches_reported_ttft() {
        let cfg = SimConfig::tpu_v4();
        let (report, trace) = simulate_fleet_traced(&tiny_spec(500.0), &cfg, 1).expect("feasible");
        let blame = trace.blame();
        assert_eq!(blame.requests.len(), report.completed);
        for b in &blame.requests {
            let outcome = report.outcomes.iter().find(|o| o.id == b.id).expect("id");
            let ttft = outcome.ttft_secs.expect("completed");
            assert!(
                (b.ttft - ttft).abs() < 1e-9,
                "trace ttft must match outcome"
            );
            assert!((b.components_sum() - b.ttft).abs() < 1e-9);
        }
    }

    #[test]
    fn chip_death_produces_a_downtime_breakdown() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(2000.0);
        let healthy = simulate_fleet(&spec, &cfg).expect("feasible");
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: healthy.makespan_secs / 4.0,
        });
        let wounded = simulate_fleet(&spec, &cfg).expect("feasible");
        let d = wounded.downtime.expect("failure injected");
        assert_eq!(d.failovers, 1);
        assert!(d.detection_secs > 0.0 && d.restore_secs > 0.0);
        assert!(d.reprefill_secs > 0.0, "flushed batch must re-prefill");
        assert!(d.degraded_extra_secs > 0.0, "degraded torus costs extra");
        let stats = &wounded.per_replica[0];
        assert!(stats.outage_secs > 0.0);
        assert!((d.detection_secs + d.restore_secs - stats.outage_secs).abs() < 1e-12);
        let json = wounded.to_json();
        assert!(json
            .get("downtime_s")
            .and_then(|v| v.get("reprefill"))
            .is_some());
    }

    #[test]
    fn timeseries_totals_match_the_report() {
        let report = simulate_fleet(&tiny_spec(50.0), &SimConfig::tpu_v4()).expect("feasible");
        let agg = report.series.aggregate();
        assert_eq!(
            agg.iter().map(|w| w.completed).sum::<usize>(),
            report.completed
        );
        assert_eq!(
            agg.iter().map(|w| w.admitted).sum::<usize>(),
            report.offered - report.rejected
        );
        assert_eq!(
            agg.iter().map(|w| w.decode_steps).sum::<usize>(),
            report.per_replica.iter().map(|s| s.decode_steps).sum()
        );
        // Event snapshots are post-step (after finishers release KV), so
        // the series peak lower-bounds the report's mid-step peak.
        let kv_peak = agg.iter().map(|w| w.kv_peak_bytes).max().unwrap_or(0);
        assert!(kv_peak > 0 && kv_peak <= report.kv_peak_bytes);
    }

    #[test]
    fn chaos_multi_death_run_survives_with_routing_and_shedding() {
        use meshslice_faults::FailureSpec;
        let cfg = SimConfig::tpu_v4();
        // 80 arrivals at qps 40 span ~2 s of simulated time; MTBF 2 s
        // per chip x 4 chips x 4 replicas over that horizon fires
        // several deaths mid-trace.
        let mut spec = tiny_spec(40.0);
        spec.replicas = 4;
        spec.chaos = Some(ChaosSpec::new(FailureSpec::chip_mtbf(2.0, 2.0), 13));
        spec.router = Some(RouterPolicy::for_slo(0.5));
        spec.shed = Some(ShedPolicy::for_queue_depth(64));
        let report = simulate_fleet(&spec, &cfg).expect("feasible");
        assert!(report.failovers >= 2, "got {} failovers", report.failovers);
        assert_eq!(
            report.completed + report.rejected + report.shed + report.timed_out,
            report.offered,
            "no request may be stranded"
        );
        assert!(report.goodput_tokens_per_chip_s > 0.0);
        assert!(report.downtime.is_some(), "fired draws price downtime");
        // Every terminal outcome kind is consistent with its fields.
        for o in &report.outcomes {
            match o.kind {
                OutcomeKind::Completed => assert!(o.ttft_secs.is_some()),
                OutcomeKind::Rejected | OutcomeKind::Shed | OutcomeKind::TimedOut => {
                    assert!(o.ttft_secs.is_none());
                    assert_eq!(o.generated_tokens, 0);
                }
            }
        }
        // Bit-identical at any thread count, chaos and router included.
        for threads in [2, 8] {
            let parallel = simulate_fleet_threads(&spec, &cfg, threads).expect("feasible");
            assert_eq!(report, parallel);
        }
    }

    #[test]
    fn repair_returns_the_replica_to_nominal_pricing() {
        use meshslice_faults::FailureSpec;
        use meshslice_recovery::RepairModel;
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(40.0);
        spec.chaos = Some(ChaosSpec::new(FailureSpec::chip_mtbf(2.0, 2.0), 5));
        let forever = simulate_fleet(&spec, &cfg).expect("feasible");
        assert!(forever.failovers >= 1, "the draw must fire");
        // Same death schedule (repair consumes an independent RNG), but
        // the replica returns to nominal pricing after the repair.
        spec.chaos = Some(
            ChaosSpec::new(FailureSpec::chip_mtbf(2.0, 2.0), 5)
                .with_repair(RepairModel::exponential(0.2)),
        );
        let repaired = simulate_fleet(&spec, &cfg).expect("feasible");
        assert_eq!(repaired.failovers, forever.failovers);
        let steps = |r: &FleetReport| {
            r.per_replica
                .iter()
                .map(|s| s.degraded_steps)
                .sum::<usize>()
        };
        assert!(
            steps(&repaired) < steps(&forever),
            "repair must end the degraded window: {} vs {}",
            steps(&repaired),
            steps(&forever)
        );
    }

    #[test]
    fn truncated_outage_clamps_the_downtime_to_simulated_time() {
        let cfg = SimConfig::tpu_v4();
        // One request whose KV footprint can never fit: it is rejected
        // the moment the replica drains arrivals — after the outage —
        // so no step ever runs and the outage is fully truncated.
        let mut spec = tiny_spec(5.0);
        spec.replicas = 1;
        spec.num_requests = 1;
        spec.shared_trace = Some(Arc::from(vec![Request {
            id: 0,
            arrival_secs: 0.1,
            prompt_tokens: 50_000_000_000,
            output_tokens: 1,
        }]));
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: 0.05,
        });
        let report = simulate_fleet(&spec, &cfg).expect("feasible");
        assert_eq!(report.rejected, 1);
        assert_eq!(report.failovers, 1, "the death fired");
        let stats = &report.per_replica[0];
        let d = report.downtime.expect("failure injected");
        assert_eq!(d.failovers, 1);
        // The trace ended before any post-outage work, so the observed
        // outage — and every component priced from it — is zero.
        assert_eq!(stats.outage_secs, 0.0);
        assert_eq!(d.detection_secs, 0.0);
        assert_eq!(d.restore_secs, 0.0);
        assert!((d.detection_secs + d.restore_secs - stats.outage_secs).abs() < 1e-12);
    }

    #[test]
    fn shedding_drops_the_newest_arrivals_under_overload() {
        let cfg = SimConfig::tpu_v4();
        // At qps 50k the whole trace floods in faster than one step, so
        // the admission queue overflows depth 4 immediately.
        let mut spec = tiny_spec(50_000.0);
        spec.shed = Some(ShedPolicy::for_queue_depth(4).with_degraded_cap(4));
        let report = simulate_fleet(&spec, &cfg).expect("feasible");
        assert!(report.shed > 0, "queue depth 4 at qps 50k must shed");
        assert!(report.degraded_secs > 0.0, "the degraded cap must engage");
        assert_eq!(
            report.completed + report.rejected + report.shed,
            report.offered
        );
        let per_replica_shed: usize = report.per_replica.iter().map(|s| s.shed).sum();
        assert_eq!(per_replica_shed, report.shed);
        // An idle shed policy leaves the nominal report byte-identical.
        let mut calm = tiny_spec(2.0);
        let nominal = simulate_fleet(&calm, &cfg).expect("feasible");
        calm.shed = Some(ShedPolicy::for_queue_depth(1_000_000));
        let guarded = simulate_fleet(&calm, &cfg).expect("feasible");
        assert_eq!(nominal, guarded);
        assert_eq!(
            nominal.to_json().to_string_pretty(),
            guarded.to_json().to_string_pretty()
        );
    }

    #[test]
    fn router_redirects_around_a_scripted_death() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(200.0);
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: 0.05,
        });
        spec.router = Some(RouterPolicy::for_slo(0.5));
        let report = simulate_fleet(&spec, &cfg).expect("feasible");
        assert!(report.retries > 0, "arrivals inside the blackout retry");
        assert!(
            report.redistributed > 0,
            "the survivor replica absorbs the stranded requests"
        );
        assert_eq!(
            report.completed + report.rejected + report.timed_out,
            report.offered
        );
        // Routed requests keep their original arrival and fold the
        // backoff delay into TTFT; their retry count is recorded.
        let routed: Vec<_> = report.outcomes.iter().filter(|o| o.retries > 0).collect();
        assert!(!routed.is_empty());
        for o in &routed {
            assert!(o.kind == OutcomeKind::Completed || o.kind == OutcomeKind::TimedOut);
        }
    }

    #[test]
    fn prometheus_export_names_the_tail() {
        let report = simulate_fleet(&tiny_spec(5.0), &SimConfig::tpu_v4()).expect("feasible");
        let prom = report.to_prometheus();
        assert!(prom.contains("meshslice_serving_ttft_seconds"));
        assert!(prom.contains("quantile=\"p99\""));
        assert!(prom.contains("outcome=\"completed\""));
        assert!(prom.contains("meshslice_serving_replica_completed{"));
    }
}
