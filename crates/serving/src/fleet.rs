//! The continuous-batching fleet event loop.
//!
//! A fleet is `replicas` identical serving meshes, each running the
//! iteration-level (continuous) batching discipline of Orca/vLLM:
//! requests join the decode batch the step after their prefill and
//! leave the step they emit their last token, so the batch composition
//! changes every iteration instead of every request group. Requests are
//! dispatched to replicas round-robin by id — a state-independent rule,
//! so each replica's timeline can be simulated independently and the
//! whole fleet parallelizes over [`meshslice::par`] with bit-identical
//! results at any thread count.
//!
//! Each replica enforces KV-cache admission control against its HBM
//! budget: requests whose peak KV footprint can never fit are rejected
//! on arrival, and decode-time pressure preempts the most recently
//! admitted request (its KV is dropped and rebuilt by a later
//! re-prefill). A scheduled chip death knocks the replica out for the
//! failover outage (detection plus weight-shard restore from a
//! checkpointed peer), drops its KV, and leaves it serving on the
//! degraded-torus column of the cost tables.

use std::collections::VecDeque;
use std::sync::Arc;

use meshslice::llm::LlmConfig;
use meshslice::par;
use meshslice::{MeshShape, SimConfig};
use meshslice_recovery::ServingFailover;
use meshslice_telemetry::{
    FleetSeries, Json, LatencySummary, RecordingSink, ReplicaSeriesBuilder, ServingEvent,
    ServingTrace, TraceSink,
};

use crate::arrival::{ArrivalSpec, Request};
use crate::costs::{build_replica_costs, PhaseCostTable, ReplicaCosts};

/// A permanent chip failure injected into the fleet mid-simulation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChipDeath {
    /// Which replica loses a chip.
    pub replica: usize,
    /// When, seconds from simulation start.
    pub at_secs: f64,
}

/// One fleet-simulation configuration.
#[derive(Clone, Debug)]
pub struct ServingSpec {
    /// Model being served (weights replicated per replica).
    pub model: LlmConfig,
    /// Mesh shape of each replica.
    pub mesh: MeshShape,
    /// Requested MeshSlice slice count (clamped to legal per GeMM).
    pub slice_count: usize,
    /// Number of identical replicas.
    pub replicas: usize,
    /// Decode batch-size cap of the batching policy.
    pub max_batch: usize,
    /// Offered load.
    pub arrivals: ArrivalSpec,
    /// Length of the request trace to simulate.
    pub num_requests: usize,
    /// Seed of the arrival draw.
    pub seed: u64,
    /// TTFT p99 target, milliseconds.
    pub slo_p99_ttft_ms: f64,
    /// Optional injected chip death.
    pub failure: Option<ChipDeath>,
    /// Prebuilt cost tables to serve from (e.g. a [`CostTableCache`]
    /// view), skipping the per-call [`build_replica_costs`]. Must match
    /// the spec's mesh and batch cap; [`validate`](Self::validate)
    /// rejects mismatches and nominal-only tables under an injected
    /// failure.
    ///
    /// [`CostTableCache`]: crate::costs::CostTableCache
    pub shared_costs: Option<Arc<ReplicaCosts>>,
    /// Predrawn arrival trace to simulate (ids `0..len`, as
    /// [`ArrivalSpec::generate`] draws them), skipping the per-call
    /// draw. May be longer than `num_requests`; the simulation serves
    /// the prefix, which equals a direct `num_requests`-long draw
    /// because the arrival sampler draws per request.
    pub shared_trace: Option<Arc<[Request]>>,
}

impl ServingSpec {
    /// A spec with sensible defaults: Poisson arrivals at `qps`, slice
    /// count 4, batch cap 32, 200-request trace, 500 ms TTFT SLO.
    pub fn new(model: LlmConfig, mesh: MeshShape, replicas: usize, qps: f64) -> ServingSpec {
        ServingSpec {
            model,
            mesh,
            slice_count: 4,
            replicas,
            max_batch: 32,
            arrivals: ArrivalSpec::poisson(qps),
            num_requests: 200,
            seed: 0,
            slo_p99_ttft_ms: 500.0,
            failure: None,
            shared_costs: None,
            shared_trace: None,
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.arrivals.validate()?;
        if self.replicas == 0 {
            return Err("fleet needs at least one replica".into());
        }
        if self.max_batch == 0 {
            return Err("batching policy needs a positive batch cap".into());
        }
        if self.num_requests == 0 {
            return Err("request trace must not be empty".into());
        }
        if !(self.slo_p99_ttft_ms.is_finite() && self.slo_p99_ttft_ms > 0.0) {
            return Err(format!(
                "SLO target {} ms must be finite and positive",
                self.slo_p99_ttft_ms
            ));
        }
        if let Some(f) = &self.failure {
            if f.replica >= self.replicas {
                return Err(format!(
                    "failure replica {} out of range ({} replicas)",
                    f.replica, self.replicas
                ));
            }
            if !(f.at_secs.is_finite() && f.at_secs >= 0.0) {
                return Err(format!(
                    "failure time {} must be finite and non-negative",
                    f.at_secs
                ));
            }
        }
        if let Some(costs) = &self.shared_costs {
            if costs.mesh != self.mesh {
                return Err(format!(
                    "shared cost tables were built for a {} mesh, spec wants {}",
                    costs.mesh, self.mesh
                ));
            }
            if costs.max_batch != self.max_batch {
                return Err(format!(
                    "shared cost tables cap batches at {}, spec wants {}",
                    costs.max_batch, self.max_batch
                ));
            }
            if costs.prefill.buckets.is_empty() || costs.decode.buckets.is_empty() {
                return Err("shared cost tables have no feasible buckets".into());
            }
            if self.failure.is_some() && !costs.degraded_priced {
                return Err(
                    "shared cost tables are nominal-only but the spec injects a chip death".into(),
                );
            }
        }
        if let Some(trace) = &self.shared_trace {
            if trace.len() < self.num_requests {
                return Err(format!(
                    "shared trace holds {} requests, spec wants {}",
                    trace.len(),
                    self.num_requests
                ));
            }
            if trace[..self.num_requests]
                .iter()
                .enumerate()
                .any(|(i, r)| r.id != i)
            {
                return Err("shared trace ids must be sequential from 0".into());
            }
        }
        Ok(())
    }
}

/// The fate of one request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RequestOutcome {
    /// Trace id.
    pub id: usize,
    /// Replica it was dispatched to.
    pub replica: usize,
    /// Arrival time, seconds.
    pub arrival_secs: f64,
    /// Time to first token, seconds; `None` if rejected.
    pub ttft_secs: Option<f64>,
    /// Mean time per output token after the first, seconds; `None` for
    /// rejected or single-token requests.
    pub tpot_secs: Option<f64>,
    /// Tokens actually generated.
    pub generated_tokens: usize,
    /// Times this request was preempted (KV dropped and rebuilt).
    pub preemptions: usize,
}

/// Per-replica accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReplicaStats {
    /// Requests completed.
    pub completed: usize,
    /// Requests rejected at admission (peak KV can never fit).
    pub rejected: usize,
    /// Preemption events under KV pressure (plus failover evictions).
    pub preemptions: usize,
    /// Decode steps executed.
    pub decode_steps: usize,
    /// Prefill chunks executed.
    pub prefill_chunks: usize,
    /// Steps executed on the degraded torus after a failover.
    pub degraded_steps: usize,
    /// Whether the injected chip death hit this replica.
    pub failed_over: bool,
    /// Peak per-chip KV bytes observed.
    pub kv_peak_bytes: u64,
    /// Time of the last event on this replica, seconds.
    pub makespan_secs: f64,
    /// Seconds the replica was out for failover (detection + restore).
    pub outage_secs: f64,
    /// Prefill-chunk seconds spent rebuilding preempted or failed-over
    /// requests (token-weighted share of mixed chunks).
    pub reprefill_secs: f64,
    /// Extra step seconds paid for running on the degraded torus
    /// (degraded cost minus what the nominal mesh would have charged).
    pub degraded_extra_secs: f64,
}

/// Fleet-wide chip-death cost accounting: where the wall-clock lost to
/// the failure went. Present in the report when the spec injects a
/// [`ChipDeath`]; serialized as the `downtime_s` artifact section.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServingDowntime {
    /// Failure-detection seconds across failovers.
    pub detection_secs: f64,
    /// Weight-shard restore seconds across failovers.
    pub restore_secs: f64,
    /// Re-prefill seconds rebuilding evicted KV caches.
    pub reprefill_secs: f64,
    /// Extra step seconds paid on the degraded torus.
    pub degraded_extra_secs: f64,
    /// Replicas that failed over.
    pub failovers: usize,
}

impl ServingDowntime {
    /// Serializes the breakdown (all durations seconds).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("detection", Json::Num(self.detection_secs)),
            ("restore", Json::Num(self.restore_secs)),
            ("reprefill", Json::Num(self.reprefill_secs)),
            ("degraded_extra", Json::Num(self.degraded_extra_secs)),
            ("failovers", Json::Num(self.failovers as f64)),
        ])
    }

    /// Total downtime attributed to the chip death, seconds.
    pub fn total_secs(&self) -> f64 {
        self.detection_secs + self.restore_secs + self.reprefill_secs + self.degraded_extra_secs
    }
}

/// Everything a fleet run reports: the latency order statistics, the
/// throughput actually delivered, and the SLO verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetReport {
    /// Spec echo: model name.
    pub model: String,
    /// Spec echo: per-replica mesh.
    pub mesh: MeshShape,
    /// Spec echo: requested slice count.
    pub slice_count: usize,
    /// Spec echo: replica count.
    pub replicas: usize,
    /// Spec echo: batch cap.
    pub max_batch: usize,
    /// Spec echo: mean offered load, requests/second.
    pub qps: f64,
    /// Spec echo: arrival seed.
    pub seed: u64,
    /// Spec echo: TTFT p99 target, milliseconds.
    pub slo_p99_ttft_ms: f64,
    /// Requests offered (trace length).
    pub offered: usize,
    /// Requests completed fleet-wide.
    pub completed: usize,
    /// Requests rejected fleet-wide.
    pub rejected: usize,
    /// Preemption events fleet-wide.
    pub preemptions: usize,
    /// Replicas that failed over.
    pub failovers: usize,
    /// Time-to-first-token order statistics, seconds.
    pub ttft: LatencySummary,
    /// Time-per-output-token order statistics, seconds.
    pub tpot: LatencySummary,
    /// Wall-clock of the longest replica timeline, seconds.
    pub makespan_secs: f64,
    /// Tokens generated by completed requests.
    pub generated_tokens: usize,
    /// Generated tokens per chip per second — the headline efficiency.
    pub goodput_tokens_per_chip_s: f64,
    /// Whether TTFT p99 met the target.
    pub slo_attained: bool,
    /// Fraction of completed requests whose TTFT met the target.
    pub slo_attainment: f64,
    /// Per-chip KV budget, bytes.
    pub kv_budget_bytes: u64,
    /// Peak per-chip KV usage across replicas, bytes.
    pub kv_peak_bytes: u64,
    /// Per-replica accounting.
    pub per_replica: Vec<ReplicaStats>,
    /// Chip-death cost breakdown when the spec injects a failure.
    pub downtime: Option<ServingDowntime>,
    /// Windowed per-replica time-series (always computed, O(windows)).
    pub series: FleetSeries,
    /// Per-request outcomes, by trace id.
    pub outcomes: Vec<RequestOutcome>,
}

impl FleetReport {
    /// Total chips across the fleet.
    pub fn total_chips(&self) -> usize {
        self.mesh.num_chips() * self.replicas
    }

    /// Serializes the report to the `serving.schema.json` artifact shape.
    pub fn to_json(&self) -> Json {
        let per_replica = self
            .per_replica
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("completed", Json::Num(r.completed as f64)),
                    ("rejected", Json::Num(r.rejected as f64)),
                    ("preemptions", Json::Num(r.preemptions as f64)),
                    ("decode_steps", Json::Num(r.decode_steps as f64)),
                    ("prefill_chunks", Json::Num(r.prefill_chunks as f64)),
                    ("degraded_steps", Json::Num(r.degraded_steps as f64)),
                    ("failed_over", Json::Bool(r.failed_over)),
                    ("kv_peak_bytes", Json::Num(r.kv_peak_bytes as f64)),
                    ("makespan_secs", Json::Num(r.makespan_secs)),
                    ("outage_secs", Json::Num(r.outage_secs)),
                    ("reprefill_secs", Json::Num(r.reprefill_secs)),
                    ("degraded_extra_secs", Json::Num(r.degraded_extra_secs)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("schema_version", Json::Num(2.0)),
            ("model", Json::Str(self.model.clone())),
            ("mesh_rows", Json::Num(self.mesh.rows as f64)),
            ("mesh_cols", Json::Num(self.mesh.cols as f64)),
            ("slice_count", Json::Num(self.slice_count as f64)),
            ("replicas", Json::Num(self.replicas as f64)),
            ("chips_total", Json::Num(self.total_chips() as f64)),
            ("max_batch", Json::Num(self.max_batch as f64)),
            ("qps", Json::Num(self.qps)),
            ("seed", Json::Num(self.seed as f64)),
            ("offered", Json::Num(self.offered as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("preemptions", Json::Num(self.preemptions as f64)),
            ("failovers", Json::Num(self.failovers as f64)),
            ("ttft_ms", self.ttft.to_json_scaled(1e3)),
            ("tpot_ms", self.tpot.to_json_scaled(1e3)),
            ("makespan_secs", Json::Num(self.makespan_secs)),
            ("generated_tokens", Json::Num(self.generated_tokens as f64)),
            (
                "goodput_tokens_per_chip_s",
                Json::Num(self.goodput_tokens_per_chip_s),
            ),
            ("slo_p99_ttft_ms", Json::Num(self.slo_p99_ttft_ms)),
            ("slo_attained", Json::Bool(self.slo_attained)),
            ("slo_attainment", Json::Num(self.slo_attainment)),
            ("kv_budget_bytes", Json::Num(self.kv_budget_bytes as f64)),
            ("kv_peak_bytes", Json::Num(self.kv_peak_bytes as f64)),
            ("per_replica", Json::Arr(per_replica)),
        ];
        if let Some(d) = &self.downtime {
            fields.push(("downtime_s", d.to_json()));
        }
        fields.push(("timeseries", self.series.to_json()));
        Json::obj(fields)
    }

    /// Prometheus text-exposition export of the fleet headline metrics,
    /// mirroring `RunMetrics::to_prometheus` for training runs.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let labels = format!("model=\"{}\",mesh=\"{}\"", self.model, self.mesh);
        let mut gauge = |name: &str, extra: &str, v: f64| {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            let sep = if extra.is_empty() { "" } else { "," };
            out.push_str(&format!("{name}{{{labels}{sep}{extra}}} {v}\n"));
        };
        for (q, v) in [
            ("p50", self.ttft.p50),
            ("p95", self.ttft.p95),
            ("p99", self.ttft.p99),
        ] {
            gauge(
                "meshslice_serving_ttft_seconds",
                &format!("quantile=\"{q}\""),
                v,
            );
        }
        for (q, v) in [
            ("p50", self.tpot.p50),
            ("p95", self.tpot.p95),
            ("p99", self.tpot.p99),
        ] {
            gauge(
                "meshslice_serving_tpot_seconds",
                &format!("quantile=\"{q}\""),
                v,
            );
        }
        gauge(
            "meshslice_serving_goodput_tokens_per_chip",
            "",
            self.goodput_tokens_per_chip_s,
        );
        gauge("meshslice_serving_slo_attainment", "", self.slo_attainment);
        for (outcome, v) in [
            ("offered", self.offered),
            ("completed", self.completed),
            ("rejected", self.rejected),
            ("preemptions", self.preemptions),
            ("failovers", self.failovers),
        ] {
            gauge(
                "meshslice_serving_requests_total",
                &format!("outcome=\"{outcome}\""),
                v as f64,
            );
        }
        gauge(
            "meshslice_serving_kv_peak_bytes",
            "",
            self.kv_peak_bytes as f64,
        );
        gauge(
            "meshslice_serving_kv_budget_bytes",
            "",
            self.kv_budget_bytes as f64,
        );
        for (r, s) in self.per_replica.iter().enumerate() {
            gauge(
                "meshslice_serving_replica_completed",
                &format!("replica=\"{r}\""),
                s.completed as f64,
            );
            gauge(
                "meshslice_serving_replica_makespan_seconds",
                &format!("replica=\"{r}\""),
                s.makespan_secs,
            );
        }
        out
    }
}

/// Simulates the fleet serially. See [`simulate_fleet_threads`].
///
/// # Errors
///
/// Returns a message when the spec is invalid or the model cannot be
/// served on the configured mesh.
pub fn simulate_fleet(spec: &ServingSpec, cfg: &SimConfig) -> Result<FleetReport, String> {
    simulate_fleet_threads(spec, cfg, 1)
}

/// Simulates the fleet while recording the full request-level trace.
///
/// Tracing is observation-only: the returned `FleetReport` is
/// bit-for-bit identical to what [`simulate_fleet_threads`] produces
/// for the same spec (property-tested in `tests/serving_properties.rs`).
///
/// # Errors
///
/// Same conditions as [`simulate_fleet_threads`].
pub fn simulate_fleet_traced(
    spec: &ServingSpec,
    cfg: &SimConfig,
    threads: usize,
) -> Result<(FleetReport, ServingTrace), String> {
    let (report, trace) = run_fleet(spec, cfg, threads, true)?;
    Ok((report, trace.expect("recording was requested")))
}

/// Simulates the fleet with replicas distributed over `threads` workers.
///
/// Dispatch is round-robin by request id and each replica's timeline is
/// simulated independently, so the report is bit-for-bit identical at
/// any thread count.
///
/// # Errors
///
/// Returns a message when the spec is invalid or the model cannot be
/// served on the configured mesh (weights leave no KV budget, or no
/// batch bucket divides over it).
pub fn simulate_fleet_threads(
    spec: &ServingSpec,
    cfg: &SimConfig,
    threads: usize,
) -> Result<FleetReport, String> {
    run_fleet(spec, cfg, threads, false).map(|(report, _)| report)
}

/// Per-replica sink stack: the windowed series is always built (it is
/// part of the report); full event recording is opt-in. Neither feeds
/// back into the loop's arithmetic.
struct ReplicaSinks {
    series: ReplicaSeriesBuilder,
    record: Option<RecordingSink>,
}

impl TraceSink for ReplicaSinks {
    fn event(&mut self, e: &ServingEvent) {
        self.series.event(e);
        if let Some(r) = &mut self.record {
            r.event(e);
        }
    }
}

fn run_fleet(
    spec: &ServingSpec,
    cfg: &SimConfig,
    threads: usize,
    record: bool,
) -> Result<(FleetReport, Option<ServingTrace>), String> {
    spec.validate()?;
    let costs: Arc<ReplicaCosts> = match &spec.shared_costs {
        Some(shared) => shared.clone(),
        None => Arc::new(
            build_replica_costs(
                &spec.model,
                spec.mesh,
                spec.slice_count,
                spec.max_batch,
                cfg,
            )
            .ok_or_else(|| {
                format!(
                    "{} cannot be served on a {} mesh: weights leave no KV budget or no batch bucket divides",
                    spec.model.name, spec.mesh
                )
            })?,
        ),
    };
    let failover = ServingFailover::for_model(&spec.model, spec.mesh);
    let owned_trace;
    let trace: &[Request] = match &spec.shared_trace {
        // The prefix of a longer shared draw equals a direct
        // `num_requests`-long draw: the sampler draws per request.
        Some(shared) => &shared[..spec.num_requests],
        None => {
            owned_trace = spec.arrivals.generate(spec.num_requests, spec.seed);
            &owned_trace
        }
    };

    // Round-robin dispatch by id: state-independent, so the per-replica
    // request streams — and therefore the simulation — do not depend on
    // how replicas are scheduled onto worker threads.
    let mut streams: Vec<Vec<Request>> = vec![Vec::new(); spec.replicas];
    for r in trace {
        streams[r.id % spec.replicas].push(*r);
    }
    let slo_secs = spec.slo_p99_ttft_ms / 1e3;
    let indices: Vec<usize> = (0..spec.replicas).collect();
    let runs = par::parallel_map_threads(threads, &indices, |&r| {
        let fail_at = spec
            .failure
            .as_ref()
            .filter(|f| f.replica == r)
            .map(|f| f.at_secs);
        let mut sinks = ReplicaSinks {
            series: ReplicaSeriesBuilder::new(),
            record: record.then(RecordingSink::default),
        };
        let run = simulate_replica(
            &costs,
            &streams[r],
            fail_at,
            &failover,
            slo_secs,
            &mut sinks,
        );
        (run, sinks)
    });

    let mut outcomes = Vec::with_capacity(trace.len());
    let mut per_replica = Vec::with_capacity(spec.replicas);
    let mut builders = Vec::with_capacity(spec.replicas);
    let mut recorded: Vec<Vec<ServingEvent>> = Vec::with_capacity(spec.replicas);
    for (r, (run, sinks)) in runs.into_iter().enumerate() {
        outcomes.extend(run.outcomes.into_iter().map(|mut o| {
            o.replica = r;
            o
        }));
        per_replica.push(run.stats);
        builders.push(sinks.series);
        if let Some(rec) = sinks.record {
            recorded.push(rec.events);
        }
    }
    outcomes.sort_by_key(|o| o.id);
    let series = FleetSeries::from_builders(builders);

    let ttft_samples: Vec<f64> = outcomes.iter().filter_map(|o| o.ttft_secs).collect();
    let slo_hits = ttft_samples.iter().filter(|&&t| t <= slo_secs).count();
    let ttft = LatencySummary::from_unsorted(ttft_samples.clone());
    let tpot = LatencySummary::from_unsorted(outcomes.iter().filter_map(|o| o.tpot_secs).collect());

    let completed: usize = per_replica.iter().map(|s| s.completed).sum();
    let generated_tokens: usize = outcomes
        .iter()
        .filter(|o| o.ttft_secs.is_some())
        .map(|o| o.generated_tokens)
        .sum();
    let makespan_secs = per_replica
        .iter()
        .map(|s| s.makespan_secs)
        .fold(0.0, f64::max);
    let total_chips = spec.mesh.num_chips() * spec.replicas;
    let goodput = if makespan_secs > 0.0 {
        generated_tokens as f64 / makespan_secs / total_chips as f64
    } else {
        0.0
    };
    let failovers = per_replica.iter().filter(|s| s.failed_over).count();
    let downtime = spec.failure.map(|_| ServingDowntime {
        detection_secs: failovers as f64 * failover.detect_secs,
        restore_secs: failovers as f64 * failover.restore_secs,
        reprefill_secs: per_replica.iter().map(|s| s.reprefill_secs).sum(),
        degraded_extra_secs: per_replica.iter().map(|s| s.degraded_extra_secs).sum(),
        failovers,
    });
    let serving_trace = if record {
        Some(ServingTrace {
            model: spec.model.name.clone(),
            mesh: format!("{}", spec.mesh),
            replicas: spec.replicas,
            qps: spec.arrivals.qps,
            seed: spec.seed,
            slo_p99_ttft_ms: spec.slo_p99_ttft_ms,
            events: recorded,
        })
    } else {
        None
    };

    let report = FleetReport {
        model: spec.model.name.to_string(),
        mesh: spec.mesh,
        slice_count: spec.slice_count,
        replicas: spec.replicas,
        max_batch: spec.max_batch,
        qps: spec.arrivals.qps,
        seed: spec.seed,
        slo_p99_ttft_ms: spec.slo_p99_ttft_ms,
        offered: trace.len(),
        completed,
        rejected: per_replica.iter().map(|s| s.rejected).sum(),
        preemptions: per_replica.iter().map(|s| s.preemptions).sum(),
        failovers,
        slo_attained: ttft.count > 0 && ttft.p99 <= slo_secs,
        slo_attainment: if ttft.count > 0 {
            slo_hits as f64 / ttft.count as f64
        } else {
            0.0
        },
        ttft,
        tpot,
        makespan_secs,
        generated_tokens,
        goodput_tokens_per_chip_s: goodput,
        kv_budget_bytes: costs.kv_budget_bytes,
        kv_peak_bytes: per_replica
            .iter()
            .map(|s| s.kv_peak_bytes)
            .max()
            .unwrap_or(0),
        per_replica,
        downtime,
        series,
        outcomes,
    };
    Ok((report, serving_trace))
}

struct ReplicaRun {
    outcomes: Vec<RequestOutcome>,
    stats: ReplicaStats,
}

/// Builds the completion event for one finished request.
fn completed_event(
    req: &Request,
    end: f64,
    first: f64,
    generated: usize,
    preempts: usize,
    slo_secs: f64,
) -> ServingEvent {
    let ttft = first - req.arrival_secs;
    ServingEvent::Completed {
        id: req.id,
        t: end,
        ttft,
        generated,
        preemptions: preempts,
        slo_ok: ttft <= slo_secs,
    }
}

/// Per-request progress, one slab slot per stream request. `generated`
/// counts emitted tokens (the first comes out of prefill); a request
/// pins `prompt + generated` KV tokens while resident.
#[derive(Clone, Copy, Default)]
struct ReqState {
    generated: usize,
    first_token: Option<f64>,
    finish: Option<f64>,
    preemptions: usize,
    rejected: bool,
}

/// One replica's timeline: a sequential discrete-event loop over its
/// request stream. All arithmetic is sequential f64, so the result is a
/// pure function of `(costs, requests, fail_at, failover)` — the sink
/// only observes, it never influences the loop.
///
/// Request state lives in one [`ReqState`] slab indexed by stream
/// position, and the batch-assembly buffers are reused across
/// iterations: the steady-state decode path allocates nothing per step
/// (property-tested to leave the report bit-for-bit unchanged).
fn simulate_replica(
    costs: &ReplicaCosts,
    requests: &[Request],
    fail_at: Option<f64>,
    failover: &ServingFailover,
    slo_secs: f64,
    sink: &mut dyn TraceSink,
) -> ReplicaRun {
    let per_token = costs.kv_bytes_per_token;
    let budget = costs.kv_budget_bytes;
    let n = requests.len();

    let mut reqs: Vec<ReqState> = vec![ReqState::default(); n];

    let mut t = 0.0_f64;
    let mut next_arrival = 0usize;
    let mut waiting: VecDeque<usize> = VecDeque::new();
    let mut active: Vec<usize> = Vec::new(); // admission order (oldest first)
    let mut kv_used = 0u64;
    let mut degraded = false;
    let mut failed_over = false;
    let mut stats = ReplicaStats::default();

    // Per-iteration batch buffers, reused across the whole loop.
    let mut chunk: Vec<usize> = Vec::new();
    let mut fresh_ids: Vec<usize> = Vec::new();
    let mut resumed_ids: Vec<usize> = Vec::new();
    let mut finished: Vec<usize> = Vec::new();

    let kv_of =
        |idx: usize, reqs: &[ReqState]| (requests[idx].prompt_tokens + reqs[idx].generated) as u64;
    let phase_secs = |table: &PhaseCostTable, size: usize, degraded: bool| {
        table
            .cost_secs(size, degraded)
            .expect("replica cost tables are validated non-empty")
    };

    loop {
        // Admission: a request whose peak KV footprint exceeds the whole
        // budget can never run; everything else queues.
        while next_arrival < n && requests[next_arrival].arrival_secs <= t {
            let idx = next_arrival;
            next_arrival += 1;
            let id = requests[idx].id;
            let at = requests[idx].arrival_secs;
            sink.event(&ServingEvent::Arrival { id, t: at });
            if requests[idx].peak_kv_tokens() as u64 * per_token > budget {
                reqs[idx].rejected = true;
                stats.rejected += 1;
                sink.event(&ServingEvent::Rejected { id, t: at });
            } else {
                waiting.push_back(idx);
                sink.event(&ServingEvent::Queued {
                    id,
                    t: at,
                    queue: waiting.len(),
                });
            }
        }

        // Chip death: the replica is out for detection + weight restore,
        // its KV cache is gone (the in-flight batch re-prefills), and it
        // continues on the degraded torus.
        if let Some(at) = fail_at {
            if !failed_over && t >= at {
                failed_over = true;
                degraded = true;
                stats.failed_over = true;
                let start = t;
                t += failover.outage_secs();
                stats.outage_secs += failover.outage_secs();
                sink.event(&ServingEvent::Outage { start, end: t });
                while let Some(idx) = active.pop() {
                    reqs[idx].preemptions += 1;
                    stats.preemptions += 1;
                    waiting.push_front(idx);
                    sink.event(&ServingEvent::Preempted {
                        id: requests[idx].id,
                        t: start,
                    });
                }
                kv_used = 0;
                continue;
            }
        }

        // Prefill-prioritized continuous batching: fill the batch before
        // decoding. A preempted or failed-over request re-prefills its
        // prompt plus everything it had generated.
        if !waiting.is_empty() && active.len() < costs.max_batch {
            chunk.clear();
            fresh_ids.clear();
            resumed_ids.clear();
            let mut chunk_tokens = 0usize;
            let mut chunk_kv = 0u64;
            let mut resumed_tokens = 0usize;
            while let Some(&idx) = waiting.front() {
                if active.len() + chunk.len() >= costs.max_batch {
                    break;
                }
                let tokens = requests[idx].prompt_tokens + reqs[idx].generated.max(1);
                if !chunk.is_empty() && chunk_tokens + tokens > costs.prefill.max_size() {
                    break;
                }
                if kv_used + chunk_kv + tokens as u64 * per_token > budget {
                    break;
                }
                waiting.pop_front();
                chunk.push(idx);
                chunk_tokens += tokens;
                chunk_kv += tokens as u64 * per_token;
                if reqs[idx].generated > 0 {
                    resumed_tokens += tokens;
                    resumed_ids.push(requests[idx].id);
                } else {
                    fresh_ids.push(requests[idx].id);
                }
            }
            if !chunk.is_empty() {
                let start = t;
                let cost = phase_secs(&costs.prefill, chunk_tokens, degraded);
                t += cost;
                stats.prefill_chunks += 1;
                if degraded {
                    stats.degraded_steps += 1;
                    stats.degraded_extra_secs +=
                        cost - phase_secs(&costs.prefill, chunk_tokens, false);
                }
                if chunk_tokens > 0 {
                    stats.reprefill_secs += cost * resumed_tokens as f64 / chunk_tokens as f64;
                }
                finished.clear();
                for &idx in &chunk {
                    reqs[idx].generated = reqs[idx].generated.max(1);
                    if reqs[idx].first_token.is_none() {
                        reqs[idx].first_token = Some(t);
                    }
                    if reqs[idx].generated >= requests[idx].output_tokens {
                        reqs[idx].finish = Some(t);
                        stats.completed += 1;
                        finished.push(idx);
                    } else {
                        kv_used += kv_of(idx, &reqs) * per_token;
                        active.push(idx);
                    }
                }
                stats.kv_peak_bytes = stats.kv_peak_bytes.max(kv_used);
                stats.makespan_secs = t;
                sink.event(&ServingEvent::Prefill {
                    start,
                    end: t,
                    tokens: chunk_tokens,
                    fresh: fresh_ids.clone(),
                    resumed: resumed_ids.clone(),
                    degraded,
                    kv_bytes: kv_used,
                    queue: waiting.len(),
                });
                for &id in &fresh_ids {
                    sink.event(&ServingEvent::FirstToken { id, t });
                }
                for &idx in &finished {
                    let first = reqs[idx]
                        .first_token
                        .expect("completed requests have a first token");
                    sink.event(&completed_event(
                        &requests[idx],
                        t,
                        first,
                        reqs[idx].generated,
                        reqs[idx].preemptions,
                        slo_secs,
                    ));
                }
                continue;
            }
        }

        // Decode step: one token per active request. Under KV pressure,
        // preempt the most recently admitted request (LIFO) — its cache
        // is dropped and rebuilt by a later re-prefill.
        if !active.is_empty() {
            while active.len() > 1 && kv_used + active.len() as u64 * per_token > budget {
                let victim = active.pop().expect("non-empty");
                kv_used -= kv_of(victim, &reqs) * per_token;
                reqs[victim].preemptions += 1;
                stats.preemptions += 1;
                waiting.push_front(victim);
                sink.event(&ServingEvent::Preempted {
                    id: requests[victim].id,
                    t,
                });
            }
            let batch = active.len();
            let start = t;
            let cost = phase_secs(&costs.decode, batch, degraded);
            t += cost;
            stats.decode_steps += 1;
            if degraded {
                stats.degraded_steps += 1;
                stats.degraded_extra_secs += cost - phase_secs(&costs.decode, batch, false);
            }
            kv_used += batch as u64 * per_token;
            stats.kv_peak_bytes = stats.kv_peak_bytes.max(kv_used);
            finished.clear();
            let mut i = 0;
            while i < active.len() {
                let idx = active[i];
                reqs[idx].generated += 1;
                if reqs[idx].generated >= requests[idx].output_tokens {
                    reqs[idx].finish = Some(t);
                    stats.completed += 1;
                    kv_used -= kv_of(idx, &reqs) * per_token;
                    active.remove(i);
                    finished.push(idx);
                } else {
                    i += 1;
                }
            }
            stats.makespan_secs = t;
            sink.event(&ServingEvent::Decode {
                start,
                end: t,
                batch,
                degraded,
                kv_bytes: kv_used,
                queue: waiting.len(),
            });
            for &idx in &finished {
                let first = reqs[idx]
                    .first_token
                    .expect("completed requests have a first token");
                sink.event(&completed_event(
                    &requests[idx],
                    t,
                    first,
                    reqs[idx].generated,
                    reqs[idx].preemptions,
                    slo_secs,
                ));
            }
            continue;
        }

        // Idle: jump to the next arrival (or the scheduled death if it
        // comes first and is still pending).
        if next_arrival < n {
            let mut wake = requests[next_arrival].arrival_secs;
            if let Some(at) = fail_at {
                if !failed_over {
                    wake = wake.min(at.max(t));
                }
            }
            t = t.max(wake);
            continue;
        }
        break;
    }

    let outcomes = requests
        .iter()
        .zip(&reqs)
        .map(|(r, state)| {
            let ttft = state.first_token.map(|ft| ft - r.arrival_secs);
            let tpot = match (state.first_token, state.finish) {
                (Some(ft), Some(fin)) if state.generated > 1 => {
                    Some((fin - ft) / (state.generated - 1) as f64)
                }
                _ => None,
            };
            RequestOutcome {
                id: r.id,
                replica: 0, // filled in by the fleet merge
                arrival_secs: r.arrival_secs,
                ttft_secs: ttft,
                tpot_secs: tpot,
                generated_tokens: if state.rejected { 0 } else { state.generated },
                preemptions: state.preemptions,
            }
        })
        .collect();
    ReplicaRun { outcomes, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{CostProfile, CostTableCache};

    fn tiny() -> LlmConfig {
        LlmConfig::tiny()
    }

    fn tiny_spec(qps: f64) -> ServingSpec {
        let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 2, qps);
        spec.num_requests = 80;
        spec.seed = 7;
        spec
    }

    #[test]
    fn fleet_completes_all_requests_at_low_load() {
        let report = simulate_fleet(&tiny_spec(5.0), &SimConfig::tpu_v4()).expect("feasible");
        assert_eq!(report.offered, 80);
        assert_eq!(report.completed + report.rejected, 80);
        assert_eq!(report.rejected, 0, "tiny requests all fit the KV budget");
        assert!(report.ttft.p50 > 0.0);
        assert!(report.goodput_tokens_per_chip_s > 0.0);
        assert!(report.slo_attainment > 0.0);
    }

    #[test]
    fn same_seed_same_report_different_seed_differs() {
        let cfg = SimConfig::tpu_v4();
        let a = simulate_fleet(&tiny_spec(5.0), &cfg).expect("feasible");
        let b = simulate_fleet(&tiny_spec(5.0), &cfg).expect("feasible");
        assert_eq!(a.ttft, b.ttft);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        let mut other = tiny_spec(5.0);
        other.seed = 8;
        let c = simulate_fleet(&other, &cfg).expect("feasible");
        assert_ne!(a.ttft, c.ttft);
    }

    #[test]
    fn thread_count_does_not_change_the_report() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(20.0);
        spec.replicas = 4;
        let serial = simulate_fleet_threads(&spec, &cfg, 1).expect("feasible");
        for threads in [2, 8] {
            let parallel = simulate_fleet_threads(&spec, &cfg, threads).expect("feasible");
            assert_eq!(serial.ttft, parallel.ttft);
            assert_eq!(serial.tpot, parallel.tpot);
            assert_eq!(serial.outcomes, parallel.outcomes);
            assert_eq!(serial.makespan_secs, parallel.makespan_secs);
        }
    }

    #[test]
    fn overload_raises_tail_latency() {
        let cfg = SimConfig::tpu_v4();
        let light = simulate_fleet(&tiny_spec(2.0), &cfg).expect("feasible");
        let heavy = simulate_fleet(&tiny_spec(2000.0), &cfg).expect("feasible");
        assert!(
            heavy.ttft.p99 > light.ttft.p99,
            "queueing must show up in the tail: {} vs {}",
            heavy.ttft.p99,
            light.ttft.p99
        );
    }

    #[test]
    fn chip_death_degrades_but_does_not_abort() {
        let cfg = SimConfig::tpu_v4();
        // Overloaded, so the fleet is never idle: the outage and the
        // degraded torus must show up as strictly lost throughput rather
        // than being absorbed by slack.
        let mut spec = tiny_spec(2000.0);
        let healthy = simulate_fleet(&spec, &cfg).expect("feasible");
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: healthy.makespan_secs / 4.0,
        });
        let wounded = simulate_fleet(&spec, &cfg).expect("feasible");
        assert_eq!(wounded.failovers, 1);
        assert!(wounded.per_replica[0].failed_over);
        assert!(wounded.per_replica[0].degraded_steps > 0);
        assert_eq!(wounded.completed + wounded.rejected, wounded.offered);
        assert!(wounded.goodput_tokens_per_chip_s > 0.0);
        assert!(
            wounded.goodput_tokens_per_chip_s < healthy.goodput_tokens_per_chip_s,
            "outage + degraded torus must cost throughput"
        );
    }

    #[test]
    fn kv_peak_stays_within_budget() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(500.0);
        spec.max_batch = 64;
        let report = simulate_fleet(&spec, &cfg).expect("feasible");
        assert!(report.kv_peak_bytes <= report.kv_budget_bytes);
        assert!(report.kv_peak_bytes > 0);
    }

    #[test]
    fn invalid_specs_error_out() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(5.0);
        spec.replicas = 0;
        assert!(simulate_fleet(&spec, &cfg).is_err());
        let mut spec = tiny_spec(5.0);
        spec.failure = Some(ChipDeath {
            replica: 9,
            at_secs: 1.0,
        });
        assert!(simulate_fleet(&spec, &cfg).is_err());
        // GPT-3 on 4 chips: weights cannot fit.
        let spec = ServingSpec::new(LlmConfig::gpt3(), MeshShape::new(2, 2), 1, 5.0);
        let err = simulate_fleet(&spec, &cfg).unwrap_err();
        assert!(err.contains("KV budget"), "{err}");
    }

    #[test]
    fn shared_costs_and_trace_do_not_change_the_report() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(200.0);
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: 0.5,
        });
        let plain = simulate_fleet(&spec, &cfg).expect("feasible");

        let cache = CostTableCache::new(cfg.clone(), CostProfile::Full);
        let mut shared = spec.clone();
        shared.shared_costs = Some(
            cache
                .replica_costs(&spec.model, spec.mesh, spec.slice_count, spec.max_batch)
                .expect("feasible"),
        );
        // Longer draw than needed: the prefix must behave identically.
        shared.shared_trace = Some(Arc::from(
            spec.arrivals.generate(spec.num_requests + 40, spec.seed),
        ));
        let fast = simulate_fleet(&shared, &cfg).expect("feasible");
        assert_eq!(plain, fast, "shared resources must be simulation-neutral");
        assert_eq!(
            plain.to_json().to_string_pretty(),
            fast.to_json().to_string_pretty(),
            "artifacts must be byte-identical"
        );
    }

    #[test]
    fn mismatched_shared_resources_error_out() {
        let cfg = SimConfig::tpu_v4();
        let spec = tiny_spec(5.0);
        let cache = CostTableCache::new(cfg.clone(), CostProfile::NominalOnly);
        let table = cache
            .replica_costs(&spec.model, spec.mesh, spec.slice_count, spec.max_batch)
            .expect("feasible");

        let mut wrong_mesh = spec.clone();
        wrong_mesh.mesh = MeshShape::new(4, 1);
        wrong_mesh.shared_costs = Some(table.clone());
        assert!(simulate_fleet(&wrong_mesh, &cfg)
            .unwrap_err()
            .contains("mesh"));

        let mut wrong_cap = spec.clone();
        wrong_cap.max_batch = 16;
        wrong_cap.shared_costs = Some(table.clone());
        assert!(simulate_fleet(&wrong_cap, &cfg)
            .unwrap_err()
            .contains("cap"));

        // Nominal-only tables cannot price a chip death.
        let mut nominal_death = spec.clone();
        nominal_death.failure = Some(ChipDeath {
            replica: 0,
            at_secs: 1.0,
        });
        nominal_death.shared_costs = Some(table);
        assert!(simulate_fleet(&nominal_death, &cfg)
            .unwrap_err()
            .contains("nominal-only"));

        let mut short_trace = spec.clone();
        short_trace.shared_trace = Some(Arc::from(
            spec.arrivals.generate(spec.num_requests - 1, spec.seed),
        ));
        assert!(simulate_fleet(&short_trace, &cfg)
            .unwrap_err()
            .contains("shared trace"));
    }

    #[test]
    fn report_serializes_with_expected_keys() {
        let report = simulate_fleet(&tiny_spec(5.0), &SimConfig::tpu_v4()).expect("feasible");
        let json = report.to_json();
        for key in [
            "schema_version",
            "ttft_ms",
            "tpot_ms",
            "goodput_tokens_per_chip_s",
            "slo_attained",
            "per_replica",
            "timeseries",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            json.get("ttft_ms")
                .and_then(|t| t.get("count"))
                .and_then(Json::as_usize),
            Some(report.completed)
        );
        assert_eq!(json.get("schema_version").and_then(Json::as_usize), Some(2));
        assert!(
            json.get("downtime_s").is_none(),
            "no failure injected, no downtime section"
        );
    }

    #[test]
    fn tracing_is_observation_only() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(200.0);
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: 0.5,
        });
        let untraced = simulate_fleet(&spec, &cfg).expect("feasible");
        let (traced, trace) = simulate_fleet_traced(&spec, &cfg, 2).expect("feasible");
        assert_eq!(untraced, traced, "tracing must not perturb the report");
        assert_eq!(
            untraced.to_json().to_string_pretty(),
            traced.to_json().to_string_pretty(),
            "artifacts must be byte-identical"
        );
        trace.check_invariants().expect("well-formed trace");
        assert_eq!(trace.replicas, spec.replicas);
        assert!(!trace.is_empty());
    }

    #[test]
    fn blame_matches_reported_ttft() {
        let cfg = SimConfig::tpu_v4();
        let (report, trace) = simulate_fleet_traced(&tiny_spec(500.0), &cfg, 1).expect("feasible");
        let blame = trace.blame();
        assert_eq!(blame.requests.len(), report.completed);
        for b in &blame.requests {
            let outcome = report.outcomes.iter().find(|o| o.id == b.id).expect("id");
            let ttft = outcome.ttft_secs.expect("completed");
            assert!(
                (b.ttft - ttft).abs() < 1e-9,
                "trace ttft must match outcome"
            );
            assert!((b.components_sum() - b.ttft).abs() < 1e-9);
        }
    }

    #[test]
    fn chip_death_produces_a_downtime_breakdown() {
        let cfg = SimConfig::tpu_v4();
        let mut spec = tiny_spec(2000.0);
        let healthy = simulate_fleet(&spec, &cfg).expect("feasible");
        spec.failure = Some(ChipDeath {
            replica: 0,
            at_secs: healthy.makespan_secs / 4.0,
        });
        let wounded = simulate_fleet(&spec, &cfg).expect("feasible");
        let d = wounded.downtime.expect("failure injected");
        assert_eq!(d.failovers, 1);
        assert!(d.detection_secs > 0.0 && d.restore_secs > 0.0);
        assert!(d.reprefill_secs > 0.0, "flushed batch must re-prefill");
        assert!(d.degraded_extra_secs > 0.0, "degraded torus costs extra");
        let stats = &wounded.per_replica[0];
        assert!(stats.outage_secs > 0.0);
        assert!((d.detection_secs + d.restore_secs - stats.outage_secs).abs() < 1e-12);
        let json = wounded.to_json();
        assert!(json
            .get("downtime_s")
            .and_then(|v| v.get("reprefill"))
            .is_some());
    }

    #[test]
    fn timeseries_totals_match_the_report() {
        let report = simulate_fleet(&tiny_spec(50.0), &SimConfig::tpu_v4()).expect("feasible");
        let agg = report.series.aggregate();
        assert_eq!(
            agg.iter().map(|w| w.completed).sum::<usize>(),
            report.completed
        );
        assert_eq!(
            agg.iter().map(|w| w.admitted).sum::<usize>(),
            report.offered - report.rejected
        );
        assert_eq!(
            agg.iter().map(|w| w.decode_steps).sum::<usize>(),
            report.per_replica.iter().map(|s| s.decode_steps).sum()
        );
        // Event snapshots are post-step (after finishers release KV), so
        // the series peak lower-bounds the report's mid-step peak.
        let kv_peak = agg.iter().map(|w| w.kv_peak_bytes).max().unwrap_or(0);
        assert!(kv_peak > 0 && kv_peak <= report.kv_peak_bytes);
    }

    #[test]
    fn prometheus_export_names_the_tail() {
        let report = simulate_fleet(&tiny_spec(5.0), &SimConfig::tpu_v4()).expect("feasible");
        let prom = report.to_prometheus();
        assert!(prom.contains("meshslice_serving_ttft_seconds"));
        assert!(prom.contains("quantile=\"p99\""));
        assert!(prom.contains("outcome=\"completed\""));
        assert!(prom.contains("meshslice_serving_replica_completed{"));
    }
}
