//! Continuous-batching inference fleet simulation for MeshSlice serving.
//!
//! Training (the paper's focus) runs one enormous step at a time;
//! serving runs thousands of small, deadline-bound requests through the
//! same meshes. This crate closes that loop: it drives the
//! `meshslice-sim` engine with a seeded request-arrival process and
//! asks the operator's questions — what TTFT/TPOT tail latency does a
//! fleet layout deliver, how many tokens per chip per second, and does
//! it survive a chip death mid-serving?
//!
//! The pieces:
//!
//! - [`ArrivalSpec`] draws deterministic request traces: Poisson or
//!   replayed bursty/diurnal rate profiles, with per-request prompt and
//!   output lengths.
//! - [`build_replica_costs`] prices prefill and decode at power-of-two
//!   batch buckets by scheduling the FC GeMMs with MeshSlice
//!   (weight-stationary `Rs`), lowering once, and replaying the lowered
//!   plan on nominal and degraded-torus engines — the serving analog of
//!   a compiled-program cache.
//! - [`simulate_fleet`] runs the continuous-batching event loop per
//!   replica: iteration-level batch join/leave, KV-cache admission
//!   control and LIFO preemption against the HBM budget, and
//!   checkpointed-replica failover through an injected [`ChipDeath`].
//! - [`ServingTuning`] grafts `tune_serving` onto the core
//!   [`Autotuner`](meshslice::autotuner::Autotuner): pick mesh shape ×
//!   slice count × replica count × batch policy to maximize
//!   goodput-per-chip under a TTFT p99 SLO. The default [`TuneMode::Fast`]
//!   path dedups table builds through a [`CostTableCache`], shares one
//!   `Arc`'d arrival trace across candidates, and collapses grid entries
//!   with identical tables — bit-for-bit the exhaustive result; a
//!   [`TuneMode::Screened`] stage adds successive halving on a prefix
//!   trace.
//! - [`simulate_fleet_traced`] runs the same loop while recording every
//!   request lifecycle event into a
//!   [`ServingTrace`](meshslice_telemetry::ServingTrace) for JSONL /
//!   chrome-trace export and TTFT blame decomposition — tracing is
//!   observation-only and leaves the report bit-for-bit unchanged.
//!   Every report also carries a windowed per-replica time-series and,
//!   under an injected failure, the [`ServingDowntime`] breakdown.
//! - [`ChaosSpec`] replaces the single scripted death with seeded
//!   MTBF-driven chip/link death arrivals per replica (optionally
//!   repaired), [`RouterPolicy`] re-routes stranded requests onto
//!   survivor replicas with capped exponential backoff under a retry
//!   budget and deadline, and [`ShedPolicy`] sheds the newest arrivals
//!   when the backlog crosses a queue-depth or projected-TTFT
//!   threshold. All three are off by default and reproduce the nominal
//!   report byte-for-byte when idle (property-tested).
//!
//! Everything is deterministic: the same spec, seed, and thread count —
//! in fact *any* thread count — produces a bit-identical report.
//!
//! # Example
//!
//! ```
//! use meshslice::llm::LlmConfig;
//! use meshslice::{MeshShape, SimConfig};
//! use meshslice_serving::{simulate_fleet, ServingSpec};
//!
//! let model = LlmConfig {
//!     name: "tiny".to_string(),
//!     hidden: 256,
//!     heads: 4,
//!     layers: 2,
//!     ffn_mult: 4,
//! };
//! let mut spec = ServingSpec::new(model, MeshShape::new(2, 2), 2, 10.0);
//! spec.num_requests = 40;
//! let report = simulate_fleet(&spec, &SimConfig::tpu_v4()).unwrap();
//! assert_eq!(report.completed + report.rejected, 40);
//! assert!(report.goodput_tokens_per_chip_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrival;
mod chaos;
mod costs;
mod fleet;
mod tune;

pub use arrival::{
    ArrivalSpec, LoadShape, Request, DEFAULT_OUTPUT_RANGE, DEFAULT_PROMPT_RANGE,
    DEFAULT_SEGMENT_SECS,
};
pub use chaos::{
    ChaosSpec, DeathEvent, RouterPolicy, ShedPolicy, BACKOFF_CAP_FACTOR, DEFAULT_SHED_TTFT_FACTOR,
};
pub use costs::{
    build_replica_costs, build_replica_costs_with, BucketCost, CostProfile, CostTableCache,
    EmptyCostTable, PhaseCostTable, ReplicaCosts, CACHED_BATCH_CAP, MAX_PREFILL_TOKENS,
    NOMINAL_KV_CONTEXT,
};
pub use fleet::{
    simulate_fleet, simulate_fleet_threads, simulate_fleet_traced, ChipDeath, FleetReport,
    OutcomeKind, ReplicaStats, RequestOutcome, ServingDowntime, ServingSpec,
};
pub use tune::{
    rank_candidates, rank_resilient_candidates, ResilienceSpec, ResilientServingCandidate,
    ResilientServingPlan, ScreenPolicy, ServingCandidate, ServingPlan, ServingTuning, TuneMode,
    CANDIDATE_MAX_BATCH, CANDIDATE_SLICE_COUNTS,
};
