//! SLO-targeted serving autotuner.
//!
//! Training tunes for makespan; serving tunes for *goodput under a tail
//! SLO*: among fleet layouts that keep TTFT p99 under the target, pick
//! the one generating the most tokens per chip per second. The knobs
//! are the ones the paper's training autotuner sweeps — mesh shape and
//! slice count — plus the two serving-specific ones: how many replicas
//! to split the chip pool into, and how large a decode batch the
//! continuous-batching policy may build (bigger batches amortize weight
//! reads but queue prefills behind longer steps).
//!
//! Candidates are scored by running the actual fleet simulation on a
//! short trace, not a closed-form estimate — the queueing behavior that
//! sets the tail is exactly what closed forms miss. Evaluation fans out
//! over [`meshslice::par`] with deterministic, thread-count-invariant
//! ranking.

use meshslice::autotuner::Autotuner;
use meshslice::llm::LlmConfig;
use meshslice::par;
use meshslice::MeshShape;

use crate::arrival::ArrivalSpec;
use crate::fleet::{simulate_fleet, ServingSpec};

/// Decode batch caps the tuner considers.
pub const CANDIDATE_MAX_BATCH: [usize; 2] = [8, 32];

/// Slice counts the tuner considers.
pub const CANDIDATE_SLICE_COUNTS: [usize; 3] = [1, 4, 8];

/// One evaluated fleet layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServingCandidate {
    /// Per-replica mesh shape.
    pub mesh: MeshShape,
    /// Requested slice count.
    pub slice_count: usize,
    /// Replica count.
    pub replicas: usize,
    /// Decode batch cap.
    pub max_batch: usize,
    /// Whether TTFT p99 met the SLO target on the evaluation trace.
    pub slo_attained: bool,
    /// TTFT p99 observed, milliseconds.
    pub p99_ttft_ms: f64,
    /// Goodput observed, tokens per chip per second.
    pub goodput_tokens_per_chip_s: f64,
    /// Fraction of the evaluation trace completed (not rejected).
    pub completion: f64,
}

/// The ranked outcome of a serving tune: SLO-attaining layouts first,
/// highest goodput first within each group.
#[derive(Clone, Debug)]
pub struct ServingPlan {
    /// All evaluated candidates, best first.
    pub candidates: Vec<ServingCandidate>,
}

impl ServingPlan {
    /// The winning layout.
    pub fn best(&self) -> &ServingCandidate {
        &self.candidates[0]
    }
}

/// Serving-specific tuning, grafted onto [`Autotuner`] the same way
/// `meshslice-recovery` grafts `tune_robust` — the core crate stays free
/// of serving concerns.
pub trait ServingTuning {
    /// Tunes a serving fleet of `total_chips` for `model` under
    /// `arrivals`, targeting a TTFT p99 of `slo_p99_ttft_ms`, scoring
    /// each candidate on a `num_requests`-long trace drawn from `seed`.
    ///
    /// Sweeps replica counts dividing the chip pool, the candidate mesh
    /// shapes of each per-replica pool, [`CANDIDATE_SLICE_COUNTS`], and
    /// [`CANDIDATE_MAX_BATCH`]. A `replicas` of `Some(r)` pins the
    /// replica count (e.g. the CLI's `--replicas`).
    ///
    /// # Errors
    ///
    /// Errors when no candidate can serve the model at all (weights too
    /// large for every layout).
    #[allow(clippy::too_many_arguments)]
    fn tune_serving(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
    ) -> Result<ServingPlan, String> {
        self.tune_serving_threads(
            model,
            total_chips,
            replicas,
            arrivals,
            slo_p99_ttft_ms,
            num_requests,
            seed,
            1,
        )
    }

    /// [`tune_serving`](Self::tune_serving) with candidate evaluation
    /// fanned out over `threads` workers. The ranking is bit-for-bit
    /// identical at any thread count.
    ///
    /// # Errors
    ///
    /// As [`tune_serving`](Self::tune_serving).
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_threads(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        threads: usize,
    ) -> Result<ServingPlan, String>;
}

impl ServingTuning for Autotuner {
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_threads(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        threads: usize,
    ) -> Result<ServingPlan, String> {
        assert!(total_chips > 0, "serving fleet needs at least one chip");
        arrivals.validate()?;
        let replica_counts: Vec<usize> = match replicas {
            Some(r) => {
                if r == 0 || !total_chips.is_multiple_of(r) {
                    return Err(format!(
                        "replica count {r} must divide the {total_chips}-chip pool"
                    ));
                }
                vec![r]
            }
            None => std::iter::successors(Some(1usize), |r| Some(r * 2))
                .take_while(|&r| r <= total_chips)
                .filter(|&r| total_chips.is_multiple_of(r))
                .collect(),
        };

        let mut grid: Vec<(MeshShape, usize, usize, usize)> = Vec::new();
        for &r in &replica_counts {
            for mesh in Autotuner::candidate_meshes(total_chips / r) {
                for &s in &CANDIDATE_SLICE_COUNTS {
                    for &max_batch in &CANDIDATE_MAX_BATCH {
                        grid.push((mesh, s, r, max_batch));
                    }
                }
            }
        }

        let cfg = self.cost_model().config();
        let evaluated = par::parallel_map_threads(threads, &grid, |&(mesh, s, r, max_batch)| {
            let spec = ServingSpec {
                slice_count: s,
                max_batch,
                arrivals: arrivals.clone(),
                num_requests,
                seed,
                slo_p99_ttft_ms,
                ..ServingSpec::new(model.clone(), mesh, r, arrivals.qps)
            };
            let report = simulate_fleet(&spec, cfg).ok()?;
            Some(ServingCandidate {
                mesh,
                slice_count: s,
                replicas: r,
                max_batch,
                slo_attained: report.slo_attained,
                p99_ttft_ms: report.ttft.p99 * 1e3,
                goodput_tokens_per_chip_s: report.goodput_tokens_per_chip_s,
                completion: report.completed as f64 / report.offered as f64,
            })
        });
        let mut candidates: Vec<ServingCandidate> = evaluated.into_iter().flatten().collect();
        if candidates.is_empty() {
            return Err(format!(
                "{} cannot be served on any layout of {total_chips} chips",
                model.name
            ));
        }
        // SLO-attaining layouts first, most goodput first within each
        // group, then a total deterministic tie-break.
        candidates.sort_by(|a, b| {
            b.slo_attained
                .cmp(&a.slo_attained)
                .then(
                    b.goodput_tokens_per_chip_s
                        .total_cmp(&a.goodput_tokens_per_chip_s),
                )
                .then(a.p99_ttft_ms.total_cmp(&b.p99_ttft_ms))
                .then(a.mesh.rows.cmp(&b.mesh.rows))
                .then(a.mesh.cols.cmp(&b.mesh.cols))
                .then(a.slice_count.cmp(&b.slice_count))
                .then(a.replicas.cmp(&b.replicas))
                .then(a.max_batch.cmp(&b.max_batch))
        });
        Ok(ServingPlan { candidates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice::SimConfig;

    fn tiny() -> LlmConfig {
        LlmConfig {
            name: "tiny".to_string(),
            hidden: 256,
            heads: 4,
            layers: 2,
            ffn_mult: 4,
        }
    }

    fn tuner() -> Autotuner {
        Autotuner::new(SimConfig::tpu_v4())
    }

    #[test]
    fn tune_ranks_slo_attaining_layouts_first() {
        let plan = tuner()
            .tune_serving(&tiny(), 8, None, &ArrivalSpec::poisson(20.0), 500.0, 60, 3)
            .expect("tiny model must have feasible layouts");
        assert!(!plan.candidates.is_empty());
        let first_miss = plan.candidates.iter().position(|c| !c.slo_attained);
        if let Some(k) = first_miss {
            assert!(
                plan.candidates[k..].iter().all(|c| !c.slo_attained),
                "attaining candidates must sort before missing ones"
            );
        }
        for w in plan.candidates.windows(2) {
            if w[0].slo_attained == w[1].slo_attained {
                assert!(
                    w[0].goodput_tokens_per_chip_s >= w[1].goodput_tokens_per_chip_s,
                    "within a group, goodput must be descending"
                );
            }
        }
    }

    #[test]
    fn tune_is_thread_invariant() {
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        let serial = t
            .tune_serving(&tiny(), 8, None, &arr, 500.0, 40, 3)
            .expect("feasible");
        let parallel = t
            .tune_serving_threads(&tiny(), 8, None, &arr, 500.0, 40, 3, 4)
            .expect("feasible");
        assert_eq!(serial.candidates, parallel.candidates);
    }

    #[test]
    fn pinned_replicas_are_respected() {
        let plan = tuner()
            .tune_serving(
                &tiny(),
                8,
                Some(2),
                &ArrivalSpec::poisson(10.0),
                500.0,
                40,
                3,
            )
            .expect("feasible");
        assert!(plan.candidates.iter().all(|c| c.replicas == 2));
        assert!(tuner()
            .tune_serving(
                &tiny(),
                8,
                Some(3),
                &ArrivalSpec::poisson(10.0),
                500.0,
                40,
                3
            )
            .is_err());
    }

    #[test]
    fn unservable_models_error_out() {
        // Megatron-NLG weights (~1 TB) cannot fit 4 TPUv4 chips.
        let err = tuner()
            .tune_serving(
                &LlmConfig::megatron_nlg(),
                4,
                None,
                &ArrivalSpec::poisson(1.0),
                500.0,
                10,
                0,
            )
            .unwrap_err();
        assert!(err.contains("cannot be served"), "{err}");
    }
}
