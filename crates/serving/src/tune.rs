//! SLO-targeted serving autotuner.
//!
//! Training tunes for makespan; serving tunes for *goodput under a tail
//! SLO*: among fleet layouts that keep TTFT p99 under the target, pick
//! the one generating the most tokens per chip per second. The knobs
//! are the ones the paper's training autotuner sweeps — mesh shape and
//! slice count — plus the two serving-specific ones: how many replicas
//! to split the chip pool into, and how large a decode batch the
//! continuous-batching policy may build (bigger batches amortize weight
//! reads but queue prefills behind longer steps).
//!
//! Candidates are scored by running the actual fleet simulation on a
//! short trace, not a closed-form estimate — the queueing behavior that
//! sets the tail is exactly what closed forms miss. Evaluation fans out
//! over [`meshslice::par`] with deterministic, thread-count-invariant
//! ranking.
//!
//! # The fast path
//!
//! Scoring a candidate splits into building its cost tables (the
//! expensive part: schedule + lower + replay per batch bucket) and
//! running the fleet loop (cheap: table lookups). The default
//! [`TuneMode::Fast`] path therefore:
//!
//! 1. warms one [`CostTableCache`] with every unique
//!    `(mesh, S, batch-cap class)` of the grid — in parallel, nominal
//!    columns only (the tuner never injects failures) — instead of
//!    rebuilding per `(replicas, max_batch)` grid point;
//! 2. draws the arrival trace once and shares it `Arc`'d across all
//!    candidates (legal: the draw is layout-independent);
//! 3. dedups grid entries whose per-replica tables come out identical
//!    (e.g. two requested slice counts clamping to the same schedules)
//!    and simulates each equivalence class once.
//!
//! The result is bit-for-bit identical to [`TuneMode::Exhaustive`] —
//! the PR-6 per-candidate rebuild path, kept as the reference — which
//! is property-tested in `tests/serving_properties.rs`.
//! [`TuneMode::Screened`] adds successive halving on top: every
//! candidate is scored on a short prefix trace first, and only
//! SLO-attaining candidates plus a deterministic top-K graduate to the
//! full trace.

use std::cmp::Ordering;
use std::sync::Arc;

use meshslice::autotuner::Autotuner;
use meshslice::llm::LlmConfig;
use meshslice::par;
use meshslice::MeshShape;

use crate::arrival::{ArrivalSpec, Request};
use crate::chaos::{ChaosSpec, RouterPolicy, ShedPolicy};
use crate::costs::{CostProfile, CostTableCache, ReplicaCosts};
use crate::fleet::{simulate_fleet, ServingSpec};

/// Decode batch caps the tuner considers. The middle cap rides the
/// [`CostTableCache`] cap-class mechanism for free on the fast path —
/// every cap here reads a truncated view of one cached build — while
/// the exhaustive reference prices each cap from scratch.
pub const CANDIDATE_MAX_BATCH: [usize; 3] = [8, 16, 32];

/// Slice counts the tuner considers.
pub const CANDIDATE_SLICE_COUNTS: [usize; 3] = [1, 4, 8];

/// One evaluated fleet layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServingCandidate {
    /// Per-replica mesh shape.
    pub mesh: MeshShape,
    /// Requested slice count.
    pub slice_count: usize,
    /// Replica count.
    pub replicas: usize,
    /// Decode batch cap.
    pub max_batch: usize,
    /// Whether TTFT p99 met the SLO target on the evaluation trace.
    pub slo_attained: bool,
    /// TTFT p99 observed, milliseconds.
    pub p99_ttft_ms: f64,
    /// Goodput observed, tokens per chip per second.
    pub goodput_tokens_per_chip_s: f64,
    /// Fraction of the evaluation trace completed (not rejected).
    pub completion: f64,
}

/// The deterministic candidate order: SLO-attaining layouts first, most
/// goodput first within each group, then a total tie-break over every
/// layout knob — so the ranking is a total order independent of
/// evaluation order and thread count.
pub fn rank_candidates(a: &ServingCandidate, b: &ServingCandidate) -> Ordering {
    b.slo_attained
        .cmp(&a.slo_attained)
        .then(
            b.goodput_tokens_per_chip_s
                .total_cmp(&a.goodput_tokens_per_chip_s),
        )
        .then(a.p99_ttft_ms.total_cmp(&b.p99_ttft_ms))
        .then(a.mesh.rows().cmp(&b.mesh.rows()))
        .then(a.mesh.cols().cmp(&b.mesh.cols()))
        .then(a.slice_count.cmp(&b.slice_count))
        .then(a.replicas.cmp(&b.replicas))
        .then(a.max_batch.cmp(&b.max_batch))
}

/// The successive-halving screening knobs of [`TuneMode::Screened`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScreenPolicy {
    /// Trace-prefix length every candidate is screened on.
    pub prefix_requests: usize,
    /// Candidates promoted to the full trace regardless of their
    /// prefix SLO verdict (by prefix rank, deterministic).
    pub promote_top_k: usize,
}

impl ScreenPolicy {
    /// A sensible policy for an `num_requests`-long evaluation trace: a
    /// quarter-length prefix (at least 16 requests) and a top-8
    /// promotion floor.
    pub fn auto(num_requests: usize) -> ScreenPolicy {
        ScreenPolicy {
            prefix_requests: (num_requests / 4).max(16).min(num_requests.max(1)),
            promote_top_k: 8,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Describes the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.prefix_requests == 0 {
            return Err("screening prefix must hold at least one request".into());
        }
        if self.promote_top_k == 0 {
            return Err("screening must promote at least the top candidate".into());
        }
        Ok(())
    }
}

/// How the tuner evaluates its grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuneMode {
    /// The PR-6 reference path: every grid point rebuilds its cost
    /// tables and redraws the trace. Kept as the differential oracle
    /// and benchmark baseline.
    Exhaustive,
    /// Shared cost-table cache + shared trace + table dedup; results
    /// are bit-for-bit identical to [`Exhaustive`](Self::Exhaustive).
    Fast,
    /// [`Fast`](Self::Fast) plus successive halving: score the whole
    /// grid on a prefix trace, promote SLO-attaining candidates and a
    /// deterministic top-K to the full trace. The winner is expected —
    /// and property-tested on the bench workloads — to match the
    /// exhaustive winner; candidates screened out are absent from the
    /// plan.
    Screened(ScreenPolicy),
}

/// The ranked outcome of a serving tune: SLO-attaining layouts first,
/// highest goodput first within each group.
#[derive(Clone, Debug)]
pub struct ServingPlan {
    /// All fully-evaluated candidates, best first.
    pub candidates: Vec<ServingCandidate>,
    /// Grid entries eliminated on the screening prefix (zero unless
    /// [`TuneMode::Screened`] ran).
    pub screened_out: usize,
}

impl ServingPlan {
    /// The winning layout.
    pub fn best(&self) -> &ServingCandidate {
        &self.candidates[0]
    }
}

/// The chaos environment a resilient tune scores against: one base
/// [`ChaosSpec`] fanned into `draws` independently-seeded death
/// schedules (draw `k` offsets the chaos seed by `k`), plus the fleet
/// policies every candidate serves under.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResilienceSpec {
    /// Base chaos draw; draw `k` runs with `seed.wrapping_add(k)`.
    pub chaos: ChaosSpec,
    /// Number of seeded chaos draws each surviving candidate is scored
    /// across.
    pub draws: usize,
    /// Failover routing policy applied to every candidate.
    pub router: Option<RouterPolicy>,
    /// Load-shedding policy applied to every candidate.
    pub shed: Option<ShedPolicy>,
}

impl ResilienceSpec {
    /// A resilience spec with five draws and no fleet policies.
    pub fn new(chaos: ChaosSpec) -> ResilienceSpec {
        ResilienceSpec {
            chaos,
            draws: 5,
            router: None,
            shed: None,
        }
    }

    /// Sets the draw count.
    #[must_use]
    pub fn with_draws(self, draws: usize) -> ResilienceSpec {
        ResilienceSpec { draws, ..self }
    }

    /// Adds a failover routing policy.
    #[must_use]
    pub fn with_router(self, router: RouterPolicy) -> ResilienceSpec {
        ResilienceSpec {
            router: Some(router),
            ..self
        }
    }

    /// Adds a load-shedding policy.
    #[must_use]
    pub fn with_shed(self, shed: ShedPolicy) -> ResilienceSpec {
        ResilienceSpec {
            shed: Some(shed),
            ..self
        }
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Describes the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.draws == 0 {
            return Err("resilient tuning needs at least one chaos draw".into());
        }
        self.chaos.validate()?;
        if let Some(router) = &self.router {
            router.validate()?;
        }
        if let Some(shed) = &self.shed {
            shed.validate()?;
        }
        Ok(())
    }
}

/// One fleet layout scored across the chaos draws of a
/// [`ResilienceSpec`]. The goodput statistics are tail-oriented:
/// `p95_goodput` is the goodput the layout achieves in at least 95% of
/// draws (nearest-rank from the worst draw up), so ranking by it picks
/// layouts that stay fast *under* faults, not layouts that are fast
/// only when lucky.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ResilientServingCandidate {
    /// Per-replica mesh shape.
    pub mesh: MeshShape,
    /// Requested slice count.
    pub slice_count: usize,
    /// Replica count.
    pub replicas: usize,
    /// Decode batch cap.
    pub max_batch: usize,
    /// Goodput of the worst chaos draw, tokens per chip per second.
    pub worst_goodput: f64,
    /// Goodput met or beaten by 95% of draws (nearest rank; equals the
    /// worst draw when fewer than 20 draws ran).
    pub p95_goodput: f64,
    /// Mean goodput across draws.
    pub mean_goodput: f64,
    /// SLO attainment of the worst draw (fraction of completed
    /// requests whose TTFT met the SLO).
    pub worst_slo_attainment: f64,
    /// Mean SLO attainment across draws.
    pub mean_slo_attainment: f64,
}

/// The deterministic resilient ranking: tail goodput first (p95, then
/// mean, then the worst draw), then the same total layout-knob
/// tie-break as [`rank_candidates`] — a total order independent of
/// evaluation order and thread count.
pub fn rank_resilient_candidates(
    a: &ResilientServingCandidate,
    b: &ResilientServingCandidate,
) -> Ordering {
    b.p95_goodput
        .total_cmp(&a.p95_goodput)
        .then(b.mean_goodput.total_cmp(&a.mean_goodput))
        .then(b.worst_goodput.total_cmp(&a.worst_goodput))
        .then(a.mesh.rows().cmp(&b.mesh.rows()))
        .then(a.mesh.cols().cmp(&b.mesh.cols()))
        .then(a.slice_count.cmp(&b.slice_count))
        .then(a.replicas.cmp(&b.replicas))
        .then(a.max_batch.cmp(&b.max_batch))
}

/// The ranked outcome of a resilient serving tune.
#[derive(Clone, Debug)]
pub struct ResilientServingPlan {
    /// All chaos-scored candidates, best (highest p95 goodput) first.
    pub candidates: Vec<ResilientServingCandidate>,
    /// Grid entries eliminated on the nominal screening prefix.
    pub screened_out: usize,
    /// Chaos draws each candidate was scored across.
    pub draws: usize,
}

impl ResilientServingPlan {
    /// The winning layout.
    pub fn best(&self) -> &ResilientServingCandidate {
        &self.candidates[0]
    }
}

/// Nearest-rank lower percentile: the value at the `frac` quantile
/// counting from the worst, over an ascending-sorted slice.
fn percentile_from_worst(sorted_asc: &[f64], frac: f64) -> f64 {
    let k = ((frac * sorted_asc.len() as f64).ceil() as usize).max(1) - 1;
    sorted_asc[k]
}

/// One simulation the fast path actually runs: a set of grid entries
/// (differing only in requested slice count) whose cost tables came out
/// identical, so one fleet simulation scores them all.
struct EvalUnit {
    mesh: MeshShape,
    replicas: usize,
    max_batch: usize,
    costs: Arc<ReplicaCosts>,
    /// Requested slice counts sharing these tables, grid order.
    member_s: Vec<usize>,
}

/// Whether two table sets price serving identically — everything but
/// the requested-slice-count echo, which the simulation never reads.
fn tables_equivalent(a: &ReplicaCosts, b: &ReplicaCosts) -> bool {
    a.mesh == b.mesh
        && a.max_batch == b.max_batch
        && a.prefill == b.prefill
        && a.decode == b.decode
        && a.kv_bytes_per_token == b.kv_bytes_per_token
        && a.kv_budget_bytes == b.kv_budget_bytes
        && a.degraded_priced == b.degraded_priced
}

/// Scores one [`EvalUnit`] on the first `n_req` requests of the shared
/// trace under nominal (chaos-free) serving.
#[allow(clippy::too_many_arguments)]
fn sim_unit_nominal(
    unit: &EvalUnit,
    model: &LlmConfig,
    arrivals: &ArrivalSpec,
    slo_p99_ttft_ms: f64,
    seed: u64,
    trace: &Arc<[Request]>,
    cfg: &meshslice::SimConfig,
    n_req: usize,
) -> Option<ServingCandidate> {
    let spec = ServingSpec {
        slice_count: unit.costs.slice_count,
        max_batch: unit.max_batch,
        arrivals: arrivals.clone(),
        num_requests: n_req,
        seed,
        slo_p99_ttft_ms,
        shared_costs: Some(unit.costs.clone()),
        shared_trace: Some(trace.clone()),
        ..ServingSpec::new(model.clone(), unit.mesh, unit.replicas, arrivals.qps)
    };
    let report = simulate_fleet(&spec, cfg).ok()?;
    Some(ServingCandidate {
        mesh: unit.mesh,
        slice_count: unit.costs.slice_count,
        replicas: unit.replicas,
        max_batch: unit.max_batch,
        slo_attained: report.slo_attained,
        p99_ttft_ms: report.ttft.p99 * 1e3,
        goodput_tokens_per_chip_s: report.goodput_tokens_per_chip_s,
        completion: report.completed as f64 / report.offered as f64,
    })
}

/// Groups feasible grid entries `(mesh, S, replicas, max_batch, costs)`
/// into [`EvalUnit`]s, preserving grid order (deterministic).
fn dedup_eval_units(
    entries: Vec<(MeshShape, usize, usize, usize, Arc<ReplicaCosts>)>,
) -> Vec<EvalUnit> {
    let mut units: Vec<EvalUnit> = Vec::new();
    for (mesh, s, replicas, max_batch, costs) in entries {
        if let Some(unit) = units.iter_mut().find(|u| {
            u.mesh == mesh
                && u.replicas == replicas
                && u.max_batch == max_batch
                && tables_equivalent(&u.costs, &costs)
        }) {
            unit.member_s.push(s);
        } else {
            units.push(EvalUnit {
                mesh,
                replicas,
                max_batch,
                costs,
                member_s: vec![s],
            });
        }
    }
    units
}

/// Enumerates the full tuning grid `(mesh, S, replicas, max_batch)`:
/// power-of-two replica counts dividing the chip pool (or the pinned
/// count), every candidate mesh of each per-replica pool,
/// [`CANDIDATE_SLICE_COUNTS`], and [`CANDIDATE_MAX_BATCH`].
fn serving_grid(
    total_chips: usize,
    replicas: Option<usize>,
) -> Result<Vec<(MeshShape, usize, usize, usize)>, String> {
    let mut replica_counts: Vec<usize> = match replicas {
        Some(r) => {
            if r == 0 || !total_chips.is_multiple_of(r) {
                return Err(format!(
                    "replica count {r} must divide the {total_chips}-chip pool"
                ));
            }
            vec![r]
        }
        None => std::iter::successors(Some(1usize), |r| Some(r * 2))
            .take_while(|&r| r <= total_chips)
            .filter(|&r| total_chips.is_multiple_of(r))
            .collect(),
    };
    // Belt and braces: duplicate counts would only duplicate work
    // (the enumeration above cannot repeat, but a pinned future
    // variant might).
    replica_counts.dedup();

    let mut grid: Vec<(MeshShape, usize, usize, usize)> = Vec::new();
    for &r in &replica_counts {
        for mesh in Autotuner::candidate_meshes(total_chips / r) {
            for &s in &CANDIDATE_SLICE_COUNTS {
                for &max_batch in &CANDIDATE_MAX_BATCH {
                    grid.push((mesh, s, r, max_batch));
                }
            }
        }
    }
    Ok(grid)
}

/// Serving-specific tuning, grafted onto [`Autotuner`] the same way
/// `meshslice-recovery` grafts `tune_robust` — the core crate stays free
/// of serving concerns.
pub trait ServingTuning {
    /// Tunes a serving fleet of `total_chips` for `model` under
    /// `arrivals`, targeting a TTFT p99 of `slo_p99_ttft_ms`, scoring
    /// each candidate on a `num_requests`-long trace drawn from `seed`.
    ///
    /// Sweeps replica counts dividing the chip pool, the candidate mesh
    /// shapes of each per-replica pool, [`CANDIDATE_SLICE_COUNTS`], and
    /// [`CANDIDATE_MAX_BATCH`]. A `replicas` of `Some(r)` pins the
    /// replica count (e.g. the CLI's `--replicas`). Runs the
    /// [`TuneMode::Fast`] cached path, serially.
    ///
    /// # Errors
    ///
    /// Errors when no candidate can serve the model at all (weights too
    /// large for every layout).
    #[allow(clippy::too_many_arguments)]
    fn tune_serving(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
    ) -> Result<ServingPlan, String> {
        self.tune_serving_threads(
            model,
            total_chips,
            replicas,
            arrivals,
            slo_p99_ttft_ms,
            num_requests,
            seed,
            1,
        )
    }

    /// [`tune_serving`](Self::tune_serving) with table warming and
    /// candidate evaluation fanned out over `threads` workers. The
    /// ranking is bit-for-bit identical at any thread count.
    ///
    /// # Errors
    ///
    /// As [`tune_serving`](Self::tune_serving), plus `threads == 0`.
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_threads(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        threads: usize,
    ) -> Result<ServingPlan, String> {
        self.tune_serving_mode(
            model,
            total_chips,
            replicas,
            arrivals,
            slo_p99_ttft_ms,
            num_requests,
            seed,
            TuneMode::Fast,
            threads,
        )
    }

    /// Tunes under an explicit [`TuneMode`].
    ///
    /// # Errors
    ///
    /// As [`tune_serving`](Self::tune_serving), plus `threads == 0` and
    /// invalid [`ScreenPolicy`] knobs.
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_mode(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        mode: TuneMode,
        threads: usize,
    ) -> Result<ServingPlan, String>;

    /// Tunes a serving fleet for goodput *under chaos*: every surviving
    /// candidate serves the same trace across the `resilience.draws`
    /// seeded chaos schedules and is ranked by tail goodput (p95, then
    /// mean, then the worst draw).
    ///
    /// Composes the PR-8 fast path with chaos-aware promotion: the grid
    /// is first screened on a nominal prefix trace with nominal-only
    /// shared cost tables (chaos never enters the screen), promoting
    /// SLO-attaining candidates plus a doubled top-K — the nominal
    /// ranking is only a proxy for the chaos ranking, so the screen
    /// keeps twice the usual margin. Survivors are then scored with
    /// fully-priced shared tables (chaos needs the degraded columns),
    /// one simulation per `(candidate, draw)` fanned out together.
    ///
    /// # Errors
    ///
    /// As [`tune_serving`](Self::tune_serving), plus an invalid
    /// `resilience` spec.
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_resilient(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        resilience: &ResilienceSpec,
    ) -> Result<ResilientServingPlan, String> {
        self.tune_serving_resilient_threads(
            model,
            total_chips,
            replicas,
            arrivals,
            slo_p99_ttft_ms,
            num_requests,
            seed,
            resilience,
            1,
        )
    }

    /// [`tune_serving_resilient`](Self::tune_serving_resilient) fanned
    /// out over `threads` workers; the ranking is bit-for-bit identical
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// As [`tune_serving_resilient`](Self::tune_serving_resilient),
    /// plus `threads == 0`.
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_resilient_threads(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        resilience: &ResilienceSpec,
        threads: usize,
    ) -> Result<ResilientServingPlan, String>;
}

impl ServingTuning for Autotuner {
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_mode(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        mode: TuneMode,
        threads: usize,
    ) -> Result<ServingPlan, String> {
        assert!(total_chips > 0, "serving fleet needs at least one chip");
        if threads == 0 {
            return Err("serving tuner needs at least one worker thread (threads >= 1)".into());
        }
        arrivals.validate()?;
        let grid = serving_grid(total_chips, replicas)?;

        let cfg = self.cost_model().config();
        let no_layout = || {
            format!(
                "{} cannot be served on any layout of {total_chips} chips",
                model.name
            )
        };

        if mode == TuneMode::Exhaustive {
            // The PR-6 reference path: per-candidate table build and
            // trace draw inside `simulate_fleet`.
            let evaluated =
                par::parallel_map_threads(threads, &grid, |&(mesh, s, r, max_batch)| {
                    let spec = ServingSpec {
                        slice_count: s,
                        max_batch,
                        arrivals: arrivals.clone(),
                        num_requests,
                        seed,
                        slo_p99_ttft_ms,
                        ..ServingSpec::new(model.clone(), mesh, r, arrivals.qps)
                    };
                    let report = simulate_fleet(&spec, cfg).ok()?;
                    Some(ServingCandidate {
                        mesh,
                        slice_count: s,
                        replicas: r,
                        max_batch,
                        slo_attained: report.slo_attained,
                        p99_ttft_ms: report.ttft.p99 * 1e3,
                        goodput_tokens_per_chip_s: report.goodput_tokens_per_chip_s,
                        completion: report.completed as f64 / report.offered as f64,
                    })
                });
            let mut candidates: Vec<ServingCandidate> = evaluated.into_iter().flatten().collect();
            if candidates.is_empty() {
                return Err(no_layout());
            }
            candidates.sort_by(rank_candidates);
            return Ok(ServingPlan {
                candidates,
                screened_out: 0,
            });
        }

        // The fast path: one table build per (mesh, S, cap class), one
        // trace draw, one simulation per distinct table set.
        let cache = CostTableCache::new(cfg.clone(), CostProfile::NominalOnly);
        let warm_keys: Vec<(MeshShape, usize, usize)> =
            grid.iter().map(|&(m, s, _r, b)| (m, s, b)).collect();
        cache.warm(model, &warm_keys, threads);
        let trace: Arc<[Request]> = Arc::from(arrivals.generate(num_requests, seed));

        let entries: Vec<(MeshShape, usize, usize, usize, Arc<ReplicaCosts>)> = grid
            .iter()
            .filter_map(|&(mesh, s, r, max_batch)| {
                cache
                    .replica_costs(model, mesh, s, max_batch)
                    .map(|costs| (mesh, s, r, max_batch, costs))
            })
            .collect();
        if entries.is_empty() {
            return Err(no_layout());
        }
        let units = dedup_eval_units(entries);

        // Scores one unit on the first `n_req` requests of the shared
        // trace; expanded to one candidate per member slice count.
        let sim_unit = |unit: &EvalUnit, n_req: usize| -> Option<ServingCandidate> {
            let spec = ServingSpec {
                slice_count: unit.costs.slice_count,
                max_batch: unit.max_batch,
                arrivals: arrivals.clone(),
                num_requests: n_req,
                seed,
                slo_p99_ttft_ms,
                shared_costs: Some(unit.costs.clone()),
                shared_trace: Some(trace.clone()),
                ..ServingSpec::new(model.clone(), unit.mesh, unit.replicas, arrivals.qps)
            };
            let report = simulate_fleet(&spec, cfg).ok()?;
            Some(ServingCandidate {
                mesh: unit.mesh,
                slice_count: unit.costs.slice_count,
                replicas: unit.replicas,
                max_batch: unit.max_batch,
                slo_attained: report.slo_attained,
                p99_ttft_ms: report.ttft.p99 * 1e3,
                goodput_tokens_per_chip_s: report.goodput_tokens_per_chip_s,
                completion: report.completed as f64 / report.offered as f64,
            })
        };
        let expand = |units: &[EvalUnit], scores: Vec<Option<ServingCandidate>>| {
            let mut out: Vec<(ServingCandidate, usize)> = Vec::new();
            for (u, (unit, score)) in units.iter().zip(scores).enumerate() {
                let Some(score) = score else { continue };
                for &s in &unit.member_s {
                    out.push((
                        ServingCandidate {
                            slice_count: s,
                            ..score
                        },
                        u,
                    ));
                }
            }
            out
        };

        let (final_units, screened_out): (Vec<&EvalUnit>, usize) = match mode {
            TuneMode::Screened(policy) if policy.prefix_requests < num_requests => {
                policy.validate()?;
                let prefix_scores = par::parallel_map_threads(threads, &units, |unit| {
                    sim_unit(unit, policy.prefix_requests)
                });
                let mut screened = expand(&units, prefix_scores);
                screened.sort_by(|a, b| rank_candidates(&a.0, &b.0));
                let mut promote = vec![false; units.len()];
                for (i, (c, u)) in screened.iter().enumerate() {
                    if c.slo_attained || i < policy.promote_top_k {
                        promote[*u] = true;
                    }
                }
                let dropped = screened.iter().filter(|(_, u)| !promote[*u]).count();
                let promoted = units
                    .iter()
                    .zip(&promote)
                    .filter_map(|(unit, &p)| p.then_some(unit))
                    .collect();
                (promoted, dropped)
            }
            TuneMode::Screened(policy) => {
                policy.validate()?;
                (units.iter().collect(), 0)
            }
            _ => (units.iter().collect(), 0),
        };

        let full_scores =
            par::parallel_map_threads(threads, &final_units, |unit| sim_unit(unit, num_requests));
        let mut candidates: Vec<ServingCandidate> = final_units
            .iter()
            .zip(full_scores)
            .flat_map(|(unit, score)| {
                let mut out = Vec::new();
                if let Some(score) = score {
                    for &s in &unit.member_s {
                        out.push(ServingCandidate {
                            slice_count: s,
                            ..score
                        });
                    }
                }
                out
            })
            .collect();
        if candidates.is_empty() {
            return Err(no_layout());
        }
        candidates.sort_by(rank_candidates);
        Ok(ServingPlan {
            candidates,
            screened_out,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn tune_serving_resilient_threads(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        resilience: &ResilienceSpec,
        threads: usize,
    ) -> Result<ResilientServingPlan, String> {
        assert!(total_chips > 0, "serving fleet needs at least one chip");
        if threads == 0 {
            return Err("serving tuner needs at least one worker thread (threads >= 1)".into());
        }
        arrivals.validate()?;
        resilience.validate()?;
        let grid = serving_grid(total_chips, replicas)?;
        let cfg = self.cost_model().config();
        let no_layout = || {
            format!(
                "{} cannot be served on any layout of {total_chips} chips",
                model.name
            )
        };

        // Stage 1: nominal screening with nominal-only shared tables —
        // the degraded columns are never read before promotion, so the
        // screen rides the cheap PR-8 cache.
        let screen_cache = CostTableCache::new(cfg.clone(), CostProfile::NominalOnly);
        let warm_keys: Vec<(MeshShape, usize, usize)> =
            grid.iter().map(|&(m, s, _r, b)| (m, s, b)).collect();
        screen_cache.warm(model, &warm_keys, threads);
        let trace: Arc<[Request]> = Arc::from(arrivals.generate(num_requests, seed));

        let entries: Vec<(MeshShape, usize, usize, usize, Arc<ReplicaCosts>)> = grid
            .iter()
            .filter_map(|&(mesh, s, r, max_batch)| {
                screen_cache
                    .replica_costs(model, mesh, s, max_batch)
                    .map(|costs| (mesh, s, r, max_batch, costs))
            })
            .collect();
        if entries.is_empty() {
            return Err(no_layout());
        }
        let units = dedup_eval_units(entries);

        // Chaos-aware promotion: the nominal prefix ranking is only a
        // proxy for the chaos ranking, so keep twice the usual top-K
        // margin alongside every SLO-attaining candidate.
        let policy = {
            let auto = ScreenPolicy::auto(num_requests);
            ScreenPolicy {
                promote_top_k: auto.promote_top_k * 2,
                ..auto
            }
        };
        let (survivors, screened_out): (Vec<&EvalUnit>, usize) =
            if policy.prefix_requests < num_requests {
                let prefix_scores = par::parallel_map_threads(threads, &units, |unit| {
                    sim_unit_nominal(
                        unit,
                        model,
                        arrivals,
                        slo_p99_ttft_ms,
                        seed,
                        &trace,
                        cfg,
                        policy.prefix_requests,
                    )
                });
                let mut screened: Vec<(ServingCandidate, usize)> = Vec::new();
                for (u, (unit, score)) in units.iter().zip(prefix_scores).enumerate() {
                    let Some(score) = score else { continue };
                    for &s in &unit.member_s {
                        screened.push((
                            ServingCandidate {
                                slice_count: s,
                                ..score
                            },
                            u,
                        ));
                    }
                }
                screened.sort_by(|a, b| rank_candidates(&a.0, &b.0));
                let mut promote = vec![false; units.len()];
                for (i, (c, u)) in screened.iter().enumerate() {
                    if c.slo_attained || i < policy.promote_top_k {
                        promote[*u] = true;
                    }
                }
                let dropped = screened.iter().filter(|(_, u)| !promote[*u]).count();
                let promoted = units
                    .iter()
                    .zip(&promote)
                    .filter_map(|(unit, &p)| p.then_some(unit))
                    .collect();
                (promoted, dropped)
            } else {
                (units.iter().collect(), 0)
            };

        // Stage 2: score every survivor across the chaos draws with
        // fully-priced shared tables (the draws hit the degraded
        // columns), every (candidate, draw) pair fanned out together.
        let full_cache = CostTableCache::new(cfg.clone(), CostProfile::Full);
        let full_keys: Vec<(MeshShape, usize, usize)> = survivors
            .iter()
            .map(|u| (u.mesh, u.costs.slice_count, u.max_batch))
            .collect();
        full_cache.warm(model, &full_keys, threads);
        let full_costs: Vec<Option<Arc<ReplicaCosts>>> = survivors
            .iter()
            .map(|u| full_cache.replica_costs(model, u.mesh, u.costs.slice_count, u.max_batch))
            .collect();

        let draws = resilience.draws;
        let jobs: Vec<(usize, u64)> = (0..survivors.len())
            .flat_map(|u| (0..draws as u64).map(move |k| (u, k)))
            .collect();
        let scores = par::parallel_map_threads(threads, &jobs, |&(u, k)| {
            let unit = survivors[u];
            let costs = full_costs[u].clone()?;
            let chaos = ChaosSpec {
                seed: resilience.chaos.seed.wrapping_add(k),
                ..resilience.chaos
            };
            let spec = ServingSpec {
                slice_count: unit.costs.slice_count,
                max_batch: unit.max_batch,
                arrivals: arrivals.clone(),
                num_requests,
                seed,
                slo_p99_ttft_ms,
                shared_costs: Some(costs),
                shared_trace: Some(trace.clone()),
                chaos: Some(chaos),
                router: resilience.router,
                shed: resilience.shed,
                ..ServingSpec::new(model.clone(), unit.mesh, unit.replicas, arrivals.qps)
            };
            let report = simulate_fleet(&spec, cfg).ok()?;
            Some((report.goodput_tokens_per_chip_s, report.slo_attainment))
        });

        let mut candidates: Vec<ResilientServingCandidate> = Vec::new();
        for (u, unit) in survivors.iter().enumerate() {
            let drawn: Vec<(f64, f64)> = scores[u * draws..(u + 1) * draws]
                .iter()
                .copied()
                .flatten()
                .collect();
            // A layout any draw could not serve is out entirely.
            if drawn.len() < draws {
                continue;
            }
            let mut goodputs: Vec<f64> = drawn.iter().map(|&(g, _)| g).collect();
            goodputs.sort_by(f64::total_cmp);
            let base = ResilientServingCandidate {
                mesh: unit.mesh,
                slice_count: unit.costs.slice_count,
                replicas: unit.replicas,
                max_batch: unit.max_batch,
                worst_goodput: goodputs[0],
                p95_goodput: percentile_from_worst(&goodputs, 0.05),
                mean_goodput: goodputs.iter().sum::<f64>() / draws as f64,
                worst_slo_attainment: drawn.iter().map(|&(_, a)| a).fold(f64::INFINITY, f64::min),
                mean_slo_attainment: drawn.iter().map(|&(_, a)| a).sum::<f64>() / draws as f64,
            };
            for &s in &unit.member_s {
                candidates.push(ResilientServingCandidate {
                    slice_count: s,
                    ..base
                });
            }
        }
        if candidates.is_empty() {
            return Err(no_layout());
        }
        candidates.sort_by(rank_resilient_candidates);
        Ok(ResilientServingPlan {
            candidates,
            screened_out,
            draws,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{BucketCost, PhaseCostTable};
    use meshslice::SimConfig;

    fn tiny() -> LlmConfig {
        LlmConfig::tiny()
    }

    fn tuner() -> Autotuner {
        Autotuner::new(SimConfig::tpu_v4())
    }

    #[test]
    fn tune_ranks_slo_attaining_layouts_first() {
        let plan = tuner()
            .tune_serving(&tiny(), 8, None, &ArrivalSpec::poisson(20.0), 500.0, 60, 3)
            .expect("tiny model must have feasible layouts");
        assert!(!plan.candidates.is_empty());
        let first_miss = plan.candidates.iter().position(|c| !c.slo_attained);
        if let Some(k) = first_miss {
            assert!(
                plan.candidates[k..].iter().all(|c| !c.slo_attained),
                "attaining candidates must sort before missing ones"
            );
        }
        for w in plan.candidates.windows(2) {
            if w[0].slo_attained == w[1].slo_attained {
                assert!(
                    w[0].goodput_tokens_per_chip_s >= w[1].goodput_tokens_per_chip_s,
                    "within a group, goodput must be descending"
                );
            }
        }
    }

    #[test]
    fn tune_is_thread_invariant() {
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        let serial = t
            .tune_serving(&tiny(), 8, None, &arr, 500.0, 40, 3)
            .expect("feasible");
        let parallel = t
            .tune_serving_threads(&tiny(), 8, None, &arr, 500.0, 40, 3, 4)
            .expect("feasible");
        assert_eq!(serial.candidates, parallel.candidates);
    }

    #[test]
    fn fast_path_matches_the_exhaustive_reference() {
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        let exhaustive = t
            .tune_serving_mode(
                &tiny(),
                8,
                None,
                &arr,
                500.0,
                40,
                3,
                TuneMode::Exhaustive,
                2,
            )
            .expect("feasible");
        let fast = t
            .tune_serving_threads(&tiny(), 8, None, &arr, 500.0, 40, 3, 2)
            .expect("feasible");
        assert_eq!(exhaustive.candidates, fast.candidates);
        assert_eq!(fast.screened_out, 0);
    }

    #[test]
    fn screening_keeps_the_exhaustive_winner() {
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        let exhaustive = t
            .tune_serving_mode(
                &tiny(),
                8,
                None,
                &arr,
                500.0,
                60,
                3,
                TuneMode::Exhaustive,
                2,
            )
            .expect("feasible");
        let screened = t
            .tune_serving_mode(
                &tiny(),
                8,
                None,
                &arr,
                500.0,
                60,
                3,
                TuneMode::Screened(ScreenPolicy::auto(60)),
                2,
            )
            .expect("feasible");
        assert_eq!(screened.best(), exhaustive.best());
        assert_eq!(
            screened.candidates.len() + screened.screened_out,
            exhaustive.candidates.len(),
            "every grid entry is either fully evaluated or screened out"
        );
        // Every surviving candidate carries its full-trace (exhaustive)
        // metrics, not its prefix ones.
        for c in &screened.candidates {
            assert!(exhaustive.candidates.contains(c));
        }
    }

    #[test]
    fn zero_threads_is_a_usage_error() {
        let err = tuner()
            .tune_serving_mode(
                &tiny(),
                8,
                None,
                &ArrivalSpec::poisson(5.0),
                500.0,
                10,
                0,
                TuneMode::Fast,
                0,
            )
            .unwrap_err();
        assert!(err.contains("threads >= 1"), "{err}");
    }

    #[test]
    fn screen_policy_validates() {
        assert!(ScreenPolicy {
            prefix_requests: 0,
            promote_top_k: 8
        }
        .validate()
        .is_err());
        assert!(ScreenPolicy {
            prefix_requests: 8,
            promote_top_k: 0
        }
        .validate()
        .is_err());
        let auto = ScreenPolicy::auto(200);
        auto.validate().expect("auto policy is valid");
        assert_eq!(auto.prefix_requests, 50);
        let short = ScreenPolicy::auto(8);
        assert_eq!(short.prefix_requests, 8, "prefix never exceeds the trace");
    }

    #[test]
    fn equivalent_tables_collapse_into_one_eval_unit() {
        let table = |s: usize, nominal: f64| {
            Arc::new(ReplicaCosts {
                mesh: MeshShape::new(2, 2),
                slice_count: s,
                max_batch: 8,
                prefill: PhaseCostTable {
                    buckets: vec![BucketCost {
                        size: 256,
                        nominal_secs: nominal,
                        degraded_secs: nominal,
                    }],
                },
                decode: PhaseCostTable {
                    buckets: vec![BucketCost {
                        size: 1,
                        nominal_secs: nominal,
                        degraded_secs: nominal,
                    }],
                },
                kv_bytes_per_token: 2,
                kv_budget_bytes: 1000,
                degraded_priced: false,
            })
        };
        let mesh = MeshShape::new(2, 2);
        let units = dedup_eval_units(vec![
            // Same tables under two requested slice counts: one unit.
            (mesh, 4, 1, 8, table(4, 1.0)),
            (mesh, 8, 1, 8, table(8, 1.0)),
            // Different cost: its own unit.
            (mesh, 1, 1, 8, table(1, 2.0)),
            // Same tables but different replica count: its own unit.
            (mesh, 4, 2, 8, table(4, 1.0)),
        ]);
        assert_eq!(units.len(), 3);
        assert_eq!(units[0].member_s, vec![4, 8]);
        assert_eq!(units[1].member_s, vec![1]);
        assert_eq!(units[2].replicas, 2);
    }

    #[test]
    fn pinned_replicas_are_respected() {
        let plan = tuner()
            .tune_serving(
                &tiny(),
                8,
                Some(2),
                &ArrivalSpec::poisson(10.0),
                500.0,
                40,
                3,
            )
            .expect("feasible");
        assert!(plan.candidates.iter().all(|c| c.replicas == 2));
        assert!(tuner()
            .tune_serving(
                &tiny(),
                8,
                Some(3),
                &ArrivalSpec::poisson(10.0),
                500.0,
                40,
                3
            )
            .is_err());
    }

    #[test]
    fn resilient_tune_is_deterministic_and_thread_invariant() {
        use meshslice_faults::FailureSpec;
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        // 40 requests at qps 20 span ~2 s; MTBF 8 s per chip over that
        // horizon fires deaths in a fair share of the draws.
        let resilience = ResilienceSpec::new(ChaosSpec::new(FailureSpec::chip_mtbf(8.0, 2.0), 11))
            .with_draws(3)
            .with_router(RouterPolicy::for_slo(0.5))
            .with_shed(ShedPolicy::for_queue_depth(64));
        let serial = t
            .tune_serving_resilient(&tiny(), 8, None, &arr, 500.0, 40, 3, &resilience)
            .expect("feasible");
        assert_eq!(serial.draws, 3);
        assert!(!serial.candidates.is_empty());
        for w in serial.candidates.windows(2) {
            assert!(
                w[0].p95_goodput >= w[1].p95_goodput,
                "p95 goodput must rank descending"
            );
        }
        for c in &serial.candidates {
            assert!(c.worst_goodput <= c.mean_goodput + 1e-12);
            assert!(c.p95_goodput >= c.worst_goodput);
        }
        for threads in [2, 8] {
            let parallel = t
                .tune_serving_resilient_threads(
                    &tiny(),
                    8,
                    None,
                    &arr,
                    500.0,
                    40,
                    3,
                    &resilience,
                    threads,
                )
                .expect("feasible");
            assert_eq!(serial.candidates, parallel.candidates);
            assert_eq!(serial.screened_out, parallel.screened_out);
        }
    }

    #[test]
    fn zero_rate_resilient_winner_matches_the_nominal_winner() {
        use meshslice_faults::FailureSpec;
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        // Infinite MTBFs draw no deaths, so every chaos draw IS the
        // nominal run and the p95 ranking collapses onto plain goodput.
        let resilience = ResilienceSpec::new(ChaosSpec::new(FailureSpec::none(), 11)).with_draws(2);
        let resilient = t
            .tune_serving_resilient(&tiny(), 8, None, &arr, 500.0, 40, 3, &resilience)
            .expect("feasible");
        let nominal = t
            .tune_serving(&tiny(), 8, None, &arr, 500.0, 40, 3)
            .expect("feasible");
        let best = resilient.best();
        // The nominal tuner ranks SLO-attainment before goodput, so
        // compare against the top nominal candidate by raw goodput.
        let top_goodput = nominal
            .candidates
            .iter()
            .map(|c| c.goodput_tokens_per_chip_s)
            .fold(0.0, f64::max);
        assert!(
            (best.p95_goodput - top_goodput).abs() < 1e-9,
            "zero-rate chaos must reproduce the nominal goodput frontier: {} vs {top_goodput}",
            best.p95_goodput
        );
        assert!((best.worst_goodput - best.mean_goodput).abs() < 1e-12);
    }

    #[test]
    fn resilience_spec_validates() {
        use meshslice_faults::FailureSpec;
        let spec = ResilienceSpec::new(ChaosSpec::new(FailureSpec::none(), 0));
        spec.validate().expect("default spec is valid");
        assert!(spec.with_draws(0).validate().is_err());
        let err = tuner()
            .tune_serving_resilient(
                &tiny(),
                8,
                None,
                &ArrivalSpec::poisson(5.0),
                500.0,
                10,
                0,
                &ResilienceSpec::new(ChaosSpec::new(FailureSpec::none(), 0)).with_draws(0),
            )
            .unwrap_err();
        assert!(err.contains("at least one chaos draw"), "{err}");
    }

    #[test]
    fn percentile_from_worst_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_from_worst(&v, 0.05), 1.0);
        assert_eq!(percentile_from_worst(&v, 0.5), 3.0);
        assert_eq!(percentile_from_worst(&v, 1.0), 5.0);
        assert_eq!(percentile_from_worst(&[7.0], 0.05), 7.0);
        // 20 draws: p95-from-worst is exactly the worst draw's
        // successor boundary (nearest rank 1).
        let twenty: Vec<f64> = (0..20).map(f64::from).collect();
        assert_eq!(percentile_from_worst(&twenty, 0.05), 0.0);
    }

    #[test]
    fn unservable_models_error_out() {
        // Megatron-NLG weights (~1 TB) cannot fit 4 TPUv4 chips.
        let err = tuner()
            .tune_serving(
                &LlmConfig::megatron_nlg(),
                4,
                None,
                &ArrivalSpec::poisson(1.0),
                500.0,
                10,
                0,
            )
            .unwrap_err();
        assert!(err.contains("cannot be served"), "{err}");
    }
}
