//! SLO-targeted serving autotuner.
//!
//! Training tunes for makespan; serving tunes for *goodput under a tail
//! SLO*: among fleet layouts that keep TTFT p99 under the target, pick
//! the one generating the most tokens per chip per second. The knobs
//! are the ones the paper's training autotuner sweeps — mesh shape and
//! slice count — plus the two serving-specific ones: how many replicas
//! to split the chip pool into, and how large a decode batch the
//! continuous-batching policy may build (bigger batches amortize weight
//! reads but queue prefills behind longer steps).
//!
//! Candidates are scored by running the actual fleet simulation on a
//! short trace, not a closed-form estimate — the queueing behavior that
//! sets the tail is exactly what closed forms miss. Evaluation fans out
//! over [`meshslice::par`] with deterministic, thread-count-invariant
//! ranking.
//!
//! # The fast path
//!
//! Scoring a candidate splits into building its cost tables (the
//! expensive part: schedule + lower + replay per batch bucket) and
//! running the fleet loop (cheap: table lookups). The default
//! [`TuneMode::Fast`] path therefore:
//!
//! 1. warms one [`CostTableCache`] with every unique
//!    `(mesh, S, batch-cap class)` of the grid — in parallel, nominal
//!    columns only (the tuner never injects failures) — instead of
//!    rebuilding per `(replicas, max_batch)` grid point;
//! 2. draws the arrival trace once and shares it `Arc`'d across all
//!    candidates (legal: the draw is layout-independent);
//! 3. dedups grid entries whose per-replica tables come out identical
//!    (e.g. two requested slice counts clamping to the same schedules)
//!    and simulates each equivalence class once.
//!
//! The result is bit-for-bit identical to [`TuneMode::Exhaustive`] —
//! the PR-6 per-candidate rebuild path, kept as the reference — which
//! is property-tested in `tests/serving_properties.rs`.
//! [`TuneMode::Screened`] adds successive halving on top: every
//! candidate is scored on a short prefix trace first, and only
//! SLO-attaining candidates plus a deterministic top-K graduate to the
//! full trace.

use std::cmp::Ordering;
use std::sync::Arc;

use meshslice::autotuner::Autotuner;
use meshslice::llm::LlmConfig;
use meshslice::par;
use meshslice::MeshShape;

use crate::arrival::{ArrivalSpec, Request};
use crate::costs::{CostProfile, CostTableCache, ReplicaCosts};
use crate::fleet::{simulate_fleet, ServingSpec};

/// Decode batch caps the tuner considers. The middle cap rides the
/// [`CostTableCache`] cap-class mechanism for free on the fast path —
/// every cap here reads a truncated view of one cached build — while
/// the exhaustive reference prices each cap from scratch.
pub const CANDIDATE_MAX_BATCH: [usize; 3] = [8, 16, 32];

/// Slice counts the tuner considers.
pub const CANDIDATE_SLICE_COUNTS: [usize; 3] = [1, 4, 8];

/// One evaluated fleet layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServingCandidate {
    /// Per-replica mesh shape.
    pub mesh: MeshShape,
    /// Requested slice count.
    pub slice_count: usize,
    /// Replica count.
    pub replicas: usize,
    /// Decode batch cap.
    pub max_batch: usize,
    /// Whether TTFT p99 met the SLO target on the evaluation trace.
    pub slo_attained: bool,
    /// TTFT p99 observed, milliseconds.
    pub p99_ttft_ms: f64,
    /// Goodput observed, tokens per chip per second.
    pub goodput_tokens_per_chip_s: f64,
    /// Fraction of the evaluation trace completed (not rejected).
    pub completion: f64,
}

/// The deterministic candidate order: SLO-attaining layouts first, most
/// goodput first within each group, then a total tie-break over every
/// layout knob — so the ranking is a total order independent of
/// evaluation order and thread count.
pub fn rank_candidates(a: &ServingCandidate, b: &ServingCandidate) -> Ordering {
    b.slo_attained
        .cmp(&a.slo_attained)
        .then(
            b.goodput_tokens_per_chip_s
                .total_cmp(&a.goodput_tokens_per_chip_s),
        )
        .then(a.p99_ttft_ms.total_cmp(&b.p99_ttft_ms))
        .then(a.mesh.rows.cmp(&b.mesh.rows))
        .then(a.mesh.cols.cmp(&b.mesh.cols))
        .then(a.slice_count.cmp(&b.slice_count))
        .then(a.replicas.cmp(&b.replicas))
        .then(a.max_batch.cmp(&b.max_batch))
}

/// The successive-halving screening knobs of [`TuneMode::Screened`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScreenPolicy {
    /// Trace-prefix length every candidate is screened on.
    pub prefix_requests: usize,
    /// Candidates promoted to the full trace regardless of their
    /// prefix SLO verdict (by prefix rank, deterministic).
    pub promote_top_k: usize,
}

impl ScreenPolicy {
    /// A sensible policy for an `num_requests`-long evaluation trace: a
    /// quarter-length prefix (at least 16 requests) and a top-8
    /// promotion floor.
    pub fn auto(num_requests: usize) -> ScreenPolicy {
        ScreenPolicy {
            prefix_requests: (num_requests / 4).max(16).min(num_requests.max(1)),
            promote_top_k: 8,
        }
    }

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Describes the first invalid knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.prefix_requests == 0 {
            return Err("screening prefix must hold at least one request".into());
        }
        if self.promote_top_k == 0 {
            return Err("screening must promote at least the top candidate".into());
        }
        Ok(())
    }
}

/// How the tuner evaluates its grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TuneMode {
    /// The PR-6 reference path: every grid point rebuilds its cost
    /// tables and redraws the trace. Kept as the differential oracle
    /// and benchmark baseline.
    Exhaustive,
    /// Shared cost-table cache + shared trace + table dedup; results
    /// are bit-for-bit identical to [`Exhaustive`](Self::Exhaustive).
    Fast,
    /// [`Fast`](Self::Fast) plus successive halving: score the whole
    /// grid on a prefix trace, promote SLO-attaining candidates and a
    /// deterministic top-K to the full trace. The winner is expected —
    /// and property-tested on the bench workloads — to match the
    /// exhaustive winner; candidates screened out are absent from the
    /// plan.
    Screened(ScreenPolicy),
}

/// The ranked outcome of a serving tune: SLO-attaining layouts first,
/// highest goodput first within each group.
#[derive(Clone, Debug)]
pub struct ServingPlan {
    /// All fully-evaluated candidates, best first.
    pub candidates: Vec<ServingCandidate>,
    /// Grid entries eliminated on the screening prefix (zero unless
    /// [`TuneMode::Screened`] ran).
    pub screened_out: usize,
}

impl ServingPlan {
    /// The winning layout.
    pub fn best(&self) -> &ServingCandidate {
        &self.candidates[0]
    }
}

/// One simulation the fast path actually runs: a set of grid entries
/// (differing only in requested slice count) whose cost tables came out
/// identical, so one fleet simulation scores them all.
struct EvalUnit {
    mesh: MeshShape,
    replicas: usize,
    max_batch: usize,
    costs: Arc<ReplicaCosts>,
    /// Requested slice counts sharing these tables, grid order.
    member_s: Vec<usize>,
}

/// Whether two table sets price serving identically — everything but
/// the requested-slice-count echo, which the simulation never reads.
fn tables_equivalent(a: &ReplicaCosts, b: &ReplicaCosts) -> bool {
    a.mesh == b.mesh
        && a.max_batch == b.max_batch
        && a.prefill == b.prefill
        && a.decode == b.decode
        && a.kv_bytes_per_token == b.kv_bytes_per_token
        && a.kv_budget_bytes == b.kv_budget_bytes
        && a.degraded_priced == b.degraded_priced
}

/// Groups feasible grid entries `(mesh, S, replicas, max_batch, costs)`
/// into [`EvalUnit`]s, preserving grid order (deterministic).
fn dedup_eval_units(
    entries: Vec<(MeshShape, usize, usize, usize, Arc<ReplicaCosts>)>,
) -> Vec<EvalUnit> {
    let mut units: Vec<EvalUnit> = Vec::new();
    for (mesh, s, replicas, max_batch, costs) in entries {
        if let Some(unit) = units.iter_mut().find(|u| {
            u.mesh == mesh
                && u.replicas == replicas
                && u.max_batch == max_batch
                && tables_equivalent(&u.costs, &costs)
        }) {
            unit.member_s.push(s);
        } else {
            units.push(EvalUnit {
                mesh,
                replicas,
                max_batch,
                costs,
                member_s: vec![s],
            });
        }
    }
    units
}

/// Serving-specific tuning, grafted onto [`Autotuner`] the same way
/// `meshslice-recovery` grafts `tune_robust` — the core crate stays free
/// of serving concerns.
pub trait ServingTuning {
    /// Tunes a serving fleet of `total_chips` for `model` under
    /// `arrivals`, targeting a TTFT p99 of `slo_p99_ttft_ms`, scoring
    /// each candidate on a `num_requests`-long trace drawn from `seed`.
    ///
    /// Sweeps replica counts dividing the chip pool, the candidate mesh
    /// shapes of each per-replica pool, [`CANDIDATE_SLICE_COUNTS`], and
    /// [`CANDIDATE_MAX_BATCH`]. A `replicas` of `Some(r)` pins the
    /// replica count (e.g. the CLI's `--replicas`). Runs the
    /// [`TuneMode::Fast`] cached path, serially.
    ///
    /// # Errors
    ///
    /// Errors when no candidate can serve the model at all (weights too
    /// large for every layout).
    #[allow(clippy::too_many_arguments)]
    fn tune_serving(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
    ) -> Result<ServingPlan, String> {
        self.tune_serving_threads(
            model,
            total_chips,
            replicas,
            arrivals,
            slo_p99_ttft_ms,
            num_requests,
            seed,
            1,
        )
    }

    /// [`tune_serving`](Self::tune_serving) with table warming and
    /// candidate evaluation fanned out over `threads` workers. The
    /// ranking is bit-for-bit identical at any thread count.
    ///
    /// # Errors
    ///
    /// As [`tune_serving`](Self::tune_serving), plus `threads == 0`.
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_threads(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        threads: usize,
    ) -> Result<ServingPlan, String> {
        self.tune_serving_mode(
            model,
            total_chips,
            replicas,
            arrivals,
            slo_p99_ttft_ms,
            num_requests,
            seed,
            TuneMode::Fast,
            threads,
        )
    }

    /// Tunes under an explicit [`TuneMode`].
    ///
    /// # Errors
    ///
    /// As [`tune_serving`](Self::tune_serving), plus `threads == 0` and
    /// invalid [`ScreenPolicy`] knobs.
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_mode(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        mode: TuneMode,
        threads: usize,
    ) -> Result<ServingPlan, String>;
}

impl ServingTuning for Autotuner {
    #[allow(clippy::too_many_arguments)]
    fn tune_serving_mode(
        &self,
        model: &LlmConfig,
        total_chips: usize,
        replicas: Option<usize>,
        arrivals: &ArrivalSpec,
        slo_p99_ttft_ms: f64,
        num_requests: usize,
        seed: u64,
        mode: TuneMode,
        threads: usize,
    ) -> Result<ServingPlan, String> {
        assert!(total_chips > 0, "serving fleet needs at least one chip");
        if threads == 0 {
            return Err("serving tuner needs at least one worker thread (threads >= 1)".into());
        }
        arrivals.validate()?;
        let mut replica_counts: Vec<usize> = match replicas {
            Some(r) => {
                if r == 0 || !total_chips.is_multiple_of(r) {
                    return Err(format!(
                        "replica count {r} must divide the {total_chips}-chip pool"
                    ));
                }
                vec![r]
            }
            None => std::iter::successors(Some(1usize), |r| Some(r * 2))
                .take_while(|&r| r <= total_chips)
                .filter(|&r| total_chips.is_multiple_of(r))
                .collect(),
        };
        // Belt and braces: duplicate counts would only duplicate work
        // (the enumeration above cannot repeat, but a pinned future
        // variant might).
        replica_counts.dedup();

        let mut grid: Vec<(MeshShape, usize, usize, usize)> = Vec::new();
        for &r in &replica_counts {
            for mesh in Autotuner::candidate_meshes(total_chips / r) {
                for &s in &CANDIDATE_SLICE_COUNTS {
                    for &max_batch in &CANDIDATE_MAX_BATCH {
                        grid.push((mesh, s, r, max_batch));
                    }
                }
            }
        }

        let cfg = self.cost_model().config();
        let no_layout = || {
            format!(
                "{} cannot be served on any layout of {total_chips} chips",
                model.name
            )
        };

        if mode == TuneMode::Exhaustive {
            // The PR-6 reference path: per-candidate table build and
            // trace draw inside `simulate_fleet`.
            let evaluated =
                par::parallel_map_threads(threads, &grid, |&(mesh, s, r, max_batch)| {
                    let spec = ServingSpec {
                        slice_count: s,
                        max_batch,
                        arrivals: arrivals.clone(),
                        num_requests,
                        seed,
                        slo_p99_ttft_ms,
                        ..ServingSpec::new(model.clone(), mesh, r, arrivals.qps)
                    };
                    let report = simulate_fleet(&spec, cfg).ok()?;
                    Some(ServingCandidate {
                        mesh,
                        slice_count: s,
                        replicas: r,
                        max_batch,
                        slo_attained: report.slo_attained,
                        p99_ttft_ms: report.ttft.p99 * 1e3,
                        goodput_tokens_per_chip_s: report.goodput_tokens_per_chip_s,
                        completion: report.completed as f64 / report.offered as f64,
                    })
                });
            let mut candidates: Vec<ServingCandidate> = evaluated.into_iter().flatten().collect();
            if candidates.is_empty() {
                return Err(no_layout());
            }
            candidates.sort_by(rank_candidates);
            return Ok(ServingPlan {
                candidates,
                screened_out: 0,
            });
        }

        // The fast path: one table build per (mesh, S, cap class), one
        // trace draw, one simulation per distinct table set.
        let cache = CostTableCache::new(cfg.clone(), CostProfile::NominalOnly);
        let warm_keys: Vec<(MeshShape, usize, usize)> =
            grid.iter().map(|&(m, s, _r, b)| (m, s, b)).collect();
        cache.warm(model, &warm_keys, threads);
        let trace: Arc<[Request]> = Arc::from(arrivals.generate(num_requests, seed));

        let entries: Vec<(MeshShape, usize, usize, usize, Arc<ReplicaCosts>)> = grid
            .iter()
            .filter_map(|&(mesh, s, r, max_batch)| {
                cache
                    .replica_costs(model, mesh, s, max_batch)
                    .map(|costs| (mesh, s, r, max_batch, costs))
            })
            .collect();
        if entries.is_empty() {
            return Err(no_layout());
        }
        let units = dedup_eval_units(entries);

        // Scores one unit on the first `n_req` requests of the shared
        // trace; expanded to one candidate per member slice count.
        let sim_unit = |unit: &EvalUnit, n_req: usize| -> Option<ServingCandidate> {
            let spec = ServingSpec {
                slice_count: unit.costs.slice_count,
                max_batch: unit.max_batch,
                arrivals: arrivals.clone(),
                num_requests: n_req,
                seed,
                slo_p99_ttft_ms,
                shared_costs: Some(unit.costs.clone()),
                shared_trace: Some(trace.clone()),
                ..ServingSpec::new(model.clone(), unit.mesh, unit.replicas, arrivals.qps)
            };
            let report = simulate_fleet(&spec, cfg).ok()?;
            Some(ServingCandidate {
                mesh: unit.mesh,
                slice_count: unit.costs.slice_count,
                replicas: unit.replicas,
                max_batch: unit.max_batch,
                slo_attained: report.slo_attained,
                p99_ttft_ms: report.ttft.p99 * 1e3,
                goodput_tokens_per_chip_s: report.goodput_tokens_per_chip_s,
                completion: report.completed as f64 / report.offered as f64,
            })
        };
        let expand = |units: &[EvalUnit], scores: Vec<Option<ServingCandidate>>| {
            let mut out: Vec<(ServingCandidate, usize)> = Vec::new();
            for (u, (unit, score)) in units.iter().zip(scores).enumerate() {
                let Some(score) = score else { continue };
                for &s in &unit.member_s {
                    out.push((
                        ServingCandidate {
                            slice_count: s,
                            ..score
                        },
                        u,
                    ));
                }
            }
            out
        };

        let (final_units, screened_out): (Vec<&EvalUnit>, usize) = match mode {
            TuneMode::Screened(policy) if policy.prefix_requests < num_requests => {
                policy.validate()?;
                let prefix_scores = par::parallel_map_threads(threads, &units, |unit| {
                    sim_unit(unit, policy.prefix_requests)
                });
                let mut screened = expand(&units, prefix_scores);
                screened.sort_by(|a, b| rank_candidates(&a.0, &b.0));
                let mut promote = vec![false; units.len()];
                for (i, (c, u)) in screened.iter().enumerate() {
                    if c.slo_attained || i < policy.promote_top_k {
                        promote[*u] = true;
                    }
                }
                let dropped = screened.iter().filter(|(_, u)| !promote[*u]).count();
                let promoted = units
                    .iter()
                    .zip(&promote)
                    .filter_map(|(unit, &p)| p.then_some(unit))
                    .collect();
                (promoted, dropped)
            }
            TuneMode::Screened(policy) => {
                policy.validate()?;
                (units.iter().collect(), 0)
            }
            _ => (units.iter().collect(), 0),
        };

        let full_scores =
            par::parallel_map_threads(threads, &final_units, |unit| sim_unit(unit, num_requests));
        let mut candidates: Vec<ServingCandidate> = final_units
            .iter()
            .zip(full_scores)
            .flat_map(|(unit, score)| {
                let mut out = Vec::new();
                if let Some(score) = score {
                    for &s in &unit.member_s {
                        out.push(ServingCandidate {
                            slice_count: s,
                            ..score
                        });
                    }
                }
                out
            })
            .collect();
        if candidates.is_empty() {
            return Err(no_layout());
        }
        candidates.sort_by(rank_candidates);
        Ok(ServingPlan {
            candidates,
            screened_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::{BucketCost, PhaseCostTable};
    use meshslice::SimConfig;

    fn tiny() -> LlmConfig {
        LlmConfig::tiny()
    }

    fn tuner() -> Autotuner {
        Autotuner::new(SimConfig::tpu_v4())
    }

    #[test]
    fn tune_ranks_slo_attaining_layouts_first() {
        let plan = tuner()
            .tune_serving(&tiny(), 8, None, &ArrivalSpec::poisson(20.0), 500.0, 60, 3)
            .expect("tiny model must have feasible layouts");
        assert!(!plan.candidates.is_empty());
        let first_miss = plan.candidates.iter().position(|c| !c.slo_attained);
        if let Some(k) = first_miss {
            assert!(
                plan.candidates[k..].iter().all(|c| !c.slo_attained),
                "attaining candidates must sort before missing ones"
            );
        }
        for w in plan.candidates.windows(2) {
            if w[0].slo_attained == w[1].slo_attained {
                assert!(
                    w[0].goodput_tokens_per_chip_s >= w[1].goodput_tokens_per_chip_s,
                    "within a group, goodput must be descending"
                );
            }
        }
    }

    #[test]
    fn tune_is_thread_invariant() {
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        let serial = t
            .tune_serving(&tiny(), 8, None, &arr, 500.0, 40, 3)
            .expect("feasible");
        let parallel = t
            .tune_serving_threads(&tiny(), 8, None, &arr, 500.0, 40, 3, 4)
            .expect("feasible");
        assert_eq!(serial.candidates, parallel.candidates);
    }

    #[test]
    fn fast_path_matches_the_exhaustive_reference() {
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        let exhaustive = t
            .tune_serving_mode(
                &tiny(),
                8,
                None,
                &arr,
                500.0,
                40,
                3,
                TuneMode::Exhaustive,
                2,
            )
            .expect("feasible");
        let fast = t
            .tune_serving_threads(&tiny(), 8, None, &arr, 500.0, 40, 3, 2)
            .expect("feasible");
        assert_eq!(exhaustive.candidates, fast.candidates);
        assert_eq!(fast.screened_out, 0);
    }

    #[test]
    fn screening_keeps_the_exhaustive_winner() {
        let t = tuner();
        let arr = ArrivalSpec::poisson(20.0);
        let exhaustive = t
            .tune_serving_mode(
                &tiny(),
                8,
                None,
                &arr,
                500.0,
                60,
                3,
                TuneMode::Exhaustive,
                2,
            )
            .expect("feasible");
        let screened = t
            .tune_serving_mode(
                &tiny(),
                8,
                None,
                &arr,
                500.0,
                60,
                3,
                TuneMode::Screened(ScreenPolicy::auto(60)),
                2,
            )
            .expect("feasible");
        assert_eq!(screened.best(), exhaustive.best());
        assert_eq!(
            screened.candidates.len() + screened.screened_out,
            exhaustive.candidates.len(),
            "every grid entry is either fully evaluated or screened out"
        );
        // Every surviving candidate carries its full-trace (exhaustive)
        // metrics, not its prefix ones.
        for c in &screened.candidates {
            assert!(exhaustive.candidates.contains(c));
        }
    }

    #[test]
    fn zero_threads_is_a_usage_error() {
        let err = tuner()
            .tune_serving_mode(
                &tiny(),
                8,
                None,
                &ArrivalSpec::poisson(5.0),
                500.0,
                10,
                0,
                TuneMode::Fast,
                0,
            )
            .unwrap_err();
        assert!(err.contains("threads >= 1"), "{err}");
    }

    #[test]
    fn screen_policy_validates() {
        assert!(ScreenPolicy {
            prefix_requests: 0,
            promote_top_k: 8
        }
        .validate()
        .is_err());
        assert!(ScreenPolicy {
            prefix_requests: 8,
            promote_top_k: 0
        }
        .validate()
        .is_err());
        let auto = ScreenPolicy::auto(200);
        auto.validate().expect("auto policy is valid");
        assert_eq!(auto.prefix_requests, 50);
        let short = ScreenPolicy::auto(8);
        assert_eq!(short.prefix_requests, 8, "prefix never exceeds the trace");
    }

    #[test]
    fn equivalent_tables_collapse_into_one_eval_unit() {
        let table = |s: usize, nominal: f64| {
            Arc::new(ReplicaCosts {
                mesh: MeshShape::new(2, 2),
                slice_count: s,
                max_batch: 8,
                prefill: PhaseCostTable {
                    buckets: vec![BucketCost {
                        size: 256,
                        nominal_secs: nominal,
                        degraded_secs: nominal,
                    }],
                },
                decode: PhaseCostTable {
                    buckets: vec![BucketCost {
                        size: 1,
                        nominal_secs: nominal,
                        degraded_secs: nominal,
                    }],
                },
                kv_bytes_per_token: 2,
                kv_budget_bytes: 1000,
                degraded_priced: false,
            })
        };
        let mesh = MeshShape::new(2, 2);
        let units = dedup_eval_units(vec![
            // Same tables under two requested slice counts: one unit.
            (mesh, 4, 1, 8, table(4, 1.0)),
            (mesh, 8, 1, 8, table(8, 1.0)),
            // Different cost: its own unit.
            (mesh, 1, 1, 8, table(1, 2.0)),
            // Same tables but different replica count: its own unit.
            (mesh, 4, 2, 8, table(4, 1.0)),
        ]);
        assert_eq!(units.len(), 3);
        assert_eq!(units[0].member_s, vec![4, 8]);
        assert_eq!(units[1].member_s, vec![1]);
        assert_eq!(units[2].replicas, 2);
    }

    #[test]
    fn pinned_replicas_are_respected() {
        let plan = tuner()
            .tune_serving(
                &tiny(),
                8,
                Some(2),
                &ArrivalSpec::poisson(10.0),
                500.0,
                40,
                3,
            )
            .expect("feasible");
        assert!(plan.candidates.iter().all(|c| c.replicas == 2));
        assert!(tuner()
            .tune_serving(
                &tiny(),
                8,
                Some(3),
                &ArrivalSpec::poisson(10.0),
                500.0,
                40,
                3
            )
            .is_err());
    }

    #[test]
    fn unservable_models_error_out() {
        // Megatron-NLG weights (~1 TB) cannot fit 4 TPUv4 chips.
        let err = tuner()
            .tune_serving(
                &LlmConfig::megatron_nlg(),
                4,
                None,
                &ArrivalSpec::poisson(1.0),
                500.0,
                10,
                0,
            )
            .unwrap_err();
        assert!(err.contains("cannot be served"), "{err}");
    }
}
