//! Simulator configuration and the per-chip compute model.

use meshslice_tensor::GemmShape;

use crate::perturb::ClusterProfile;
use crate::time::Duration;

/// How the chips are interconnected.
///
/// The paper evaluates a *physical* 2D torus (TPU ICI links); §6 discusses
/// applying MeshSlice to GPU clusters by building a *logical* mesh on top
/// of a switched network, where ring collectives lose their
/// contention-freedom: all transfers share the fabric's bisection
/// bandwidth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NetworkModel {
    /// Dedicated neighbor links (a physical 2D torus). Ring collectives
    /// see no network contention.
    PhysicalTorus,
    /// A logical mesh over a switched fabric: every in-flight transfer
    /// additionally competes for the fabric's total bisection bandwidth
    /// (bytes/s), fluid-shared like HBM.
    SharedFabric {
        /// Aggregate bandwidth available to all concurrent transfers.
        bisection_bandwidth: f64,
    },
}

/// Hardware parameters of the simulated cluster.
///
/// The defaults ([`SimConfig::tpu_v4`]) model Google's TPUv4 as described in
/// §4.1 of the paper: 272 TFLOPS of matrix compute per chip (the utilization
/// denominator used in §5.1), four ICI links per chip, and a shared HBM.
/// The synchronization / launch constants play the role of the offline
/// measurements the paper's cost model is calibrated from (§4.5).
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Peak matrix-multiply throughput per chip, FLOP/s.
    pub peak_flops: f64,
    /// Fraction of peak a large, well-shaped GeMM achieves.
    pub compute_efficiency: f64,
    /// Systolic array dimension (128 on TPUv4); controls the efficiency
    /// loss of small or ragged GeMM operands.
    pub systolic_dim: usize,
    /// Bandwidth of one ICI link direction, bytes/s.
    pub link_bandwidth: f64,
    /// HBM bandwidth shared by the compute cores and the NIC, bytes/s.
    pub hbm_bandwidth: f64,
    /// Bytes per matrix element (2 for bf16 training).
    pub elem_bytes: usize,
    /// Neighbor synchronization latency paid by every ring step.
    pub t_sync: Duration,
    /// Overhead of launching one communication operation.
    pub t_launch: Duration,
    /// Overhead of launching one compute or slicing kernel.
    pub t_kernel_launch: Duration,
    /// Number of fine-grain packets a SUMMA broadcast/reduce pipelines
    /// over the ring (the `D` of Figure 3).
    pub summa_packets: usize,
    /// When `false`, AG/RdS collectives (and all other communication) may
    /// not overlap with computation on the same chip — the behaviour of
    /// real TPUv4 clusters in §5.3, where the Jax compiler serializes
    /// collectives against dependent computation.
    pub overlap_collectives: bool,
    /// The interconnect model (physical torus vs shared fabric).
    pub network: NetworkModel,
    /// Optional cluster-variability profile: per-chip compute slowdowns,
    /// degraded links, and transient link outages. `None` (the default)
    /// simulates the ideal cluster; an
    /// [ideal profile](ClusterProfile::is_ideal) behaves identically.
    pub faults: Option<ClusterProfile>,
}

impl SimConfig {
    /// The TPUv4 cluster model used throughout the paper's evaluation.
    pub fn tpu_v4() -> Self {
        SimConfig {
            peak_flops: 272e12,
            compute_efficiency: 0.85,
            systolic_dim: 128,
            link_bandwidth: 65e9,
            hbm_bandwidth: 1.2e12,
            elem_bytes: 2,
            t_sync: Duration::from_micros(2.0),
            t_launch: Duration::from_micros(5.0),
            t_kernel_launch: Duration::from_micros(1.0),
            summa_packets: 16,
            overlap_collectives: true,
            network: NetworkModel::PhysicalTorus,
            faults: None,
        }
    }

    /// Returns this configuration with the given variability profile
    /// installed.
    pub fn with_faults(self, profile: ClusterProfile) -> Self {
        SimConfig {
            faults: Some(profile),
            ..self
        }
    }

    /// A GPU-cluster-like configuration (§6): the 2D mesh is *logical*,
    /// mapped onto a switched fabric whose bisection bandwidth all
    /// transfers share. Per-NIC injection bandwidth stays at the link
    /// rate.
    pub fn gpu_logical_mesh(bisection_bandwidth: f64) -> Self {
        SimConfig {
            network: NetworkModel::SharedFabric {
                bisection_bandwidth,
            },
            ..SimConfig::tpu_v4()
        }
    }

    /// The real 4×4 TPUv4 cloud cluster of §5.3: collectives cannot overlap
    /// with computation, and only the uni-directional half of each
    /// bi-directional ICI link is utilized.
    pub fn tpu_v4_real_hw() -> Self {
        SimConfig {
            link_bandwidth: 32.5e9,
            overlap_collectives: false,
            ..SimConfig::tpu_v4()
        }
    }

    /// Effective FLOP/s for a local GeMM of the given shape.
    ///
    /// Combines the large-GeMM efficiency with two systolic-array effects:
    /// padding of `m` and `n` to multiples of the array dimension, and the
    /// pipeline-fill penalty of a short contraction (`k`) dimension. The
    /// latter is what makes very fine slicing (`large S`) less efficient on
    /// the compute side, as the paper observes on real hardware (§5.3.1).
    pub fn effective_flops(&self, shape: GemmShape) -> f64 {
        let d = self.systolic_dim as f64;
        let pad = |x: usize| {
            let x = x as f64;
            x / ((x / d).ceil() * d)
        };
        let k = shape.k as f64;
        let fill = k / (k + d / 2.0);
        self.peak_flops * self.compute_efficiency * pad(shape.m) * pad(shape.n) * fill
    }

    /// Time the systolic arrays need for a local GeMM (excluding HBM
    /// streaming and kernel launch).
    pub fn gemm_flop_time(&self, shape: GemmShape) -> Duration {
        Duration::from_secs(shape.flops() as f64 / self.effective_flops(shape))
    }

    /// HBM bytes a local GeMM streams: read `A` and `B`, read-modify-write
    /// `C` (the accumulating output of a partial GeMM).
    pub fn gemm_hbm_bytes(&self, shape: GemmShape) -> u64 {
        shape.a_bytes(self.elem_bytes)
            + shape.b_bytes(self.elem_bytes)
            + 2 * shape.c_bytes(self.elem_bytes)
    }

    /// Seconds to move `bytes` over one ICI link direction, uncontended.
    pub fn link_time(&self, bytes: u64) -> Duration {
        Duration::from_secs(bytes as f64 / self.link_bandwidth)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::tpu_v4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_gemm_runs_near_peak() {
        let cfg = SimConfig::tpu_v4();
        let shape = GemmShape::new(8192, 8192, 8192);
        let eff = cfg.effective_flops(shape) / cfg.peak_flops;
        assert!(eff > 0.8, "large GeMM efficiency {eff}");
    }

    #[test]
    fn ragged_gemm_loses_efficiency() {
        let cfg = SimConfig::tpu_v4();
        let good = cfg.effective_flops(GemmShape::new(1024, 1024, 1024));
        let ragged = cfg.effective_flops(GemmShape::new(1024 + 1, 1024, 1024));
        assert!(ragged < good);
    }

    #[test]
    fn short_k_pays_pipeline_fill() {
        let cfg = SimConfig::tpu_v4();
        let long_k = cfg.effective_flops(GemmShape::new(1024, 1024, 8192));
        let short_k = cfg.effective_flops(GemmShape::new(1024, 1024, 128));
        assert!(short_k < 0.8 * long_k);
    }

    #[test]
    fn flop_time_scales_linearly() {
        let cfg = SimConfig::tpu_v4();
        let t1 = cfg.gemm_flop_time(GemmShape::new(1024, 1024, 1024));
        let t2 = cfg.gemm_flop_time(GemmShape::new(2048, 1024, 1024));
        let ratio = t2.as_secs() / t1.as_secs();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn hbm_bytes_count_c_twice() {
        let cfg = SimConfig::tpu_v4();
        let s = GemmShape::new(4, 8, 2);
        assert_eq!(cfg.gemm_hbm_bytes(s), (4 * 2 + 2 * 8 + 2 * 4 * 8) * 2);
    }

    #[test]
    fn real_hw_preset_disables_overlap() {
        let cfg = SimConfig::tpu_v4_real_hw();
        assert!(!cfg.overlap_collectives);
        assert!(cfg.link_bandwidth < SimConfig::tpu_v4().link_bandwidth);
    }

    #[test]
    fn link_time_is_bytes_over_bandwidth() {
        let cfg = SimConfig::tpu_v4();
        let t = cfg.link_time(65_000_000_000);
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }
}
