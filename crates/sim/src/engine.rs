//! The discrete-event execution engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use meshslice_mesh::{ChipId, LinkDir, Torus2d};

use crate::config::{NetworkModel, SimConfig};
use crate::failure::{AbortInfo, ChipFailure, FailureOutcome};
use crate::hbm::HbmChannel;
use crate::lower::{lower, Category, ExecGraph, Resource};
use crate::perturb::ClusterProfile;
use crate::program::{OpId, Program};
use crate::report::{SimReport, TimeBreakdown};
use crate::time::Duration;

/// Completion record of one program operation (from
/// [`Engine::run_traced`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpTrace {
    /// The operation.
    pub op: OpId,
    /// The chip it ran on.
    pub chip: meshslice_mesh::ChipId,
    /// Simulation time at which the operation completed.
    pub completed: Duration,
}

/// The execution lane a trace span occupies on its chip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanTrack {
    /// The chip's compute unit.
    Compute,
    /// One of the four ICI link directions.
    Link(LinkDir),
    /// No exclusive resource (launch overheads, join points).
    Host,
}

impl SpanTrack {
    /// A stable per-chip lane index (compute, four links, host).
    pub fn lane(&self) -> usize {
        match self {
            SpanTrack::Compute => 0,
            SpanTrack::Link(dir) => 1 + dir.index(),
            SpanTrack::Host => 5,
        }
    }

    /// Human-readable lane label.
    pub fn name(&self) -> &'static str {
        match self {
            SpanTrack::Compute => "compute",
            SpanTrack::Link(LinkDir::RowPlus) => "link row+",
            SpanTrack::Link(LinkDir::RowMinus) => "link row-",
            SpanTrack::Link(LinkDir::ColPlus) => "link col+",
            SpanTrack::Link(LinkDir::ColMinus) => "link col-",
            SpanTrack::Host => "host",
        }
    }
}

/// What kind of work a trace span performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A GeMM kernel.
    Compute,
    /// A slicing / layout-change copy kernel.
    Slice,
    /// Communication launch overhead.
    CommLaunch,
    /// A ring-step (or pipelined-broadcast) transfer.
    CommTransfer,
}

impl SpanKind {
    /// Human-readable category label (matches the report buckets).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Slice => "slice",
            SpanKind::CommLaunch => "comm_launch",
            SpanKind::CommTransfer => "comm_transfer",
        }
    }
}

/// One busy interval of one execution lane, from
/// [`Engine::run_spans`]. Spans carry the program op they belong to, so a
/// timeline can be labeled with op-level names.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeSpan {
    /// The program operation this span was lowered from.
    pub op: OpId,
    /// The chip the span ran on.
    pub chip: ChipId,
    /// The lane it occupied.
    pub track: SpanTrack,
    /// The kind of work performed.
    pub kind: SpanKind,
    /// Busy-interval start (after any synchronization delay).
    pub start: Duration,
    /// Busy-interval end.
    pub end: Duration,
}

/// The realized schedule of one lowered node, from
/// [`Engine::run_instrumented`].
///
/// A record captures every instant that matters for critical-path
/// analysis: when the node's dependencies were satisfied (`ready`), when it
/// acquired its exclusive resource (`acquired`), when its synchronization
/// delay elapsed and the busy interval began (`busy_start`), and when it
/// completed (`finish`). `deps` are indices into the same record vector;
/// `res_pred` names the node that released this node's resource to it, when
/// the node had to queue for the resource.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeRecord {
    /// The program operation this node was lowered from.
    pub op: OpId,
    /// The chip the node ran on.
    pub chip: ChipId,
    /// The execution lane it occupied.
    pub track: SpanTrack,
    /// The kind of work performed while busy.
    pub kind: SpanKind,
    /// Synchronization delay paid after acquiring the resource.
    pub sync: Duration,
    /// When the last dependency completed.
    pub ready: Duration,
    /// When the node acquired its resource (equals `ready` unless it
    /// queued).
    pub acquired: Duration,
    /// When the busy interval began (`acquired` plus the sync delay).
    pub busy_start: Duration,
    /// When the node completed.
    pub finish: Duration,
    /// Dependency node indices (into [`RunTimeline::nodes`]).
    pub deps: Vec<usize>,
    /// The node that handed this node its resource, if it had to wait.
    pub res_pred: Option<usize>,
}

/// The full realized schedule of a run: one [`NodeRecord`] per lowered
/// node, in lowering order. Produced by [`Engine::run_instrumented`]; the
/// raw material for critical-path extraction and slack analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct RunTimeline {
    /// Per-node records, indexed by lowered-node id.
    pub nodes: Vec<NodeRecord>,
    /// Node indices in the order they completed. A valid topological
    /// order of both dependency and resource-handoff edges; its reverse
    /// drives the backward (slack) pass.
    pub finish_seq: Vec<usize>,
}

/// Executes [`Program`]s on a simulated cluster.
///
/// The engine is deterministic: events are ordered by (time, insertion
/// sequence) and all state updates are single-threaded, so repeated runs of
/// the same program produce identical reports.
///
/// # Example
///
/// ```
/// use meshslice_mesh::Torus2d;
/// use meshslice_sim::{Engine, GemmShape, ProgramBuilder, SimConfig};
///
/// let mesh = Torus2d::new(1, 1);
/// let mut b = ProgramBuilder::new(&mesh);
/// b.gemm(meshslice_mesh::ChipId(0), GemmShape::new(1024, 1024, 1024), &[]);
/// let report = Engine::new(mesh, SimConfig::tpu_v4()).run(&b.build());
/// assert!(report.flop_utilization() > 0.5);
/// ```
#[derive(Clone, Debug)]
pub struct Engine {
    mesh: Torus2d,
    config: SimConfig,
}

/// A [`Program`] validated and lowered against one engine's mesh and
/// timing model, ready to be executed any number of times.
///
/// Lowering depends on the mesh and the non-fault fields of [`SimConfig`]
/// but **not** on [`SimConfig::faults`] — variability is applied at run
/// time. A `LoweredProgram` may therefore be shared across engines that
/// differ only in their fault profile (the robust-tuning hot path), and
/// across threads (`LoweredProgram` is `Send + Sync`).
///
/// Produced by [`Engine::lower_program`]; consumed by
/// [`Engine::run_lowered`] and [`Engine::run_lowered_with_scratch`].
#[derive(Clone, Debug)]
pub struct LoweredProgram {
    graph: ExecGraph,
    /// Per-node hot fields, packed for cache locality: the event loop
    /// touches only this copy; the full [`ExecGraph`] nodes are read only
    /// when building traces and timelines.
    hot: Vec<HotNode>,
    /// Reverse dependency lists in CSR form: the dependents of node `i`
    /// are `dep_targets[dep_starts[i]..dep_starts[i + 1]]`.
    dep_starts: Vec<u32>,
    dep_targets: Vec<u32>,
    /// Initial `deps_left` counters (copied into scratch per run).
    deps_left_init: Vec<u32>,
    /// Nodes with no dependencies, in index order.
    roots: Vec<usize>,
    /// Chip of each program op, for trace attribution.
    op_chips: Vec<ChipId>,
    total_flops: u64,
    num_chips: usize,
}

/// The per-node fields the event loop actually reads, packed into one
/// cache line (the full [`Node`](crate::lower::Node) is ~2 lines and drags
/// its dependency list along).
#[derive(Clone, Copy, Debug)]
struct HotNode {
    sync: f64,
    timer: f64,
    flow_bytes: f64,
    flow_cap: f64,
    fabric_bytes: f64,
    chip: u32,
    resource: Resource,
    category: Category,
}

impl LoweredProgram {
    /// Number of lowered execution nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.nodes.len()
    }

    /// Number of program operations.
    pub fn num_ops(&self) -> usize {
        self.op_chips.len()
    }
}

/// Reusable run-state buffers for [`Engine::run_with_scratch`] and
/// [`Engine::run_lowered_with_scratch`].
///
/// A run clears and refills these buffers instead of allocating ~20 fresh
/// `Vec`s; results are bit-for-bit identical to a fresh-allocation run.
/// A scratch is not tied to any engine, mesh, or program — the same value
/// can serve runs of any size in sequence (but not concurrently: use one
/// scratch per worker thread).
#[derive(Debug, Default)]
pub struct RunScratch {
    deps_left: Vec<u32>,
    phase: Vec<Phase>,
    compute_units: Vec<ResourceState>,
    links: Vec<[ResourceState; 4]>,
    hbm: Vec<HbmChannel>,
    heap: BinaryHeap<Reverse<(crate::time::Time, u64, Event)>>,
    wakes: WakeQueue,
    done_pool: Vec<Vec<usize>>,
    finish_time: Vec<f64>,
    spans: Vec<NodeSpan>,
    ready_time: Vec<f64>,
    acquire_time: Vec<f64>,
    busy_start_time: Vec<f64>,
    res_pred: Vec<Option<usize>>,
    finish_seq: Vec<usize>,
    compute_cum: Vec<f64>,
    compute_since: Vec<Option<f64>>,
    overlap_at_start: Vec<f64>,
}

impl RunScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Clears `v` and refills it with `n` copies of `val`, keeping capacity.
fn refill<T: Clone>(v: &mut Vec<T>, n: usize, val: T) {
    v.clear();
    v.resize(n, val);
}

/// Heap events are ordered by (time, sequence); the sequence is unique, so
/// the derived `Ord` on `Event` is never consulted — it exists only so the
/// payload can live directly in the heap tuple (no side-table indirection).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// The post-resource synchronization delay elapsed.
    SyncDone(usize),
    /// The fixed busy timer of a node elapsed.
    TimerDone(usize),
    /// A chip's HBM channel may have completed flows.
    HbmWake { chip: usize, version: u64 },
    /// The shared fabric may have completed flows.
    FabricWake { version: u64 },
    /// A link-outage window of one chip starts or ends: in-flight
    /// transfers on that chip's links must be re-rated.
    FaultEdge { chip: usize },
    /// The permanent chip failure of this run occurs (at most one per
    /// run, so the event needs no payload).
    ChipFail,
    /// A neighbor-sync watchdog expires: if the failure has fired and
    /// this is the earliest pending watchdog, the failure is detected
    /// and the run aborts.
    FailTimeout,
}

/// Permanent-failure bookkeeping of one run (present only on the
/// [`Engine::run_with_failure`] path; `None` keeps the normal path
/// structurally unchanged).
#[derive(Clone, Copy, Debug)]
struct FailCtx {
    /// The chip that dies.
    chip: u32,
    /// Detection latency: a live node stalled on the dead chip is
    /// noticed one timeout after the stall begins (the neighbor sync
    /// that never arrives).
    timeout: f64,
    /// Earliest pending watchdog expiry (`INFINITY` until a stall).
    detect_at: f64,
    /// Whether the failure instant has passed.
    fired: bool,
}

/// Per-node lifecycle state. The busy-interval start is not carried here —
/// it is always `busy_start_time[node]`, written when the node goes busy —
/// so the enum stays 2 bytes and the phase array cache-resident.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Phase {
    Blocked,
    Queued,
    Syncing,
    Busy { parts_left: u8 },
    Done,
}

#[derive(Clone, Debug, Default)]
struct ResourceState {
    busy: bool,
    queue: VecDeque<usize>,
}

/// Sentinel for "slot not in the wake queue".
const WAKE_ABSENT: u32 = u32::MAX;

/// Indexed min-queue of pending channel wake-ups: one slot per HBM channel
/// plus one for the shared fabric. A channel reconfiguration *replaces* the
/// channel's pending wake in place instead of pushing another entry onto
/// the event heap, so stale wake-ups never accumulate.
///
/// Dispatch order is bit-identical to pushing every wake onto the shared
/// heap: each update takes the next global sequence number exactly as a
/// pushed event would, so the surviving (latest) wake keeps the same
/// (time, seq) key it would have had there — and the superseded entries
/// this queue drops were version-mismatched no-ops.
#[derive(Clone, Debug, Default)]
struct WakeQueue {
    /// Per-slot pending key; meaningful only while `pos[slot] != ABSENT`.
    time: Vec<crate::time::Time>,
    seq: Vec<u64>,
    version: Vec<u64>,
    /// Slot ids ordered as a binary min-heap by (time, seq).
    heap: Vec<u32>,
    /// Slot → position in `heap`, or [`WAKE_ABSENT`].
    pos: Vec<u32>,
}

impl WakeQueue {
    /// Empties the queue and sizes it for `slots` channels.
    fn reset(&mut self, slots: usize) {
        refill(&mut self.time, slots, crate::time::Time::ZERO);
        refill(&mut self.seq, slots, 0);
        refill(&mut self.version, slots, 0);
        self.heap.clear();
        refill(&mut self.pos, slots, WAKE_ABSENT);
    }

    fn key(&self, slot: u32) -> (crate::time::Time, u64) {
        (self.time[slot as usize], self.seq[slot as usize])
    }

    /// Inserts or replaces the pending wake of `slot`.
    fn set(&mut self, slot: usize, time: crate::time::Time, seq: u64, version: u64) {
        self.time[slot] = time;
        self.seq[slot] = seq;
        self.version[slot] = version;
        let p = self.pos[slot];
        if p == WAKE_ABSENT {
            self.pos[slot] = self.heap.len() as u32;
            self.heap.push(slot as u32);
            self.sift_up(self.heap.len() - 1);
        } else {
            let p = p as usize;
            if !self.sift_up(p) {
                self.sift_down(p);
            }
        }
    }

    /// The smallest pending (time, seq) key, if any wake is pending.
    fn peek(&self) -> Option<(crate::time::Time, u64)> {
        self.heap.first().map(|&s| self.key(s))
    }

    /// Removes and returns the earliest wake as (slot, version).
    fn pop(&mut self) -> (usize, u64) {
        let slot = self.heap[0] as usize;
        self.pos[slot] = WAKE_ABSENT;
        let last = self.heap.pop().expect("pop on empty wake queue");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        (slot, self.version[slot])
    }

    /// Moves the entry at heap position `p` up; returns whether it moved.
    fn sift_up(&mut self, mut p: usize) -> bool {
        let mut moved = false;
        while p > 0 {
            let parent = (p - 1) / 2;
            if self.key(self.heap[p]) < self.key(self.heap[parent]) {
                self.heap.swap(p, parent);
                self.pos[self.heap[p] as usize] = p as u32;
                self.pos[self.heap[parent] as usize] = parent as u32;
                p = parent;
                moved = true;
            } else {
                break;
            }
        }
        moved
    }

    fn sift_down(&mut self, mut p: usize) {
        loop {
            let l = 2 * p + 1;
            let r = l + 1;
            let mut smallest = p;
            if l < self.heap.len() && self.key(self.heap[l]) < self.key(self.heap[smallest]) {
                smallest = l;
            }
            if r < self.heap.len() && self.key(self.heap[r]) < self.key(self.heap[smallest]) {
                smallest = r;
            }
            if smallest == p {
                break;
            }
            self.heap.swap(p, smallest);
            self.pos[self.heap[p] as usize] = p as u32;
            self.pos[self.heap[smallest] as usize] = smallest as u32;
            p = smallest;
        }
    }
}

struct Run<'a> {
    nodes: &'a ExecGraph,
    /// Packed per-node hot fields (see [`HotNode`]); `nodes` is only read
    /// for trace/span attribution.
    hot: &'a [HotNode],
    /// Active variability profile. `None` when the config carries no
    /// profile *or* an ideal one — the fault hooks then cost nothing and
    /// the simulation is bit-for-bit the unperturbed one.
    profile: Option<&'a ClusterProfile>,
    deps_left: Vec<u32>,
    dep_starts: &'a [u32],
    dep_targets: &'a [u32],
    phase: Vec<Phase>,
    compute_units: Vec<ResourceState>,
    links: Vec<[ResourceState; 4]>,
    hbm: Vec<HbmChannel>,
    /// Fluid channel of the shared fabric (logical-mesh mode only).
    fabric: Option<HbmChannel>,
    heap: BinaryHeap<Reverse<(crate::time::Time, u64, Event)>>,
    /// Pending channel wake-ups, one replaceable slot per HBM channel plus
    /// one for the fabric (slot `hbm.len()`). Kept out of `heap` so channel
    /// reconfigurations replace their wake instead of piling stale entries.
    wakes: WakeQueue,
    /// Spare buffers for flow-completion batches (take/put-back; a pool
    /// because completion handling can recursively drain more flows).
    done_pool: Vec<Vec<usize>>,
    seq: u64,
    makespan: f64,
    buckets: Buckets,
    completed: usize,
    finish_time: Vec<f64>,
    /// When set, every finished busy interval is recorded as a span.
    collect_spans: bool,
    /// When set, per-node schedule instants (`ready_time`, `acquire_time`,
    /// `res_pred`, `finish_seq`) are maintained for [`RunTimeline`].
    collect_nodes: bool,
    /// When set, per-node finish times are maintained (op traces and
    /// timelines need them; plain report-only runs skip the stores).
    collect_finish: bool,
    spans: Vec<NodeSpan>,
    ready_time: Vec<f64>,
    acquire_time: Vec<f64>,
    busy_start_time: Vec<f64>,
    res_pred: Vec<Option<usize>>,
    finish_seq: Vec<usize>,
    /// Per-chip completed compute-unit busy time (the cumulative measure
    /// used for overlap accounting; always on, O(1) per node).
    compute_cum: Vec<f64>,
    /// Busy-interval start of the chip's currently active compute node.
    compute_since: Vec<Option<f64>>,
    /// Compute measure snapshot taken when a transfer node went busy.
    overlap_at_start: Vec<f64>,
    /// Total comm-transfer busy time that ran while the same chip's
    /// compute unit was busy (the paper's "hidden" communication).
    overlapped: f64,
    /// Permanent-failure context (`None` on the normal path).
    failure: Option<FailCtx>,
    /// Detection time once a watchdog fires; set at most once, and the
    /// event loop stops at it.
    aborted: Option<f64>,
}

#[derive(Clone, Debug, Default)]
struct Buckets {
    compute: f64,
    slice: f64,
    comm_launch: f64,
    comm_sync: f64,
    comm_transfer: f64,
}

impl Engine {
    /// Creates an engine for the given mesh and hardware model.
    pub fn new(mesh: Torus2d, config: SimConfig) -> Self {
        Engine { mesh, config }
    }

    /// The mesh this engine simulates.
    pub fn mesh(&self) -> &Torus2d {
        &self.mesh
    }

    /// The hardware configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// A sibling engine on the same mesh whose config differs only in its
    /// fault profile — the replay hook for pricing one lowered program
    /// under many perturbations: lowering does not depend on
    /// [`SimConfig::faults`], so a [`LoweredProgram`] built by `self` can
    /// be run by the sibling (and vice versa) without re-lowering.
    pub fn with_faults(&self, profile: ClusterProfile) -> Engine {
        Engine {
            mesh: self.mesh.clone(),
            config: self.config.clone().with_faults(profile),
        }
    }

    /// Runs a program to completion and reports timing.
    ///
    /// # Panics
    ///
    /// Panics if the program deadlocks (a dependency cycle), which would
    /// indicate a bug in the schedule builder.
    pub fn run(&self, program: &Program) -> SimReport {
        self.run_traced(program).0
    }

    /// Like [`run`](Self::run), but clears and reuses the caller's
    /// [`RunScratch`] buffers instead of allocating fresh run state —
    /// the fast path for sweeps that execute thousands of programs.
    /// Results are bit-for-bit identical to [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the program deadlocks (a dependency cycle).
    pub fn run_with_scratch(&self, program: &Program, scratch: &mut RunScratch) -> SimReport {
        let lowered = self.lower_program(program);
        self.run_lowered_with_scratch(&lowered, scratch)
    }

    /// Validates and lowers a program once, for repeated execution via
    /// [`run_lowered`](Self::run_lowered) /
    /// [`run_lowered_with_scratch`](Self::run_lowered_with_scratch).
    ///
    /// The lowered form does not depend on [`SimConfig::faults`], so it can
    /// be reused across engines that differ only in their fault profile.
    ///
    /// # Panics
    ///
    /// Panics if the program has a dependency cycle.
    pub fn lower_program(&self, program: &Program) -> LoweredProgram {
        if let Err(cycle) = program.validate_acyclic() {
            panic!("invalid program: {cycle}");
        }
        let graph = lower(&self.mesh, &self.config, program);
        let n = graph.nodes.len();
        let mut deps_left_init = vec![0u32; n];
        // CSR construction: count dependents, prefix-sum, then fill.
        let mut dep_starts = vec![0u32; n + 1];
        for (i, node) in graph.nodes.iter().enumerate() {
            deps_left_init[i] = node.deps.len() as u32;
            for &d in &node.deps {
                dep_starts[d + 1] += 1;
            }
        }
        for i in 0..n {
            dep_starts[i + 1] += dep_starts[i];
        }
        let mut dep_targets = vec![0u32; dep_starts[n] as usize];
        let mut cursor = dep_starts.clone();
        for (i, node) in graph.nodes.iter().enumerate() {
            for &d in &node.deps {
                dep_targets[cursor[d] as usize] = i as u32;
                cursor[d] += 1;
            }
        }
        let hot = graph
            .nodes
            .iter()
            .map(|node| HotNode {
                sync: node.sync,
                timer: node.timer,
                flow_bytes: node.flow_bytes,
                flow_cap: node.flow_cap,
                fabric_bytes: node.fabric_bytes,
                chip: node.chip as u32,
                resource: node.resource,
                category: node.category,
            })
            .collect();
        let roots = (0..n).filter(|&i| deps_left_init[i] == 0).collect();
        LoweredProgram {
            graph,
            hot,
            dep_starts,
            dep_targets,
            deps_left_init,
            roots,
            op_chips: program.ops().iter().map(|op| op.chip).collect(),
            total_flops: program.total_flops(),
            num_chips: self.mesh.num_chips(),
        }
    }

    /// Runs a pre-lowered program to completion and reports timing.
    /// Bit-for-bit identical to [`run`](Self::run) on the source program.
    ///
    /// # Panics
    ///
    /// Panics if the lowered program was built for a mesh of a different
    /// size, or if the program deadlocks.
    pub fn run_lowered(&self, lowered: &LoweredProgram) -> SimReport {
        self.run_lowered_with_scratch(lowered, &mut RunScratch::default())
    }

    /// Runs a pre-lowered program reusing the caller's scratch buffers —
    /// the hottest path: no validation, no lowering, no run-state
    /// allocation. Bit-for-bit identical to [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if the lowered program was built for a mesh of a different
    /// size, or if the program deadlocks.
    pub fn run_lowered_with_scratch(
        &self,
        lowered: &LoweredProgram,
        scratch: &mut RunScratch,
    ) -> SimReport {
        let (report, _, _, _, _) =
            self.run_lowered_inner(lowered, scratch, false, false, false, None);
        report
    }

    /// Runs a program that may be interrupted by a permanent chip
    /// failure at `failure.at`.
    ///
    /// The failed chip freezes at the failure instant: in-flight work
    /// stalls forever and nothing new starts there. Surviving chips keep
    /// executing until one of them blocks with every remaining dependency
    /// on the dead chip — the per-ring-step neighbor sync that would have
    /// released it never arrives — and a watchdog declares the failure
    /// detected `sync_timeout` seconds after that stall. The run then
    /// aborts with an [`AbortInfo`]. If no live node ever depends on the
    /// dead chip, the end-of-run barrier detects the missing chip one
    /// timeout after the last live completion instead.
    ///
    /// A failure at or after natural completion returns
    /// [`FailureOutcome::Completed`] with a report **bit-for-bit
    /// identical** to [`run`](Self::run) — the failure path adds no
    /// floating-point work to unaffected runs.
    ///
    /// # Panics
    ///
    /// Panics if `failure.chip` is outside the mesh, `failure.at` is not
    /// finite and non-negative, or `sync_timeout` is negative.
    pub fn run_with_failure(
        &self,
        program: &Program,
        failure: ChipFailure,
        sync_timeout: f64,
    ) -> FailureOutcome {
        let lowered = self.lower_program(program);
        self.run_lowered_with_failure(&lowered, &mut RunScratch::default(), failure, sync_timeout)
    }

    /// Pre-lowered, scratch-reusing variant of
    /// [`run_with_failure`](Self::run_with_failure) — the sweep hot path.
    pub fn run_lowered_with_failure(
        &self,
        lowered: &LoweredProgram,
        scratch: &mut RunScratch,
        failure: ChipFailure,
        sync_timeout: f64,
    ) -> FailureOutcome {
        let (report, _, _, _, abort) = self.run_lowered_inner(
            lowered,
            scratch,
            false,
            false,
            false,
            Some((failure, sync_timeout)),
        );
        match abort {
            Some(info) => FailureOutcome::Aborted(info),
            None => FailureOutcome::Completed(report),
        }
    }

    /// Like [`run_spans`](Self::run_spans), but additionally returns the
    /// full realized schedule: one [`NodeRecord`] per lowered node with
    /// ready/acquire/busy/finish instants, dependency edges, and resource
    /// handoffs — everything critical-path extraction needs.
    ///
    /// # Panics
    ///
    /// Panics if the program deadlocks.
    pub fn run_instrumented(&self, program: &Program) -> (SimReport, Vec<NodeSpan>, RunTimeline) {
        let (report, _, mut spans, timeline) = self.run_inner(program, true, true);
        spans.sort_by(|a, b| {
            (a.chip.index(), a.track.lane())
                .cmp(&(b.chip.index(), b.track.lane()))
                .then(a.start.as_secs().total_cmp(&b.start.as_secs()))
        });
        (report, spans, timeline)
    }

    /// Like [`run`](Self::run), but also returns the completion time of
    /// every program operation — useful for timeline visualization and
    /// for debugging schedules.
    ///
    /// # Panics
    ///
    /// Panics if the program deadlocks.
    pub fn run_traced(&self, program: &Program) -> (SimReport, Vec<OpTrace>) {
        let (report, traces, _, _) = self.run_inner(program, false, false);
        (report, traces)
    }

    /// Like [`run`](Self::run), but also returns every busy interval of
    /// every execution lane (compute unit, link directions, host), sorted
    /// by chip, lane, and start time — the raw material for a Chrome
    /// trace-event timeline.
    ///
    /// # Panics
    ///
    /// Panics if the program deadlocks.
    pub fn run_spans(&self, program: &Program) -> (SimReport, Vec<NodeSpan>) {
        let (report, _, mut spans, _) = self.run_inner(program, true, false);
        spans.sort_by(|a, b| {
            (a.chip.index(), a.track.lane())
                .cmp(&(b.chip.index(), b.track.lane()))
                .then(a.start.as_secs().total_cmp(&b.start.as_secs()))
        });
        (report, spans)
    }

    fn run_inner(
        &self,
        program: &Program,
        collect_spans: bool,
        collect_nodes: bool,
    ) -> (SimReport, Vec<OpTrace>, Vec<NodeSpan>, RunTimeline) {
        let lowered = self.lower_program(program);
        let (report, traces, spans, timeline, _) = self.run_lowered_inner(
            &lowered,
            &mut RunScratch::default(),
            collect_spans,
            collect_nodes,
            true,
            None,
        );
        (report, traces, spans, timeline)
    }

    fn run_lowered_inner(
        &self,
        lowered: &LoweredProgram,
        scratch: &mut RunScratch,
        collect_spans: bool,
        collect_nodes: bool,
        collect_traces: bool,
        failure: Option<(ChipFailure, f64)>,
    ) -> (
        SimReport,
        Vec<OpTrace>,
        Vec<NodeSpan>,
        RunTimeline,
        Option<AbortInfo>,
    ) {
        let n = lowered.graph.nodes.len();
        let chips = self.mesh.num_chips();
        if let Some((cf, timeout)) = &failure {
            assert!(
                cf.chip < chips,
                "failed chip {} outside {chips}-chip mesh",
                cf.chip
            );
            assert!(
                cf.at.is_finite() && cf.at >= 0.0,
                "failure time {} must be finite and non-negative",
                cf.at
            );
            assert!(
                timeout.is_finite() && *timeout >= 0.0,
                "sync timeout {timeout} must be finite and non-negative"
            );
        }
        assert_eq!(
            lowered.num_chips, chips,
            "lowered program was built for {} chips but the mesh has {chips}",
            lowered.num_chips
        );
        let profile = self.config.faults.as_ref();
        if let Some(p) = profile {
            assert_eq!(
                p.num_chips(),
                chips,
                "fault profile covers {} chips but the mesh has {chips}",
                p.num_chips()
            );
        }
        // An ideal profile would only multiply by exactly 1.0 everywhere;
        // dropping it keeps the unperturbed fast path and makes the
        // bit-for-bit equivalence structural.
        let profile = profile.filter(|p| !p.is_ideal());

        // Reset the scratch buffers to exactly the state a fresh
        // allocation would have, keeping their capacity.
        scratch.deps_left.clear();
        scratch.deps_left.extend_from_slice(&lowered.deps_left_init);
        refill(&mut scratch.phase, n, Phase::Blocked);
        scratch.compute_units.truncate(chips);
        for rs in &mut scratch.compute_units {
            rs.busy = false;
            rs.queue.clear();
        }
        scratch
            .compute_units
            .resize_with(chips, ResourceState::default);
        scratch.links.truncate(chips);
        for dirs in &mut scratch.links {
            for rs in dirs {
                rs.busy = false;
                rs.queue.clear();
            }
        }
        scratch.links.resize_with(chips, Default::default);
        scratch.hbm.truncate(chips);
        for ch in &mut scratch.hbm {
            ch.reset(self.config.hbm_bandwidth);
        }
        while scratch.hbm.len() < chips {
            scratch.hbm.push(HbmChannel::new(self.config.hbm_bandwidth));
        }
        scratch.heap.clear();
        scratch.wakes.reset(chips + 1);
        for buf in &mut scratch.done_pool {
            buf.clear();
        }
        let collect_finish = collect_traces || collect_nodes;
        if collect_finish {
            refill(&mut scratch.finish_time, n, 0.0);
        }
        scratch.spans.clear();
        if collect_nodes {
            refill(&mut scratch.ready_time, n, 0.0);
            refill(&mut scratch.acquire_time, n, 0.0);
            refill(&mut scratch.res_pred, n, None);
            scratch.finish_seq.reserve(n);
        }
        scratch.finish_seq.clear();
        refill(&mut scratch.busy_start_time, n, 0.0);
        refill(&mut scratch.compute_cum, chips, 0.0);
        refill(&mut scratch.compute_since, chips, None);
        refill(&mut scratch.overlap_at_start, n, 0.0);

        let mut run = Run {
            nodes: &lowered.graph,
            hot: &lowered.hot,
            profile,
            deps_left: std::mem::take(&mut scratch.deps_left),
            dep_starts: &lowered.dep_starts,
            dep_targets: &lowered.dep_targets,
            phase: std::mem::take(&mut scratch.phase),
            compute_units: std::mem::take(&mut scratch.compute_units),
            links: std::mem::take(&mut scratch.links),
            hbm: std::mem::take(&mut scratch.hbm),
            fabric: match self.config.network {
                NetworkModel::PhysicalTorus => None,
                NetworkModel::SharedFabric {
                    bisection_bandwidth,
                } => Some(HbmChannel::new(bisection_bandwidth)),
            },
            heap: std::mem::take(&mut scratch.heap),
            wakes: std::mem::take(&mut scratch.wakes),
            done_pool: std::mem::take(&mut scratch.done_pool),
            seq: 0,
            makespan: 0.0,
            buckets: Buckets::default(),
            completed: 0,
            finish_time: std::mem::take(&mut scratch.finish_time),
            collect_spans,
            collect_nodes,
            collect_finish,
            spans: std::mem::take(&mut scratch.spans),
            ready_time: std::mem::take(&mut scratch.ready_time),
            acquire_time: std::mem::take(&mut scratch.acquire_time),
            busy_start_time: std::mem::take(&mut scratch.busy_start_time),
            res_pred: std::mem::take(&mut scratch.res_pred),
            finish_seq: std::mem::take(&mut scratch.finish_seq),
            compute_cum: std::mem::take(&mut scratch.compute_cum),
            compute_since: std::mem::take(&mut scratch.compute_since),
            overlap_at_start: std::mem::take(&mut scratch.overlap_at_start),
            overlapped: 0.0,
            failure: failure.map(|(cf, timeout)| FailCtx {
                chip: cf.chip as u32,
                timeout,
                detect_at: f64::INFINITY,
                fired: false,
            }),
            aborted: None,
        };

        // Outage boundaries are known up front; scheduling them as events
        // re-rates in-flight transfers exactly at each edge.
        if let Some(p) = profile {
            for chip in 0..chips {
                for edge in p.edge_times(chip) {
                    run.schedule(edge, Event::FaultEdge { chip });
                }
            }
        }

        // The permanent failure, if any, is a pre-scheduled event too.
        if let Some((cf, _)) = &failure {
            run.schedule(cf.at, Event::ChipFail);
        }

        // The roots were snapshotted at lowering time, before starting any
        // of them: zero-duration roots can complete instantly and make
        // further nodes ready (through the normal dependency path), which
        // must not be re-readied by this loop.
        for &i in &lowered.roots {
            if run.phase[i] == Phase::Blocked {
                run.ready(i, 0.0);
            }
        }
        // Two sources of events, one total order: the shared heap and the
        // per-channel wake queue draw sequence numbers from the same
        // counter, so comparing their head (time, seq) keys dispatches in
        // exactly the order a single combined heap would.
        loop {
            // A detected failure stops the cluster: events past the
            // detection instant are never dispatched.
            if run.aborted.is_some() {
                break;
            }
            let main_key = run.heap.peek().map(|Reverse((t, s, _))| (*t, *s));
            let wake_key = run.wakes.peek();
            let take_wake = match (main_key, wake_key) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(m), Some(w)) => w < m,
            };
            if take_wake {
                let (t, _) = wake_key.expect("checked");
                let (slot, version) = run.wakes.pop();
                let event = if slot == run.hbm.len() {
                    Event::FabricWake { version }
                } else {
                    Event::HbmWake {
                        chip: slot,
                        version,
                    }
                };
                run.dispatch(event, t.as_secs());
            } else {
                let Reverse((t, _, event)) = run.heap.pop().expect("checked");
                run.dispatch(event, t.as_secs());
            }
        }
        let abort = match &failure {
            Some((cf, timeout)) if run.completed < n => {
                // Detected by a stalled live node's watchdog, or — when
                // only dead-chip work remained — by the end-of-run
                // barrier one timeout after the last live completion.
                let detected = run.aborted.unwrap_or(run.makespan.max(cf.at) + timeout);
                Some(AbortInfo {
                    failure_time: Duration::from_secs(cf.at),
                    detected_at: Duration::from_secs(detected),
                    completed_nodes: run.completed,
                    total_nodes: n,
                })
            }
            Some(_) => None,
            None => {
                assert_eq!(
                    run.completed, n,
                    "program deadlocked: {} of {n} nodes completed",
                    run.completed
                );
                None
            }
        };

        let report = SimReport::new(
            Duration::from_secs(run.makespan),
            chips,
            self.config.peak_flops,
            lowered.total_flops,
            TimeBreakdown {
                compute: Duration::from_secs(run.buckets.compute),
                slice: Duration::from_secs(run.buckets.slice),
                comm_launch: Duration::from_secs(run.buckets.comm_launch),
                comm_sync: Duration::from_secs(run.buckets.comm_sync),
                comm_transfer: Duration::from_secs(run.buckets.comm_transfer),
            },
            Duration::from_secs(run.overlapped),
        );
        let traces = if collect_traces {
            lowered
                .graph
                .op_exit
                .iter()
                .enumerate()
                .map(|(op_idx, &exit)| OpTrace {
                    op: OpId(op_idx),
                    chip: lowered.op_chips[op_idx],
                    completed: Duration::from_secs(run.finish_time[exit]),
                })
                .collect()
        } else {
            Vec::new()
        };

        // Dismantle the run and hand its buffers back to the scratch.
        // Buffers that leave as part of a returned artifact (spans,
        // finish_seq of an instrumented run) are moved out instead; the
        // scratch re-grows them on the next collecting run.
        let Run {
            deps_left,
            phase,
            compute_units,
            links,
            hbm,
            heap,
            wakes,
            done_pool,
            finish_time,
            spans,
            ready_time,
            acquire_time,
            busy_start_time,
            res_pred,
            finish_seq,
            compute_cum,
            compute_since,
            overlap_at_start,
            ..
        } = run;

        let timeline = if collect_nodes {
            let nodes = lowered
                .graph
                .nodes
                .iter()
                .enumerate()
                .map(|(i, node)| NodeRecord {
                    op: OpId(node.op),
                    chip: ChipId(node.chip),
                    track: match node.resource {
                        Resource::Compute => SpanTrack::Compute,
                        Resource::Link(dir) => SpanTrack::Link(dir),
                        Resource::None => SpanTrack::Host,
                    },
                    kind: match node.category {
                        Category::Compute => SpanKind::Compute,
                        Category::Slice => SpanKind::Slice,
                        Category::CommLaunch => SpanKind::CommLaunch,
                        Category::CommTransfer => SpanKind::CommTransfer,
                    },
                    sync: Duration::from_secs(node.sync),
                    ready: Duration::from_secs(ready_time[i]),
                    acquired: Duration::from_secs(acquire_time[i]),
                    busy_start: Duration::from_secs(busy_start_time[i]),
                    finish: Duration::from_secs(finish_time[i]),
                    deps: node.deps.clone(),
                    res_pred: res_pred[i],
                })
                .collect();
            RunTimeline { nodes, finish_seq }
        } else {
            scratch.finish_seq = finish_seq;
            RunTimeline {
                nodes: Vec::new(),
                finish_seq: Vec::new(),
            }
        };
        scratch.deps_left = deps_left;
        scratch.phase = phase;
        scratch.compute_units = compute_units;
        scratch.links = links;
        scratch.hbm = hbm;
        scratch.heap = heap;
        scratch.wakes = wakes;
        scratch.done_pool = done_pool;
        scratch.finish_time = finish_time;
        scratch.ready_time = ready_time;
        scratch.acquire_time = acquire_time;
        scratch.busy_start_time = busy_start_time;
        scratch.res_pred = res_pred;
        scratch.compute_cum = compute_cum;
        scratch.compute_since = compute_since;
        scratch.overlap_at_start = overlap_at_start;
        (report, traces, spans, timeline, abort)
    }
}

impl<'a> Run<'a> {
    fn schedule(&mut self, t: f64, event: Event) {
        self.seq += 1;
        self.heap
            .push(Reverse((crate::time::Time::from_secs(t), self.seq, event)));
    }

    /// Grabs a spare completion buffer (empty) from the pool.
    fn grab_done(&mut self) -> Vec<usize> {
        self.done_pool.pop().unwrap_or_default()
    }

    /// Returns a completion buffer to the pool for reuse.
    fn release_done(&mut self, mut buf: Vec<usize>) {
        buf.clear();
        self.done_pool.push(buf);
    }

    /// Whether `node` lives on the dead chip of a fired failure.
    #[inline]
    fn node_frozen(&self, node: usize) -> bool {
        match &self.failure {
            Some(f) => f.fired && self.hot[node].chip == f.chip,
            None => false,
        }
    }

    /// Whether `chip` is the dead chip of a fired failure.
    #[inline]
    fn chip_dead(&self, chip: usize) -> bool {
        match &self.failure {
            Some(f) => f.fired && f.chip as usize == chip,
            None => false,
        }
    }

    fn dispatch(&mut self, event: Event, t: f64) {
        match event {
            Event::SyncDone(node) => {
                if self.node_frozen(node) {
                    return;
                }
                if self.phase[node] == Phase::Syncing {
                    self.begin_busy(node, t);
                }
            }
            Event::TimerDone(node) => self.part_done(node, t),
            Event::HbmWake { chip, version } => {
                if self.chip_dead(chip) {
                    return; // the dead chip's channel is frozen
                }
                if self.hbm[chip].version() != version {
                    return; // stale wake-up
                }
                self.hbm[chip].advance(t);
                let mut done = self.grab_done();
                self.hbm[chip].take_completed_into(&mut done);
                for &node_done in &done {
                    self.part_done(node_done, t);
                }
                self.release_done(done);
                self.reschedule_hbm(chip, t);
            }
            Event::FabricWake { version } => {
                let Some(fabric) = self.fabric.as_mut() else {
                    return;
                };
                if fabric.version() != version {
                    return; // stale wake-up
                }
                fabric.advance(t);
                let mut done = self.grab_done();
                self.fabric
                    .as_mut()
                    .expect("checked")
                    .take_completed_into(&mut done);
                for &node_done in &done {
                    self.part_done(node_done, t);
                }
                self.release_done(done);
                self.reschedule_fabric(t);
            }
            Event::ChipFail => self.on_chip_fail(t),
            Event::FailTimeout => {
                // A stall watchdog expired: the earliest one to fire is the
                // true detection time (stalls on a dead chip never resolve,
                // so the earliest-armed watchdog is never cancelled).
                if self.failure.as_ref().is_some_and(|f| f.fired) && self.aborted.is_none() {
                    self.aborted = Some(t);
                }
            }
            Event::FaultEdge { chip } => {
                if self.chip_dead(chip) {
                    return; // outage edges on a dead chip are moot
                }
                // An outage window on one of this chip's links starts or
                // ends: settle the chip's HBM channel up to now, then
                // re-rate its in-flight link transfers.
                self.hbm[chip].advance(t);
                let mut done = self.grab_done();
                self.hbm[chip].take_completed_into(&mut done);
                for &node_done in &done {
                    self.part_done(node_done, t);
                }
                self.release_done(done);
                self.retune_chip_links(chip, t);
                self.reschedule_hbm(chip, t);
                if self.fabric.is_some() {
                    let fabric = self.fabric.as_mut().expect("checked");
                    fabric.advance(t);
                    let mut done = self.grab_done();
                    self.fabric
                        .as_mut()
                        .expect("checked")
                        .take_completed_into(&mut done);
                    for &node_done in &done {
                        self.part_done(node_done, t);
                    }
                    self.release_done(done);
                    self.retune_fabric_links(chip, t);
                    self.reschedule_fabric(t);
                }
            }
        }
    }

    /// Re-rates the in-flight link flows of one chip's HBM channel to the
    /// profile's current bandwidth multipliers. Flows of other resources
    /// (GeMM/slice streaming) are untouched.
    fn retune_chip_links(&mut self, chip: usize, t: f64) {
        let Some(profile) = self.profile else { return };
        let hot = self.hot;
        self.hbm[chip].retune_caps(|node| {
            let info = &hot[node];
            match info.resource {
                Resource::Link(dir) => {
                    Some(info.flow_cap * profile.link_multiplier_at(chip, dir, t))
                }
                _ => None,
            }
        });
    }

    /// Same as [`retune_chip_links`](Self::retune_chip_links) but for the
    /// shared-fabric flows injected by that chip.
    fn retune_fabric_links(&mut self, chip: usize, t: f64) {
        let Some(profile) = self.profile else { return };
        let hot = self.hot;
        if let Some(fabric) = self.fabric.as_mut() {
            fabric.retune_caps(|node| {
                let info = &hot[node];
                if info.chip as usize != chip {
                    return None;
                }
                match info.resource {
                    Resource::Link(dir) => {
                        // Fabric injection is capped at half the HBM-side
                        // cap (the link wire rate), scaled the same way.
                        Some(info.flow_cap * profile.link_multiplier_at(chip, dir, t) / 2.0)
                    }
                    _ => None,
                }
            });
        }
    }

    /// Replaces the pending wake of a channel slot, consuming the next
    /// global sequence number exactly as [`schedule`](Self::schedule)
    /// would — the surviving wake's (time, seq) key matches what a shared
    /// heap push would have produced.
    fn schedule_wake(&mut self, slot: usize, t: f64, version: u64) {
        self.seq += 1;
        self.wakes
            .set(slot, crate::time::Time::from_secs(t), self.seq, version);
    }

    fn reschedule_hbm(&mut self, chip: usize, t: f64) {
        if let Some(dt) = self.hbm[chip].next_completion_in() {
            let version = self.hbm[chip].version();
            self.schedule_wake(chip, t + dt, version);
        }
    }

    fn reschedule_fabric(&mut self, t: f64) {
        let Some(fabric) = self.fabric.as_ref() else {
            return;
        };
        if let Some(dt) = fabric.next_completion_in() {
            let version = fabric.version();
            let slot = self.hbm.len();
            self.schedule_wake(slot, t + dt, version);
        }
    }

    fn resource_state(&mut self, node: usize) -> Option<&mut ResourceState> {
        let chip = self.hot[node].chip as usize;
        match self.hot[node].resource {
            Resource::None => None,
            Resource::Compute => Some(&mut self.compute_units[chip]),
            Resource::Link(dir) => Some(&mut self.links[chip][dir.index()]),
        }
    }

    /// The chip's cumulative compute-unit busy time at instant `t` (a
    /// monotone measure; the overlap of an interval `[s, t]` with the
    /// chip's compute-busy set is exactly `measure(t) − measure(s)`).
    fn compute_measure(&self, chip: usize, t: f64) -> f64 {
        self.compute_cum[chip] + self.compute_since[chip].map_or(0.0, |s| t - s)
    }

    /// The just-fired failure froze `FailCtx::chip`: suppress every event
    /// on it from now on, then scan for live nodes that are already stalled
    /// on the dead chip and arm their detection watchdog.
    fn on_chip_fail(&mut self, t: f64) {
        let dead = {
            let Some(f) = self.failure.as_mut() else {
                return;
            };
            if f.fired {
                return;
            }
            f.fired = true;
            f.chip
        };
        if (0..self.phase.len()).any(|d| self.stalled_on_dead(d, dead)) {
            self.stall_watchdog(t);
        }
    }

    /// Whether live node `node` is blocked with every remaining dependency
    /// on the dead chip — a stall that can never resolve, which is what the
    /// neighbor-sync watchdog detects.
    fn stalled_on_dead(&self, node: usize, dead: u32) -> bool {
        self.hot[node].chip != dead
            && self.phase[node] == Phase::Blocked
            && self.deps_left[node] > 0
            && self.nodes.nodes[node]
                .deps
                .iter()
                .all(|&dep| self.phase[dep] == Phase::Done || self.hot[dep].chip == dead)
    }

    /// Arms (or tightens) the failure-detection watchdog: a stall that
    /// began at `t` is declared a failure `sync_timeout` later. Only an
    /// earlier stall can move the detection time forward.
    fn stall_watchdog(&mut self, t: f64) {
        let expiry = match self.failure.as_mut() {
            Some(f) if f.fired && t + f.timeout < f.detect_at => {
                f.detect_at = t + f.timeout;
                f.detect_at
            }
            _ => return,
        };
        self.schedule(expiry, Event::FailTimeout);
    }

    fn ready(&mut self, node: usize, t: f64) {
        if self.node_frozen(node) {
            return; // the dead chip never starts new work
        }
        debug_assert_eq!(
            self.phase[node],
            Phase::Blocked,
            "node {node} readied twice"
        );
        if self.collect_nodes {
            self.ready_time[node] = t;
        }
        let acquired = match self.resource_state(node) {
            None => true,
            Some(rs) => {
                if rs.busy {
                    rs.queue.push_back(node);
                    false
                } else {
                    rs.busy = true;
                    true
                }
            }
        };
        if acquired {
            self.begin_sync(node, t);
        } else {
            self.phase[node] = Phase::Queued;
        }
    }

    fn begin_sync(&mut self, node: usize, t: f64) {
        if self.collect_nodes {
            self.acquire_time[node] = t;
        }
        let sync = self.hot[node].sync;
        if sync > 0.0 {
            self.phase[node] = Phase::Syncing;
            self.schedule(t + sync, Event::SyncDone(node));
        } else {
            self.begin_busy(node, t);
        }
    }

    fn begin_busy(&mut self, node: usize, t: f64) {
        let info = self.hot[node];
        let chip = info.chip as usize;
        self.busy_start_time[node] = t;
        self.buckets.comm_sync += info.sync;
        match (info.resource, info.category) {
            // The compute unit is exclusive, so at most one node per chip
            // is ever active here.
            (Resource::Compute, _) => self.compute_since[chip] = Some(t),
            (_, Category::CommTransfer) => {
                self.overlap_at_start[node] = self.compute_measure(chip, t);
            }
            _ => {}
        }
        let fabric_active = self.fabric.is_some() && info.fabric_bytes > 0.0;
        let mut parts = 0u8;
        if info.timer > 0.0 {
            parts += 1;
        }
        if info.flow_bytes > 0.0 {
            parts += 1;
        }
        if fabric_active {
            parts += 1;
        }
        if parts == 0 {
            self.phase[node] = Phase::Busy { parts_left: 0 };
            self.complete(node, t);
            return;
        }
        self.phase[node] = Phase::Busy { parts_left: parts };
        let (mut timer, flow_bytes, mut flow_cap, fabric_bytes) = (
            info.timer,
            info.flow_bytes,
            info.flow_cap,
            info.fabric_bytes,
        );
        if let Some(profile) = self.profile {
            // Variability hooks: a straggler chip stretches compute-unit
            // timers; a degraded (or in-outage) link lowers the rate cap
            // of its transfer flows. Outage edges later re-rate in-flight
            // flows via `Event::FaultEdge`.
            match info.resource {
                Resource::Compute => timer *= profile.compute_slowdown(chip),
                Resource::Link(dir) => flow_cap *= profile.link_multiplier_at(chip, dir, t),
                Resource::None => {}
            }
        }
        if timer > 0.0 {
            self.schedule(t + timer, Event::TimerDone(node));
        }
        if flow_bytes > 0.0 {
            self.hbm[chip].advance(t);
            let mut done = self.grab_done();
            self.hbm[chip].take_completed_into(&mut done);
            for &node_done in &done {
                self.part_done(node_done, t);
            }
            self.release_done(done);
            self.hbm[chip].add_flow(node, flow_bytes, flow_cap);
            self.reschedule_hbm(chip, t);
        }
        if fabric_active {
            let fabric = self.fabric.as_mut().expect("fabric_active checked");
            fabric.advance(t);
            let mut done = self.grab_done();
            self.fabric
                .as_mut()
                .expect("fabric_active checked")
                .take_completed_into(&mut done);
            for &node_done in &done {
                self.part_done(node_done, t);
            }
            self.release_done(done);
            let fabric = self.fabric.as_mut().expect("fabric_active checked");
            // Per-transfer injection stays capped at the link rate.
            fabric.add_flow(node, fabric_bytes, flow_cap / 2.0);
            self.reschedule_fabric(t);
        }
    }

    fn part_done(&mut self, node: usize, t: f64) {
        if self.node_frozen(node) {
            return; // in-flight work on the dead chip never finishes
        }
        if let Phase::Busy { parts_left } = self.phase[node] {
            if parts_left <= 1 {
                self.phase[node] = Phase::Busy { parts_left: 0 };
                self.complete(node, t);
            } else {
                self.phase[node] = Phase::Busy {
                    parts_left: parts_left - 1,
                };
            }
        } else {
            panic!(
                "part completion for node {node} in phase {:?}",
                self.phase[node]
            );
        }
    }

    fn complete(&mut self, node: usize, t: f64) {
        match self.phase[node] {
            Phase::Busy { .. } => {}
            ref p => panic!("completing node {node} in phase {p:?}"),
        }
        let busy_start = self.busy_start_time[node];
        let info = self.hot[node];
        let chip = info.chip as usize;
        let busy = t - busy_start;
        match info.category {
            Category::Compute => self.buckets.compute += busy,
            Category::Slice => self.buckets.slice += busy,
            Category::CommLaunch => self.buckets.comm_launch += busy,
            Category::CommTransfer => self.buckets.comm_transfer += busy,
        }
        match (info.resource, info.category) {
            (Resource::Compute, _) => {
                self.compute_cum[chip] += busy;
                self.compute_since[chip] = None;
            }
            (_, Category::CommTransfer) => {
                // Transfer time covered by the chip's compute-busy set over
                // this node's busy interval — communication the schedule
                // actually hid under computation.
                let hidden = self.compute_measure(chip, t) - self.overlap_at_start[node];
                self.overlapped += hidden.max(0.0);
            }
            _ => {}
        }
        if self.collect_spans && busy > 0.0 {
            self.spans.push(NodeSpan {
                op: OpId(self.nodes.nodes[node].op),
                chip: ChipId(chip),
                track: match info.resource {
                    Resource::Compute => SpanTrack::Compute,
                    Resource::Link(dir) => SpanTrack::Link(dir),
                    Resource::None => SpanTrack::Host,
                },
                kind: match info.category {
                    Category::Compute => SpanKind::Compute,
                    Category::Slice => SpanKind::Slice,
                    Category::CommLaunch => SpanKind::CommLaunch,
                    Category::CommTransfer => SpanKind::CommTransfer,
                },
                start: Duration::from_secs(busy_start),
                end: Duration::from_secs(t),
            });
        }
        self.phase[node] = Phase::Done;
        if self.collect_nodes {
            self.finish_seq.push(node);
        }
        self.completed += 1;
        if self.collect_finish {
            self.finish_time[node] = t;
        }
        self.makespan = self.makespan.max(t);

        let handoff = match info.resource {
            Resource::None => None,
            _ => {
                let rs = match info.resource {
                    Resource::Compute => &mut self.compute_units[chip],
                    Resource::Link(dir) => &mut self.links[chip][dir.index()],
                    Resource::None => unreachable!(),
                };
                rs.busy = false;
                let next = rs.queue.pop_front();
                if next.is_some() {
                    rs.busy = true;
                }
                next
            }
        };
        if let Some(next) = handoff {
            if self.collect_nodes {
                self.res_pred[next] = Some(node);
            }
            self.begin_sync(next, t);
        }

        let dead = match &self.failure {
            Some(f) if f.fired => Some(f.chip),
            _ => None,
        };
        let start = self.dep_starts[node] as usize;
        let end = self.dep_starts[node + 1] as usize;
        for i in start..end {
            let d = self.dep_targets[i] as usize;
            self.deps_left[d] -= 1;
            if self.deps_left[d] == 0 {
                self.ready(d, t);
            } else if let Some(dead) = dead {
                if self.stalled_on_dead(d, dead) {
                    self.stall_watchdog(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::GemmShape;
    use meshslice_mesh::{ChipId, CommAxis, LinkDir};

    fn cfg() -> SimConfig {
        SimConfig::tpu_v4()
    }

    #[test]
    fn empty_program_finishes_instantly() {
        let mesh = Torus2d::new(2, 2);
        let b = ProgramBuilder::new(&mesh);
        let report = Engine::new(mesh, cfg()).run(&b.build());
        assert_eq!(report.makespan().as_secs(), 0.0);
    }

    #[test]
    fn single_gemm_matches_compute_model() {
        let mesh = Torus2d::new(1, 1);
        let shape = GemmShape::new(4096, 4096, 4096);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(ChipId(0), shape, &[]);
        let report = Engine::new(mesh, cfg()).run(&b.build());
        let expect = cfg().gemm_flop_time(shape).as_secs() + cfg().t_kernel_launch.as_secs();
        // HBM streaming of a large square GeMM is far below the flop time,
        // so the makespan equals the compute model exactly.
        assert!((report.makespan().as_secs() - expect).abs() < 1e-12);
    }

    #[test]
    fn dependent_gemms_serialize() {
        let mesh = Torus2d::new(1, 1);
        let shape = GemmShape::new(1024, 1024, 1024);
        let mut b = ProgramBuilder::new(&mesh);
        let g1 = b.gemm(ChipId(0), shape, &[]);
        b.gemm(ChipId(0), shape, &[g1]);
        let report = Engine::new(mesh.clone(), cfg()).run(&b.build());

        let mut b2 = ProgramBuilder::new(&mesh);
        b2.gemm(ChipId(0), shape, &[]);
        let single = Engine::new(mesh, cfg()).run(&b2.build());
        let ratio = report.makespan().as_secs() / single.makespan().as_secs();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn independent_gemms_on_one_chip_also_serialize() {
        // The compute unit is exclusive.
        let mesh = Torus2d::new(1, 1);
        let shape = GemmShape::new(1024, 1024, 1024);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(ChipId(0), shape, &[]);
        b.gemm(ChipId(0), shape, &[]);
        let report = Engine::new(mesh, cfg()).run(&b.build());
        let one = cfg().gemm_flop_time(shape).as_secs() + cfg().t_kernel_launch.as_secs();
        assert!(report.makespan().as_secs() > 1.9 * one);
    }

    #[test]
    fn gemms_on_different_chips_run_in_parallel() {
        let mesh = Torus2d::new(1, 2);
        let shape = GemmShape::new(1024, 1024, 1024);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(ChipId(0), shape, &[]);
        b.gemm(ChipId(1), shape, &[]);
        let report = Engine::new(mesh, cfg()).run(&b.build());
        let one = cfg().gemm_flop_time(shape).as_secs() + cfg().t_kernel_launch.as_secs();
        assert!((report.makespan().as_secs() - one).abs() < 1e-9);
    }

    #[test]
    fn ring_all_gather_takes_p_minus_1_steps() {
        let mesh = Torus2d::new(8, 1);
        let shard: u64 = 1 << 20; // 1 MiB
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, shard, &[]);
        }
        let report = Engine::new(mesh, cfg()).run(&b.build());
        let c = cfg();
        let staging = shard as f64 / c.hbm_bandwidth;
        let expect = c.t_launch.as_secs()
            + 7.0 * (c.t_sync.as_secs() + staging + shard as f64 / c.link_bandwidth);
        assert!(
            (report.makespan().as_secs() - expect).abs() < 1e-9,
            "makespan {} vs {expect}",
            report.makespan().as_secs()
        );
    }

    #[test]
    fn bidirectional_all_gather_is_nearly_twice_as_fast() {
        let shard: u64 = 1 << 22;
        let run = |lanes: u8| {
            let mesh = Torus2d::new(8, 1);
            let mut b = ProgramBuilder::new(&mesh);
            let tag = b.next_tag();
            for chip in mesh.chips() {
                b.collective(
                    chip,
                    tag,
                    crate::CollectiveKind::AllGather,
                    CommAxis::InterRow,
                    shard,
                    lanes,
                    &[],
                );
            }
            Engine::new(mesh, cfg())
                .run(&b.build())
                .makespan()
                .as_secs()
        };
        let uni = run(1);
        let bi = run(2);
        assert!(bi < 0.6 * uni, "bi {bi} vs uni {uni}");
    }

    #[test]
    fn late_chip_delays_the_ring() {
        // One chip computes before joining the collective; the whole ring
        // finishes later than launch + steps because step k waits for the
        // upstream chip's step k-1.
        let mesh = Torus2d::new(4, 1);
        let shard: u64 = 1 << 20;
        let shape = GemmShape::new(2048, 2048, 2048);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            if chip == ChipId(0) {
                let g = b.gemm(chip, shape, &[]);
                b.all_gather(chip, tag, CommAxis::InterRow, shard, &[g]);
            } else {
                b.all_gather(chip, tag, CommAxis::InterRow, shard, &[]);
            }
        }
        let report = Engine::new(mesh, cfg()).run(&b.build());
        let c = cfg();
        let gemm_time = c.gemm_flop_time(shape).as_secs() + c.t_kernel_launch.as_secs();
        let collective =
            c.t_launch.as_secs() + 3.0 * (c.t_sync.as_secs() + shard as f64 / c.link_bandwidth);
        // Lower bound: the straggler's own timeline.
        assert!(report.makespan().as_secs() >= gemm_time + collective - 1e-9);
    }

    #[test]
    fn hbm_contention_stretches_transfers() {
        // A chip streaming a memory-bound GeMM while sending over a link
        // slows the link transfer only if HBM is saturated; with a narrow
        // HBM the makespan must exceed the uncontended link time.
        let narrow = SimConfig {
            hbm_bandwidth: 60e9, // below 2 x link demand + compute demand
            ..cfg()
        };
        let mesh = Torus2d::new(1, 1);
        let bytes: u64 = 1 << 26;
        let mut b = ProgramBuilder::new(&mesh);
        b.send_recv(ChipId(0), LinkDir::RowPlus, bytes, &[]);
        b.slice_copy(ChipId(0), bytes, &[]);
        let report = Engine::new(mesh.clone(), narrow.clone()).run(&b.build());

        let mut b2 = ProgramBuilder::new(&mesh);
        b2.send_recv(ChipId(0), LinkDir::RowPlus, bytes, &[]);
        let alone = Engine::new(mesh, narrow).run(&b2.build());
        assert!(report.makespan() > alone.makespan());
    }

    #[test]
    fn no_overlap_mode_serializes_comm_and_compute() {
        let mesh = Torus2d::new(4, 1);
        let shard: u64 = 8 << 20;
        let shape = GemmShape::new(4096, 4096, 4096);
        let build = || {
            let mut b = ProgramBuilder::new(&Torus2d::new(4, 1));
            let tag = 99;
            for chip in Torus2d::new(4, 1).chips() {
                b.all_gather(chip, tag, CommAxis::InterRow, shard, &[]);
                b.gemm(chip, shape, &[]);
            }
            b.build()
        };
        let overlapped = Engine::new(mesh.clone(), cfg()).run(&build());
        let serial_cfg = SimConfig {
            overlap_collectives: false,
            ..cfg()
        };
        let serial = Engine::new(mesh, serial_cfg).run(&build());
        assert!(serial.makespan() > overlapped.makespan());
        // Serial is at least the sum of both phases.
        let c = cfg();
        let comm =
            c.t_launch.as_secs() + 3.0 * (c.t_sync.as_secs() + shard as f64 / c.link_bandwidth);
        let comp = c.gemm_flop_time(shape).as_secs();
        assert!(serial.makespan().as_secs() >= comm + comp - 1e-9);
    }

    #[test]
    fn report_utilization_reflects_compute_fraction() {
        let mesh = Torus2d::new(1, 1);
        let shape = GemmShape::new(8192, 8192, 8192);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(ChipId(0), shape, &[]);
        let report = Engine::new(mesh, cfg()).run(&b.build());
        let util = report.flop_utilization();
        assert!(util > 0.8 && util <= 1.0, "utilization {util}");
    }

    #[test]
    fn shared_fabric_contention_slows_collectives() {
        // The same program under a physical torus, a generous fabric, and
        // a starved fabric: torus == generous < starved.
        let build = || {
            let mesh = Torus2d::new(4, 4);
            let mut b = ProgramBuilder::new(&mesh);
            let tag = b.next_tag();
            for chip in mesh.chips() {
                b.all_gather(chip, tag, CommAxis::InterRow, 8 << 20, &[]);
            }
            b.build()
        };
        let mesh = Torus2d::new(4, 4);
        let torus = Engine::new(mesh.clone(), cfg()).run(&build());
        // 16 chips x 1 active lane each: plenty of bisection.
        let generous = Engine::new(
            mesh.clone(),
            crate::SimConfig::gpu_logical_mesh(100e9 * 64.0),
        )
        .run(&build());
        let starved = Engine::new(mesh, crate::SimConfig::gpu_logical_mesh(100e9)).run(&build());
        assert!(
            (generous.makespan().as_secs() - torus.makespan().as_secs()).abs() < 1e-9,
            "generous fabric should match the torus"
        );
        assert!(
            starved.makespan().as_secs() > 2.0 * torus.makespan().as_secs(),
            "starved fabric {} vs torus {}",
            starved.makespan(),
            torus.makespan()
        );
    }

    #[test]
    fn fabric_contention_grows_with_concurrent_rings() {
        // Two concurrent collectives on different axes share the fabric;
        // on a physical torus they are independent.
        let build = || {
            let mesh = Torus2d::new(4, 4);
            let mut b = ProgramBuilder::new(&mesh);
            let t1 = b.next_tag();
            let t2 = b.next_tag();
            for chip in mesh.chips() {
                b.all_gather(chip, t1, CommAxis::InterRow, 8 << 20, &[]);
                b.all_gather(chip, t2, CommAxis::InterCol, 8 << 20, &[]);
            }
            b.build()
        };
        let mesh = Torus2d::new(4, 4);
        // Fabric sized to fit exactly one ring's worth of transfers.
        let fabric_cfg = crate::SimConfig::gpu_logical_mesh(16.0 * 50e9);
        let torus = Engine::new(mesh.clone(), cfg()).run(&build());
        let fabric = Engine::new(mesh, fabric_cfg).run(&build());
        assert!(fabric.makespan() > torus.makespan());
    }

    #[test]
    fn traced_run_reports_every_op_within_the_makespan() {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(512, 512, 512), &[ag]);
        }
        let program = b.build();
        let (report, traces) = Engine::new(mesh, cfg()).run_traced(&program);
        assert_eq!(traces.len(), program.len());
        for t in &traces {
            assert!(t.completed <= report.makespan());
        }
        // Each chip's GeMM completes after its AllGather.
        for pair in traces.chunks(2) {
            assert!(pair[1].completed >= pair[0].completed);
            assert_eq!(pair[0].chip, pair[1].chip);
        }
    }

    #[test]
    fn ideal_profile_is_bit_for_bit_identical() {
        let build = || {
            let mesh = Torus2d::new(4, 4);
            let mut b = ProgramBuilder::new(&mesh);
            let tag = b.next_tag();
            for chip in mesh.chips() {
                let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
                b.gemm(chip, GemmShape::new(1024, 1024, 1024), &[ag]);
            }
            b.build()
        };
        let mesh = Torus2d::new(4, 4);
        let baseline = Engine::new(mesh.clone(), cfg()).run(&build());
        let ideal_cfg = cfg().with_faults(crate::ClusterProfile::ideal(16));
        let ideal = Engine::new(mesh, ideal_cfg).run(&build());
        assert_eq!(baseline, ideal);
    }

    #[test]
    fn straggler_chip_stretches_the_makespan() {
        let build = || {
            let mesh = Torus2d::new(2, 2);
            let mut b = ProgramBuilder::new(&mesh);
            for chip in mesh.chips() {
                b.gemm(chip, GemmShape::new(2048, 2048, 2048), &[]);
            }
            b.build()
        };
        let mesh = Torus2d::new(2, 2);
        let baseline = Engine::new(mesh.clone(), cfg()).run(&build());
        let slow_cfg =
            cfg().with_faults(crate::ClusterProfile::ideal(4).with_compute_slowdown(3, 2.0));
        let slowed = Engine::new(mesh, slow_cfg).run(&build());
        let ratio = slowed.makespan().as_secs() / baseline.makespan().as_secs();
        // Compute dominates this program, so a 2x straggler on the
        // critical path roughly doubles the makespan.
        assert!(ratio > 1.9 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn degraded_link_slows_the_ring() {
        let build = || {
            let mesh = Torus2d::new(4, 1);
            let mut b = ProgramBuilder::new(&mesh);
            let tag = b.next_tag();
            for chip in mesh.chips() {
                b.all_gather(chip, tag, CommAxis::InterRow, 4 << 20, &[]);
            }
            b.build()
        };
        let mesh = Torus2d::new(4, 1);
        let baseline = Engine::new(mesh.clone(), cfg()).run(&build());
        // The ring flows forward over RowPlus; halving one chip's RowPlus
        // bandwidth gates every ring step behind the slow hop.
        let degraded_cfg = cfg().with_faults(crate::ClusterProfile::ideal(4).with_link_multiplier(
            1,
            LinkDir::RowPlus,
            0.5,
        ));
        let degraded = Engine::new(mesh, degraded_cfg).run(&build());
        assert!(
            degraded.makespan().as_secs() > 1.3 * baseline.makespan().as_secs(),
            "degraded {} vs baseline {}",
            degraded.makespan(),
            baseline.makespan()
        );
    }

    #[test]
    fn outage_rerates_an_in_flight_transfer() {
        // A single long transfer; an outage window in its middle drops the
        // link to 10% for a known interval. During the window the flow
        // falls behind by window * (1 - floor) * rate bytes, which it
        // recovers at the full rate afterwards — so the completion shifts
        // by exactly window * (1 - floor).
        let mesh = Torus2d::new(1, 1);
        let bytes: u64 = 65_000_000_000; // 1 s uncontended at 65 GB/s
        let build = || {
            let mut b = ProgramBuilder::new(&Torus2d::new(1, 1));
            b.send_recv(ChipId(0), LinkDir::RowPlus, bytes, &[]);
            b.build()
        };
        let baseline = Engine::new(mesh.clone(), cfg()).run(&build());
        let window = 0.05;
        let floor = 0.1;
        let start = baseline.makespan().as_secs() / 2.0;
        let outage_cfg = cfg().with_faults(crate::ClusterProfile::ideal(1).with_outage(
            0,
            LinkDir::RowPlus,
            crate::LinkOutage::new(start, start + window, floor),
        ));
        let outage = Engine::new(mesh, outage_cfg).run(&build());
        let expect = baseline.makespan().as_secs() + window * (1.0 - floor);
        assert!(
            (outage.makespan().as_secs() - expect).abs() < 1e-6,
            "outage makespan {} vs expected {expect}",
            outage.makespan().as_secs()
        );
    }

    #[test]
    fn outage_after_completion_changes_nothing() {
        let mesh = Torus2d::new(1, 1);
        let build = || {
            let mut b = ProgramBuilder::new(&Torus2d::new(1, 1));
            b.send_recv(ChipId(0), LinkDir::RowPlus, 1 << 20, &[]);
            b.build()
        };
        let baseline = Engine::new(mesh.clone(), cfg()).run(&build());
        let late = baseline.makespan().as_secs() + 1.0;
        let outage_cfg = cfg().with_faults(crate::ClusterProfile::ideal(1).with_outage(
            0,
            LinkDir::RowPlus,
            crate::LinkOutage::new(late, late + 0.1, 0.1),
        ));
        let unaffected = Engine::new(mesh, outage_cfg).run(&build());
        assert_eq!(baseline.makespan(), unaffected.makespan());
    }

    #[test]
    #[should_panic(expected = "fault profile covers")]
    fn profile_chip_count_mismatch_panics() {
        let mesh = Torus2d::new(2, 2);
        let b = ProgramBuilder::new(&mesh);
        let bad = cfg().with_faults(crate::ClusterProfile::ideal(3));
        Engine::new(mesh, bad).run(&b.build());
    }

    #[test]
    fn spans_cover_every_busy_interval() {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(512, 512, 512), &[ag]);
        }
        let program = b.build();
        let (report, spans) = Engine::new(mesh, cfg()).run_spans(&program);
        assert!(!spans.is_empty());
        for s in &spans {
            assert!(s.end > s.start);
            assert!(s.end <= report.makespan());
            assert!(s.op.index() < program.len());
        }
        // One compute span per chip (the GeMM), on the compute lane.
        let compute: Vec<_> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Compute)
            .collect();
        assert_eq!(compute.len(), 4);
        assert!(compute.iter().all(|s| s.track == SpanTrack::Compute));
        // Spans on one lane never overlap (exclusive resources).
        for pair in spans.windows(2) {
            if pair[0].chip == pair[1].chip && pair[0].track == pair[1].track {
                assert!(pair[1].start.as_secs() >= pair[0].end.as_secs() - 1e-12);
            }
        }
        // The traced and span-collecting runs agree on timing.
        let plain = Engine::new(Torus2d::new(2, 2), cfg()).run(&program);
        assert_eq!(plain, report);
    }

    #[test]
    fn overlap_is_zero_without_concurrent_compute() {
        // Pure communication: nothing to hide the transfers under.
        let mesh = Torus2d::new(4, 1);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
        }
        let report = Engine::new(mesh, cfg()).run(&b.build());
        assert_eq!(report.overlapped_comm(), Duration::ZERO);
        assert_eq!(report.overlap_efficiency(), 0.0);
    }

    #[test]
    fn overlap_counts_comm_hidden_under_compute() {
        // Independent AllGather + long GeMM per chip: the transfers run
        // entirely under the compute shadow.
        let mesh = Torus2d::new(4, 1);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(8192, 8192, 8192), &[]);
        }
        let report = Engine::new(mesh, cfg()).run(&b.build());
        let eff = report.overlap_efficiency();
        assert!(eff > 0.9 && eff <= 1.0, "overlap efficiency {eff}");
    }

    #[test]
    fn no_overlap_mode_hides_nothing() {
        let mesh = Torus2d::new(4, 1);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(2048, 2048, 2048), &[]);
        }
        let serial_cfg = SimConfig {
            overlap_collectives: false,
            ..cfg()
        };
        let report = Engine::new(mesh, serial_cfg).run(&b.build());
        assert!(report.totals().comm_transfer > Duration::ZERO);
        assert!(
            report.overlapped_comm().as_secs() < 1e-12,
            "serialized run hid {}",
            report.overlapped_comm()
        );
    }

    #[test]
    fn overlap_equals_span_intersection() {
        // The O(1)-per-node overlap accounting must agree with the
        // explicit geometry: intersect every transfer span with the
        // owning chip's compute-lane spans.
        let mesh = Torus2d::new(4, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        let tag2 = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, 2 << 20, &[]);
            b.gemm(chip, GemmShape::new(4096, 4096, 4096), &[]);
            b.reduce_scatter(chip, tag2, CommAxis::InterCol, 1 << 20, &[]);
        }
        let program = b.build();
        let (report, spans) = Engine::new(mesh, cfg()).run_spans(&program);
        let mut recomputed = 0.0;
        for t in spans
            .iter()
            .filter(|s| s.kind == SpanKind::CommTransfer && s.end > s.start)
        {
            for c in spans
                .iter()
                .filter(|s| s.chip == t.chip && s.track == SpanTrack::Compute)
            {
                let lo = t.start.as_secs().max(c.start.as_secs());
                let hi = t.end.as_secs().min(c.end.as_secs());
                recomputed += (hi - lo).max(0.0);
            }
        }
        assert!(report.overlapped_comm().as_secs() > 0.0);
        assert!(
            (report.overlapped_comm().as_secs() - recomputed).abs() < 1e-9,
            "engine {} vs spans {recomputed}",
            report.overlapped_comm().as_secs()
        );
    }

    #[test]
    fn instrumented_timeline_orders_every_node() {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(1024, 1024, 1024), &[ag]);
        }
        let program = b.build();
        let (report, _, timeline) = Engine::new(mesh, cfg()).run_instrumented(&program);
        assert!(!timeline.nodes.is_empty());
        assert_eq!(timeline.finish_seq.len(), timeline.nodes.len());
        let eps = 1e-12;
        for rec in &timeline.nodes {
            assert!(rec.ready <= rec.acquired);
            assert!(rec.acquired <= rec.busy_start);
            assert!(rec.busy_start <= rec.finish);
            assert!(rec.finish <= report.makespan());
            // The busy interval starts exactly after the sync delay.
            assert!(
                (rec.busy_start.as_secs() - rec.acquired.as_secs() - rec.sync.as_secs()).abs()
                    < 1e-9
            );
            // Ready means every dependency has finished.
            for &d in &rec.deps {
                assert!(timeline.nodes[d].finish.as_secs() <= rec.ready.as_secs() + eps);
            }
            // A resource predecessor releases the lane at acquisition time.
            if let Some(p) = rec.res_pred {
                assert_eq!(timeline.nodes[p].track, rec.track);
                assert_eq!(timeline.nodes[p].chip, rec.chip);
                assert_eq!(timeline.nodes[p].finish, rec.acquired);
            }
        }
        // finish_seq is a permutation ordered by completion time.
        let mut seen = vec![false; timeline.nodes.len()];
        let mut prev = Duration::ZERO;
        for &i in &timeline.finish_seq {
            assert!(!seen[i]);
            seen[i] = true;
            assert!(timeline.nodes[i].finish >= prev);
            prev = timeline.nodes[i].finish;
        }
        assert!(seen.iter().all(|&s| s));
        // The last completion is the makespan.
        assert_eq!(
            timeline.nodes[*timeline.finish_seq.last().unwrap()].finish,
            report.makespan()
        );
    }

    #[test]
    fn instrumented_run_matches_plain_run() {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(512, 512, 512), &[ag]);
        }
        let program = b.build();
        let plain = Engine::new(Torus2d::new(2, 2), cfg()).run(&program);
        let (report, spans, timeline) =
            Engine::new(Torus2d::new(2, 2), cfg()).run_instrumented(&program);
        assert_eq!(plain, report);
        assert!(!spans.is_empty());
        assert_eq!(timeline.nodes.len(), timeline.finish_seq.len());
    }

    #[test]
    fn deterministic_repeated_runs() {
        let build = || {
            let mesh = Torus2d::new(4, 4);
            let mut b = ProgramBuilder::new(&mesh);
            let tag_a = b.next_tag();
            let tag_b = b.next_tag();
            for chip in mesh.chips() {
                let ag1 = b.all_gather(chip, tag_a, CommAxis::InterRow, 1 << 20, &[]);
                let ag2 = b.all_gather(chip, tag_b, CommAxis::InterCol, 1 << 19, &[]);
                b.gemm(chip, GemmShape::new(512, 512, 512), &[ag1, ag2]);
            }
            b.build()
        };
        let mesh = Torus2d::new(4, 4);
        let r1 = Engine::new(mesh.clone(), cfg()).run(&build());
        let r2 = Engine::new(mesh, cfg()).run(&build());
        assert_eq!(r1.makespan(), r2.makespan());
        assert_eq!(r1.totals().comm_transfer, r2.totals().comm_transfer);
    }

    /// A 2x2 ring program whose chips depend on each other through an
    /// all-gather, so killing a chip stalls the survivors.
    fn ring_program(mesh: &Torus2d) -> Program {
        let mut b = ProgramBuilder::new(mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(1024, 1024, 1024), &[ag]);
        }
        b.build()
    }

    #[test]
    fn failure_after_completion_is_bit_for_bit_identical() {
        let mesh = Torus2d::new(2, 2);
        let program = ring_program(&mesh);
        let baseline = Engine::new(mesh.clone(), cfg()).run(&program);
        let late = crate::ChipFailure {
            chip: 0,
            at: baseline.makespan().as_secs() * 2.0,
        };
        let outcome = Engine::new(mesh, cfg()).run_with_failure(&program, late, 1e-3);
        match outcome {
            crate::FailureOutcome::Completed(report) => assert_eq!(report, baseline),
            crate::FailureOutcome::Aborted(info) => panic!("late failure aborted: {info:?}"),
        }
    }

    #[test]
    fn mid_run_chip_death_aborts_with_detection_latency() {
        let mesh = Torus2d::new(2, 2);
        let program = ring_program(&mesh);
        let baseline = Engine::new(mesh.clone(), cfg()).run(&program);
        let at = baseline.makespan().as_secs() * 0.25;
        let timeout = 1e-3;
        let outcome = Engine::new(mesh, cfg()).run_with_failure(
            &program,
            crate::ChipFailure { chip: 3, at },
            timeout,
        );
        let info = outcome.aborted().expect("mid-run failure must abort");
        assert_eq!(info.failure_time.as_secs(), at);
        // Detection happens only after a survivor stalls and its watchdog
        // expires: strictly after the failure plus the sync timeout floor.
        assert!(info.detected_at.as_secs() >= at + timeout);
        assert!(info.completed_nodes < info.total_nodes);
        // Detection must not wait forever: bounded by the failure-free
        // makespan plus the timeout.
        assert!(info.detected_at.as_secs() <= baseline.makespan().as_secs() + timeout + 1e-9);
    }

    #[test]
    fn failure_at_time_zero_detects_via_first_stall() {
        let mesh = Torus2d::new(2, 2);
        let program = ring_program(&mesh);
        let timeout = 5e-4;
        let outcome = Engine::new(mesh, cfg()).run_with_failure(
            &program,
            crate::ChipFailure { chip: 0, at: 0.0 },
            timeout,
        );
        let info = outcome.aborted().expect("immediate failure must abort");
        assert!(info.detected_at.as_secs() >= timeout);
        assert_eq!(info.failure_time.as_secs(), 0.0);
    }

    #[test]
    fn degraded_torus_profile_stretches_communication() {
        let mesh = Torus2d::new(4, 4);
        let program = ring_program(&mesh);
        let baseline = Engine::new(mesh.clone(), cfg()).run(&program);
        let degraded = crate::degraded_torus_profile(&mesh, 5);
        let slowed = Engine::new(mesh, cfg().with_faults(degraded)).run(&program);
        assert!(
            slowed.makespan() > baseline.makespan(),
            "degraded {} vs baseline {}",
            slowed.makespan(),
            baseline.makespan()
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn failure_on_missing_chip_panics() {
        let mesh = Torus2d::new(2, 2);
        let program = ring_program(&mesh);
        Engine::new(mesh, cfg()).run_with_failure(
            &program,
            crate::ChipFailure { chip: 9, at: 1.0 },
            1e-3,
        );
    }
}
