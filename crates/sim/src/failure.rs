//! Permanent-failure support types: mid-run chip death, abort/detection
//! outcomes, and the degraded-torus continuation profile.
//!
//! A [`ChipFailure`] delivered to [`Engine::run_with_failure`] freezes the
//! failed chip at its failure instant: every in-flight operation on the
//! chip stalls forever, and no new operation starts there. Live chips keep
//! running until one of them *stalls on the dead chip* — all of a blocked
//! node's remaining dependencies live on the failed chip — at which point
//! the per-ring-step neighbor-sync machinery notices: the sync that would
//! have released the node never arrives, and a watchdog declares the
//! failure detected one `sync_timeout` after the stall began. The engine
//! then aborts the run and reports an [`AbortInfo`]; checkpoint restore
//! and lost-work replay are modeled on top by `meshslice-recovery`.
//!
//! After a failure the cluster can continue on the surviving chips with
//! rings routed *around* the dead coordinate; [`degraded_torus_profile`]
//! prices that continuation as a [`ClusterProfile`] whose links touching
//! the dead chip run at the extra-hop bandwidth cost.
//!
//! [`Engine::run_with_failure`]: crate::Engine::run_with_failure

use meshslice_mesh::{ChipId, LinkDir, Torus2d};

use crate::perturb::ClusterProfile;
use crate::report::SimReport;
use crate::time::Duration;

/// A permanent chip failure to deliver mid-run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChipFailure {
    /// The chip that dies.
    pub chip: usize,
    /// Simulation time of the failure, seconds (finite, non-negative).
    pub at: f64,
}

/// Why and when a failed run stopped, from
/// [`Engine::run_with_failure`](crate::Engine::run_with_failure).
#[derive(Clone, Debug, PartialEq)]
pub struct AbortInfo {
    /// When the chip failed.
    pub failure_time: Duration,
    /// When a surviving chip's neighbor-sync watchdog declared the
    /// failure (always at least `failure_time`; the gap is the detection
    /// latency the recovery model charges).
    pub detected_at: Duration,
    /// Lowered nodes that completed before the abort.
    pub completed_nodes: usize,
    /// Total lowered nodes of the program.
    pub total_nodes: usize,
}

/// The result of a run that may be interrupted by a permanent failure.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum FailureOutcome {
    /// The program finished before the failure mattered; the report is
    /// bit-for-bit what a failure-free run produces.
    Completed(SimReport),
    /// The failure interrupted the program.
    Aborted(AbortInfo),
}

impl FailureOutcome {
    /// Whether the run was interrupted.
    pub fn is_aborted(&self) -> bool {
        matches!(self, FailureOutcome::Aborted(_))
    }

    /// The abort record, if the run was interrupted.
    pub fn aborted(&self) -> Option<&AbortInfo> {
        match self {
            FailureOutcome::Aborted(info) => Some(info),
            FailureOutcome::Completed(_) => None,
        }
    }

    /// The completed report, if the failure never bit.
    pub fn completed(&self) -> Option<&SimReport> {
        match self {
            FailureOutcome::Completed(report) => Some(report),
            FailureOutcome::Aborted(_) => None,
        }
    }
}

/// Bandwidth multiplier applied to links that must route around the dead
/// chip: traffic that used the direct link now takes two hops through a
/// neighboring ring, halving the effective bandwidth of the detour path.
pub const DETOUR_LINK_MULTIPLIER: f64 = 0.5;

/// The continuation profile of a torus that lost one chip: every link of
/// the dead coordinate, and each surviving neighbor's link pointing back
/// at it, runs at [`DETOUR_LINK_MULTIPLIER`] — the extra-hop cost of
/// rings re-formed around the hole.
///
/// The profile prices *degraded-mesh* execution; the redistribution of
/// the dead chip's shards is modeled functionally by
/// `meshslice-collectives`' degraded collectives.
///
/// # Panics
///
/// Panics if `dead_chip` is outside the mesh.
pub fn degraded_torus_profile(mesh: &Torus2d, dead_chip: usize) -> ClusterProfile {
    assert!(
        dead_chip < mesh.num_chips(),
        "dead chip {dead_chip} outside {}-chip mesh",
        mesh.num_chips()
    );
    let mut profile = ClusterProfile::ideal(mesh.num_chips());
    let coord = mesh.coord_of(ChipId(dead_chip));
    for dir in LinkDir::ALL {
        profile.set_link_multiplier(dead_chip, dir, DETOUR_LINK_MULTIPLIER);
        let neighbor = mesh.chip_at(mesh.neighbor(coord, dir));
        if neighbor.index() != dead_chip {
            profile.set_link_multiplier(neighbor.index(), dir.opposite(), DETOUR_LINK_MULTIPLIER);
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_profile_slows_links_around_the_dead_chip() {
        let mesh = Torus2d::new(2, 2);
        let p = degraded_torus_profile(&mesh, 1);
        assert!(!p.is_ideal());
        for dir in LinkDir::ALL {
            assert_eq!(p.base_link_multiplier(1, dir), DETOUR_LINK_MULTIPLIER);
        }
        // Chip 0 is chip 1's ColMinus neighbor: its ColPlus link points at
        // the dead chip.
        assert_eq!(
            p.base_link_multiplier(0, LinkDir::ColPlus),
            DETOUR_LINK_MULTIPLIER
        );
        // Chip 2 shares no link with chip 1's row/col detour on this 2x2
        // torus beyond the wrap duplicates, so its RowPlus (towards chip 0)
        // stays nominal.
        assert_eq!(p.base_link_multiplier(2, LinkDir::RowPlus), 1.0);
    }

    #[test]
    fn degenerate_ring_sizes_do_not_panic() {
        for (r, c) in [(1, 1), (1, 2), (2, 1), (1, 4)] {
            let mesh = Torus2d::new(r, c);
            let p = degraded_torus_profile(&mesh, 0);
            assert_eq!(p.num_chips(), r * c);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_mesh_dead_chip_panics() {
        degraded_torus_profile(&Torus2d::new(2, 2), 4);
    }
}
