//! Fluid-flow (processor-sharing) model of a chip's HBM bandwidth.
//!
//! The compute cores and the NIC of a chip share HBM (§4.1, Figure 8).
//! Every active transfer is a *flow* with a byte count and an individual
//! rate cap (e.g. a NIC flow cannot exceed its link bandwidth even when HBM
//! is idle). At any instant the HBM capacity is divided among active flows
//! by progressive filling ("water-filling"): flows are capped at the lesser
//! of their own cap and a fair share of the remaining capacity.
//!
//! The engine advances a channel lazily: whenever a flow is added or the
//! scheduled wake-up fires, [`HbmChannel::advance`] applies the piecewise-
//! constant rates since the previous update.

/// Bytes of slack within which a flow counts as finished (absorbs f64
/// rounding in rate × time products).
const COMPLETION_EPS: f64 = 1e-3;

#[derive(Clone, Debug)]
struct Flow {
    /// The engine-side identifier (an exec-graph node index).
    node: usize,
    remaining: f64,
    cap: f64,
    rate: f64,
}

/// One chip's shared HBM channel.
#[derive(Clone, Debug)]
pub(crate) struct HbmChannel {
    capacity: f64,
    flows: Vec<Flow>,
    last_update: f64,
    version: u64,
    /// Scratch index buffer for the water-filling sort, reused across
    /// [`recompute`](Self::recompute) calls to avoid per-event allocation.
    order: Vec<usize>,
}

impl HbmChannel {
    /// Creates a channel with the given capacity in bytes/s.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive.
    pub(crate) fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0, "HBM capacity must be positive");
        HbmChannel {
            capacity,
            flows: Vec::new(),
            last_update: 0.0,
            version: 0,
            order: Vec::new(),
        }
    }

    /// Whether any flow is active.
    #[cfg(test)]
    pub(crate) fn is_idle(&self) -> bool {
        self.flows.is_empty()
    }

    /// Returns the channel to its just-constructed state (no flows, time
    /// and version zero) with the given capacity, keeping the flow buffer's
    /// allocation. A reset channel behaves bit-for-bit like
    /// [`new`](Self::new).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not positive.
    pub(crate) fn reset(&mut self, capacity: f64) {
        assert!(capacity > 0.0, "HBM capacity must be positive");
        self.capacity = capacity;
        self.flows.clear();
        self.last_update = 0.0;
        self.version = 0;
    }

    /// The wake-up version, bumped on every reconfiguration. Events carry
    /// the version they were scheduled with; stale events are ignored.
    pub(crate) fn version(&self) -> u64 {
        self.version
    }

    /// Applies the current rates over `now − last_update`.
    ///
    /// # Panics
    ///
    /// Panics if time moves backwards by more than rounding error.
    pub(crate) fn advance(&mut self, now: f64) {
        let dt = now - self.last_update;
        assert!(dt > -1e-12, "HBM channel time went backwards by {dt}");
        let dt = dt.max(0.0);
        for f in &mut self.flows {
            f.remaining = (f.remaining - f.rate * dt).max(0.0);
        }
        self.last_update = now;
    }

    /// Adds a flow of `bytes` with individual rate cap `cap`, starting now.
    ///
    /// Callers must [`advance`](Self::advance) to `now` first (the engine
    /// helper does). Returns the new version.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` or `cap` is not positive.
    pub(crate) fn add_flow(&mut self, node: usize, bytes: f64, cap: f64) -> u64 {
        assert!(bytes > 0.0, "flow must carry bytes");
        assert!(cap > 0.0, "flow cap must be positive");
        self.flows.push(Flow {
            node,
            remaining: bytes,
            cap,
            rate: 0.0,
        });
        self.recompute();
        self.version += 1;
        self.version
    }

    /// Removes finished flows (remaining ≤ epsilon) and appends their node
    /// ids to `done` (which the caller should pass in empty); recomputes
    /// rates if any were removed. Returns the new version.
    pub(crate) fn take_completed_into(&mut self, done: &mut Vec<usize>) -> u64 {
        let before = done.len();
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].remaining <= COMPLETION_EPS {
                done.push(self.flows.swap_remove(i).node);
            } else {
                i += 1;
            }
        }
        if done.len() > before {
            self.recompute();
            self.version += 1;
        }
        // Deterministic completion order regardless of swap_remove.
        done[before..].sort_unstable();
        self.version
    }

    /// [`take_completed_into`](Self::take_completed_into) returning a fresh
    /// `Vec` (test convenience).
    #[cfg(test)]
    pub(crate) fn take_completed(&mut self) -> (Vec<usize>, u64) {
        let mut done = Vec::new();
        let version = self.take_completed_into(&mut done);
        (done, version)
    }

    /// Re-rates in-flight flows: `new_cap` maps a node id to its new
    /// individual cap (or `None` to leave the flow untouched). Recomputes
    /// rates and bumps the version only if some cap actually changed, so
    /// calling this with identity caps is a no-op.
    ///
    /// Callers must [`advance`](Self::advance) to `now` first, exactly as
    /// for [`add_flow`](Self::add_flow).
    pub(crate) fn retune_caps(&mut self, mut new_cap: impl FnMut(usize) -> Option<f64>) -> u64 {
        let mut changed = false;
        for f in &mut self.flows {
            if let Some(cap) = new_cap(f.node) {
                assert!(cap > 0.0, "flow cap must be positive");
                if cap != f.cap {
                    f.cap = cap;
                    changed = true;
                }
            }
        }
        if changed {
            self.recompute();
            self.version += 1;
        }
        self.version
    }

    /// Seconds until the next flow completes at current rates, if any flow
    /// is active.
    pub(crate) fn next_completion_in(&self) -> Option<f64> {
        self.flows
            .iter()
            .map(|f| {
                debug_assert!(f.rate > 0.0, "active flow with zero rate");
                (f.remaining / f.rate).max(0.0)
            })
            .min_by(f64::total_cmp)
    }

    /// Water-filling rate allocation: each flow gets
    /// `min(cap, fair share of remaining capacity)`, with the slack of
    /// cap-limited flows redistributed to the others.
    fn recompute(&mut self) {
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        order.extend(0..self.flows.len());
        order.sort_by(|&a, &b| {
            self.flows[a]
                .cap
                .total_cmp(&self.flows[b].cap)
                .then(self.flows[a].node.cmp(&self.flows[b].node))
        });
        let mut remaining_capacity = self.capacity;
        let mut left = order.len();
        for &idx in &order {
            let fair = remaining_capacity / left as f64;
            let rate = self.flows[idx].cap.min(fair);
            self.flows[idx].rate = rate;
            remaining_capacity -= rate;
            left -= 1;
        }
        self.order = order;
    }

    #[cfg(test)]
    fn rate_of(&self, node: usize) -> f64 {
        self.flows
            .iter()
            .find(|f| f.node == node)
            .map(|f| f.rate)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_runs_at_its_cap() {
        let mut ch = HbmChannel::new(100.0);
        ch.add_flow(0, 50.0, 10.0);
        assert_eq!(ch.rate_of(0), 10.0);
        assert_eq!(ch.next_completion_in(), Some(5.0));
    }

    #[test]
    fn uncapped_flows_share_fairly() {
        let mut ch = HbmChannel::new(100.0);
        ch.add_flow(0, 100.0, 1000.0);
        ch.add_flow(1, 100.0, 1000.0);
        assert_eq!(ch.rate_of(0), 50.0);
        assert_eq!(ch.rate_of(1), 50.0);
    }

    #[test]
    fn capped_flow_slack_goes_to_others() {
        let mut ch = HbmChannel::new(100.0);
        ch.add_flow(0, 100.0, 20.0); // NIC-like, capped low
        ch.add_flow(1, 100.0, 1000.0); // compute-like
        assert_eq!(ch.rate_of(0), 20.0);
        assert_eq!(ch.rate_of(1), 80.0);
    }

    #[test]
    fn advance_reduces_remaining_and_completes() {
        let mut ch = HbmChannel::new(100.0);
        ch.add_flow(7, 100.0, 50.0);
        let dt = ch.next_completion_in().unwrap();
        assert_eq!(dt, 2.0);
        ch.advance(2.0);
        let (done, _) = ch.take_completed();
        assert_eq!(done, vec![7]);
        assert!(ch.is_idle());
    }

    #[test]
    fn contention_stretches_completion() {
        let mut ch = HbmChannel::new(100.0);
        ch.add_flow(0, 100.0, 100.0);
        // Alone: 1s. Add a competitor at t=0: both at 50 B/s -> 2s.
        ch.add_flow(1, 100.0, 100.0);
        assert_eq!(ch.next_completion_in(), Some(2.0));
        ch.advance(2.0);
        let (done, _) = ch.take_completed();
        assert_eq!(done, vec![0, 1]);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let mut ch = HbmChannel::new(100.0);
        ch.add_flow(0, 50.0, 100.0);
        ch.add_flow(1, 200.0, 100.0);
        // Both run at 50 B/s. Flow 0 finishes at t=1.
        ch.advance(1.0);
        let (done, _) = ch.take_completed();
        assert_eq!(done, vec![0]);
        // Flow 1 has 150 left and now runs at its cap of 100.
        assert_eq!(ch.rate_of(1), 100.0);
        assert_eq!(ch.next_completion_in(), Some(1.5));
    }

    #[test]
    fn version_changes_on_reconfiguration() {
        let mut ch = HbmChannel::new(10.0);
        let v1 = ch.add_flow(0, 10.0, 10.0);
        let v2 = ch.add_flow(1, 10.0, 10.0);
        assert_ne!(v1, v2);
        assert_eq!(ch.version(), v2);
    }

    #[test]
    fn overlapping_demand_beyond_capacity_saturates() {
        let mut ch = HbmChannel::new(90.0);
        ch.add_flow(0, 10.0, 50.0);
        ch.add_flow(1, 10.0, 50.0);
        ch.add_flow(2, 10.0, 50.0);
        let total: f64 = [0, 1, 2].iter().map(|&n| ch.rate_of(n)).sum();
        assert!((total - 90.0).abs() < 1e-9);
        assert_eq!(ch.rate_of(0), 30.0);
    }

    #[test]
    #[should_panic(expected = "must carry bytes")]
    fn zero_byte_flow_panics() {
        HbmChannel::new(10.0).add_flow(0, 0.0, 1.0);
    }

    #[test]
    fn retune_caps_rerates_in_flight_flows() {
        let mut ch = HbmChannel::new(100.0);
        let v0 = ch.add_flow(0, 100.0, 50.0);
        assert_eq!(ch.next_completion_in(), Some(2.0));
        // Halfway through, the link degrades to a tenth of its rate.
        ch.advance(1.0);
        let v1 = ch.retune_caps(|node| (node == 0).then_some(5.0));
        assert_ne!(v0, v1, "cap change must bump the version");
        assert_eq!(ch.rate_of(0), 5.0);
        assert_eq!(ch.next_completion_in(), Some(10.0));
        // Identity retune: no version bump.
        let v2 = ch.retune_caps(|node| (node == 0).then_some(5.0));
        assert_eq!(v1, v2);
    }
}
