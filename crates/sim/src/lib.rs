//! Discrete-event simulator of a TPUv4-like 2D-torus accelerator cluster.
//!
//! This crate is the timing substrate of the MeshSlice reproduction. It
//! models the architecture of the paper's Figure 8:
//!
//! - per-chip **compute engine** (systolic-array GeMM with an efficiency
//!   model and kernel-launch overhead),
//! - a **NIC with four ICI link controllers** (one per [`LinkDir`]), each an
//!   exclusive, FIFO resource,
//! - **HBM** shared between the compute engine and the NIC, modeled as a
//!   fluid (processor-sharing) bandwidth resource — the only performance
//!   interference between cores and NIC, exactly as in §4.1 of the paper,
//! - ring collectives lowered to per-chip, per-step transfers whose step
//!   *k* depends on the upstream neighbor's step *k−1*, reproducing the
//!   synchronized ring of Figure 3 without a global barrier.
//!
//! The distributed GeMM algorithms (`meshslice-gemm`) build a [`Program`]
//! — a per-chip DAG of compute, slicing, and communication operations —
//! and [`Engine::run`] executes it, returning a [`SimReport`] with the
//! makespan and a launch/sync/transfer/compute time breakdown (the
//! categories of the paper's Figure 10).
//!
//! [`LinkDir`]: meshslice_mesh::LinkDir
//!
//! # Example
//!
//! ```
//! use meshslice_mesh::Torus2d;
//! use meshslice_sim::{Engine, GemmShape, ProgramBuilder, SimConfig};
//!
//! let mesh = Torus2d::new(2, 2);
//! let mut prog = ProgramBuilder::new(&mesh);
//! for chip in mesh.chips() {
//!     prog.gemm(chip, GemmShape::new(256, 256, 256), &[]);
//! }
//! let report = Engine::new(mesh, SimConfig::tpu_v4()).run(&prog.build());
//! assert!(report.makespan().as_secs() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod failure;
mod hbm;
mod lower;
mod perturb;
mod pod;
mod program;
mod report;
mod time;

pub use config::{NetworkModel, SimConfig};
pub use engine::{
    Engine, LoweredProgram, NodeRecord, NodeSpan, OpTrace, RunScratch, RunTimeline, SpanKind,
    SpanTrack,
};
pub use failure::{
    degraded_torus_profile, AbortInfo, ChipFailure, FailureOutcome, DETOUR_LINK_MULTIPLIER,
};
pub use perturb::{ClusterProfile, LinkOutage};
pub use pod::{PlaneAssignment, PodProfile};
pub use program::{CollectiveKind, CycleError, OpId, OpKind, Program, ProgramBuilder};
pub use report::{SimReport, TimeBreakdown};
pub use time::{Duration, Time};

// Re-exported so programs can be built without importing the tensor crate.
pub use meshslice_tensor::GemmShape;
