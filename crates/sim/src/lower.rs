//! Lowering a [`Program`] to the executable node graph.
//!
//! Every [`OpKind`] expands to one or more *nodes*. A node optionally holds
//! a resource (the chip's compute unit or one of its four link directions),
//! pays a synchronization delay, and then runs a fixed timer and/or an HBM
//! flow in parallel; it completes when both finish.
//!
//! Ring collectives expand into a launch node followed by `P − 1` step
//! nodes per lane. Step `k` of a chip depends on its own step `k − 1` *and*
//! on the upstream neighbor's step `k − 1` — the data it forwards — which
//! reproduces the neighbor-synchronized ring of the paper's Figure 3
//! without any global barrier.

use std::collections::HashMap;

use meshslice_mesh::{CommAxis, LinkDir, Torus2d};

use crate::config::{NetworkModel, SimConfig};
use crate::program::{OpKind, Program};

/// The exclusive resource a node occupies while running.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Resource {
    /// No resource (launch overheads, join points).
    None,
    /// The chip's compute unit (GeMMs and slicing kernels).
    Compute,
    /// One ICI link direction of the chip.
    Link(LinkDir),
}

/// Which report bucket a node's busy time lands in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Category {
    Compute,
    Slice,
    CommLaunch,
    CommTransfer,
}

/// One executable node.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub(crate) chip: usize,
    /// Index of the program op this node was lowered from (set by
    /// [`lower`] after each op expands; used for trace-span attribution).
    pub(crate) op: usize,
    pub(crate) resource: Resource,
    /// Synchronization delay after acquiring the resource, attributed to
    /// the `comm_sync` bucket.
    pub(crate) sync: f64,
    /// Fixed busy duration (runs in parallel with the flow).
    pub(crate) timer: f64,
    /// HBM flow bytes (0 = no flow).
    pub(crate) flow_bytes: f64,
    /// Individual rate cap of the flow.
    pub(crate) flow_cap: f64,
    /// Wire bytes drawn from the shared fabric (0 = none / physical
    /// torus). Only link transfers set this, and only under
    /// [`NetworkModel::SharedFabric`].
    pub(crate) fabric_bytes: f64,
    pub(crate) category: Category,
    pub(crate) deps: Vec<usize>,
}

/// The lowered graph.
#[derive(Clone, Debug)]
pub(crate) struct ExecGraph {
    pub(crate) nodes: Vec<Node>,
    /// Exit node of each program op (completion of this node completes
    /// the op), indexed by op id.
    pub(crate) op_exit: Vec<usize>,
}

struct Lowerer<'a> {
    cfg: &'a SimConfig,
    nodes: Vec<Node>,
    /// Last node of the previously lowered op per chip, for the
    /// no-overlap serialization mode.
    chip_chain: Vec<Option<usize>>,
    /// Last node issued on each (chip, link direction). Real ICI channels
    /// process operations in issue order, so every link op depends on its
    /// predecessor on the same link — without this, the ring steps of a
    /// later collective would overtake the remaining steps of an earlier
    /// one in the link queue and destroy software pipelining.
    link_chain: Vec<[Option<usize>; 4]>,
}

impl<'a> Lowerer<'a> {
    fn push(&mut self, mut node: Node) -> usize {
        // Link chaining can duplicate an existing dependency edge.
        node.deps.sort_unstable();
        node.deps.dedup();
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn zero_node(&mut self, chip: usize, deps: Vec<usize>) -> usize {
        self.push(Node {
            chip,
            op: usize::MAX,
            resource: Resource::None,
            sync: 0.0,
            timer: 0.0,
            flow_bytes: 0.0,
            flow_cap: 0.0,
            fabric_bytes: 0.0,
            category: Category::CommLaunch,
            deps,
        })
    }

    fn launch_node(&mut self, chip: usize, deps: Vec<usize>) -> usize {
        let t = self.cfg.t_launch.as_secs();
        self.push(Node {
            chip,
            op: usize::MAX,
            resource: Resource::None,
            sync: 0.0,
            timer: t,
            flow_bytes: 0.0,
            flow_cap: 0.0,
            fabric_bytes: 0.0,
            category: Category::CommLaunch,
            deps,
        })
    }

    fn link_step(&mut self, chip: usize, dir: LinkDir, bytes: u64, mut deps: Vec<usize>) -> usize {
        if let Some(prev) = self.link_chain[chip][dir.index()] {
            deps.push(prev);
        }
        // Before the synchronized send, the NIC stages the outgoing
        // sub-shard from HBM into its buffer (store-and-forward at chip
        // granularity) — a second-order cost the analytical model of
        // §3.2.2 does not include.
        let staging = bytes as f64 / self.cfg.hbm_bandwidth;
        // A ring step reads the outgoing shard from HBM and writes the
        // incoming one, so the HBM demand is twice the step bytes; the
        // flow cap of twice the link bandwidth makes an uncontended step
        // take exactly bytes / link_bw.
        let fabric_bytes = match self.cfg.network {
            NetworkModel::PhysicalTorus => 0.0,
            NetworkModel::SharedFabric { .. } => bytes as f64,
        };
        let n = self.push(Node {
            chip,
            op: usize::MAX,
            resource: Resource::Link(dir),
            sync: self.cfg.t_sync.as_secs() + staging,
            timer: 0.0,
            flow_bytes: 2.0 * bytes as f64,
            flow_cap: 2.0 * self.cfg.link_bandwidth,
            fabric_bytes,
            category: Category::CommTransfer,
            deps,
        });
        self.link_chain[chip][dir.index()] = Some(n);
        n
    }

    /// Lowers a collective for one chip; returns (entry node, exit node)
    /// and records the per-lane step nodes for cross-chip wiring.
    #[allow(clippy::too_many_arguments)]
    fn collective(
        &mut self,
        chip: usize,
        axis: CommAxis,
        ring_len: usize,
        shard_bytes: u64,
        lanes: u8,
        deps: Vec<usize>,
        steps_out: &mut Vec<Vec<usize>>,
    ) -> (usize, usize) {
        if ring_len <= 1 {
            let n = self.zero_node(chip, deps);
            steps_out.clear();
            return (n, n);
        }
        let launch = self.launch_node(chip, deps);
        let mut lane_finals = Vec::new();
        steps_out.clear();
        for lane in 0..lanes {
            let dir = if lane == 0 {
                axis.forward_link()
            } else {
                axis.backward_link()
            };
            let lane_bytes = shard_bytes / lanes as u64;
            let mut chain = Vec::with_capacity(ring_len - 1);
            let mut prev = launch;
            for _step in 0..ring_len - 1 {
                let n = self.link_step(chip, dir, lane_bytes.max(1), vec![prev]);
                chain.push(n);
                prev = n;
            }
            lane_finals.push(prev);
            steps_out.push(chain);
        }
        let exit = if lane_finals.len() == 1 {
            lane_finals[0]
        } else {
            self.zero_node(chip, lane_finals)
        };
        (launch, exit)
    }
}

/// Per-collective bookkeeping for cross-chip wiring.
#[derive(Default)]
struct CollectiveGroup {
    /// chip -> per-lane step node chains.
    steps: HashMap<usize, Vec<Vec<usize>>>,
    axis: Option<CommAxis>,
}

pub(crate) fn lower(mesh: &Torus2d, cfg: &SimConfig, program: &Program) -> ExecGraph {
    let mut lw = Lowerer {
        cfg,
        // Every op lowers to a bounded handful of nodes per chip it
        // touches; reserving a generous estimate up front avoids the
        // doubling reallocations of a ~100 B/node vector that otherwise
        // dominate lowering of six-figure-node graphs.
        nodes: Vec::with_capacity(16 * program.ops().len()),
        chip_chain: vec![None; mesh.num_chips()],
        link_chain: vec![[None; 4]; mesh.num_chips()],
    };
    // op index -> (entry node, exit node)
    let mut op_nodes: Vec<(usize, usize)> = Vec::with_capacity(program.ops().len());
    let mut groups: HashMap<u64, CollectiveGroup> = HashMap::new();

    for (op_idx, op) in program.ops().iter().enumerate() {
        let chip = op.chip.index();
        let node_start = lw.nodes.len();
        let mut deps: Vec<usize> = op.deps.iter().map(|d| op_nodes[d.index()].1).collect();
        if !cfg.overlap_collectives {
            // Real-hardware mode (§5.3): the compiler serializes every
            // chip's operations in program order.
            if let Some(prev) = lw.chip_chain[chip] {
                deps.push(prev);
            }
        }
        let entry_exit = match &op.kind {
            OpKind::Gemm { shape } => {
                let timer = cfg.t_kernel_launch.as_secs() + cfg.gemm_flop_time(*shape).as_secs();
                let n = lw.push(Node {
                    chip,
                    op: usize::MAX,
                    resource: Resource::Compute,
                    sync: 0.0,
                    timer,
                    flow_bytes: cfg.gemm_hbm_bytes(*shape) as f64,
                    flow_cap: cfg.hbm_bandwidth,
                    fabric_bytes: 0.0,
                    category: Category::Compute,
                    deps,
                });
                (n, n)
            }
            OpKind::SliceCopy { bytes } => {
                let n = lw.push(Node {
                    chip,
                    op: usize::MAX,
                    resource: Resource::Compute,
                    sync: 0.0,
                    timer: cfg.t_kernel_launch.as_secs(),
                    flow_bytes: (2 * bytes.max(&1)) as f64,
                    flow_cap: cfg.hbm_bandwidth,
                    fabric_bytes: 0.0,
                    category: Category::Slice,
                    deps,
                });
                (n, n)
            }
            OpKind::SendRecv { dir, bytes } => {
                let launch = lw.launch_node(chip, deps);
                let step = lw.link_step(chip, *dir, (*bytes).max(1), vec![launch]);
                (launch, step)
            }
            OpKind::Collective {
                axis,
                tag,
                shard_bytes,
                lanes,
                kind: _,
            } => {
                let ring_len = mesh.ring_len(*axis);
                let mut steps = Vec::new();
                let (entry, exit) = lw.collective(
                    chip,
                    *axis,
                    ring_len,
                    *shard_bytes,
                    *lanes,
                    deps,
                    &mut steps,
                );
                let group = groups.entry(*tag).or_default();
                group.axis = Some(*axis);
                group.steps.insert(chip, steps);
                (entry, exit)
            }
            OpKind::PipelinedBcast { axis, bytes } => {
                let p = mesh.ring_len(*axis);
                if p <= 1 {
                    let n = lw.zero_node(chip, deps);
                    (n, n)
                } else {
                    let d = cfg.summa_packets.max(1);
                    // Unidirectional packet streaming, exactly Figure 3
                    // (left): P + D - 2 stages with P - 2 bubbles per link.
                    let stages = (p + d - 2) as f64;
                    let launch = lw.launch_node(chip, deps);
                    // One node occupies the link for the whole pipelined
                    // stream: `stages` synchronizations plus `stages`
                    // packet transfers (bubbles included — each link is
                    // idle for P − 2 of the stages, which is exactly the
                    // inefficiency of Figure 3, left).
                    let flow_bytes = 2.0 * *bytes as f64 * stages / d as f64;
                    let dir = axis.forward_link();
                    let mut node_deps = vec![launch];
                    if let Some(prev) = lw.link_chain[chip][dir.index()] {
                        node_deps.push(prev);
                    }
                    let fabric = match cfg.network {
                        NetworkModel::PhysicalTorus => 0.0,
                        NetworkModel::SharedFabric { .. } => *bytes as f64,
                    };
                    let n = lw.push(Node {
                        chip,
                        op: usize::MAX,
                        resource: Resource::Link(dir),
                        sync: stages * cfg.t_sync.as_secs(),
                        timer: 0.0,
                        flow_bytes: flow_bytes.max(1.0),
                        flow_cap: 2.0 * cfg.link_bandwidth,
                        fabric_bytes: fabric,
                        category: Category::CommTransfer,
                        deps: node_deps,
                    });
                    lw.link_chain[chip][dir.index()] = Some(n);
                    (launch, n)
                }
            }
        };
        for node in node_start..lw.nodes.len() {
            lw.nodes[node].op = op_idx;
        }
        lw.chip_chain[chip] = Some(entry_exit.1);
        op_nodes.push(entry_exit);
    }

    // Cross-chip wiring: step k depends on the upstream neighbor's step
    // k − 1 within the same collective and lane.
    for group in groups.values() {
        let axis = group.axis.expect("group has an axis");
        for (&chip, lanes) in &group.steps {
            if lanes.is_empty() {
                continue; // singleton ring
            }
            let ring = mesh.ring_through(mesh.coord_of(meshslice_mesh::ChipId(chip)), axis);
            for (lane_idx, chain) in lanes.iter().enumerate() {
                // Lane 0 flows forward: this chip receives from `prev`.
                // Lane 1 flows backward: it receives from `next`.
                let upstream = if lane_idx == 0 {
                    ring.prev(meshslice_mesh::ChipId(chip))
                } else {
                    ring.next(meshslice_mesh::ChipId(chip))
                };
                let upstream_chain = &group.steps[&upstream.index()][lane_idx];
                for (k, &node) in chain.iter().enumerate().skip(1) {
                    let dep = upstream_chain[k - 1];
                    lw.nodes[node].deps.push(dep);
                }
            }
        }
    }

    ExecGraph {
        nodes: lw.nodes,
        op_exit: op_nodes.iter().map(|&(_, exit)| exit).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CollectiveKind, ProgramBuilder};
    use meshslice_mesh::ChipId;
    use meshslice_tensor::GemmShape;

    #[test]
    fn gemm_lowers_to_one_compute_node() {
        let mesh = Torus2d::new(1, 1);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(ChipId(0), GemmShape::new(256, 256, 256), &[]);
        let g = lower(&mesh, &SimConfig::tpu_v4(), &b.build());
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].resource, Resource::Compute);
        assert!(g.nodes[0].timer > 0.0);
        assert!(g.nodes[0].flow_bytes > 0.0);
    }

    #[test]
    fn collective_lowers_to_launch_plus_ring_steps() {
        let mesh = Torus2d::new(4, 1);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, 4096, &[]);
        }
        let g = lower(&mesh, &SimConfig::tpu_v4(), &b.build());
        // Per chip: 1 launch + 3 steps.
        assert_eq!(g.nodes.len(), 4 * 4);
        let steps: Vec<_> = g
            .nodes
            .iter()
            .filter(|n| matches!(n.resource, Resource::Link(_)))
            .collect();
        assert_eq!(steps.len(), 12);
        // Step nodes after the first must have a cross-chip dependency.
        let two_deps = g.nodes.iter().filter(|n| n.deps.len() == 2).count();
        assert_eq!(two_deps, 8); // steps 1 and 2 on each of 4 chips
    }

    #[test]
    fn singleton_ring_collective_is_free() {
        let mesh = Torus2d::new(1, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            // InterRow rings have length 1 on a 1-row mesh.
            b.all_gather(chip, tag, CommAxis::InterRow, 4096, &[]);
        }
        let g = lower(&mesh, &SimConfig::tpu_v4(), &b.build());
        assert_eq!(g.nodes.len(), 2);
        assert!(g
            .nodes
            .iter()
            .all(|n| n.timer == 0.0 && n.flow_bytes == 0.0));
    }

    #[test]
    fn two_lane_collective_splits_bytes() {
        let mesh = Torus2d::new(4, 1);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.collective(
                chip,
                tag,
                CollectiveKind::AllGather,
                CommAxis::InterRow,
                4096,
                2,
                &[],
            );
        }
        let g = lower(&mesh, &SimConfig::tpu_v4(), &b.build());
        let step_bytes: Vec<_> = g
            .nodes
            .iter()
            .filter(|n| matches!(n.resource, Resource::Link(_)))
            .map(|n| n.flow_bytes)
            .collect();
        // 2 lanes x 3 steps per chip, each carrying half the shard
        // (flow bytes are 2x the wire bytes).
        assert_eq!(step_bytes.len(), 4 * 6);
        assert!(step_bytes.iter().all(|&b| b == 2.0 * 2048.0));
        // Joins: one per chip.
        let joins = g
            .nodes
            .iter()
            .filter(|n| n.resource == Resource::None && n.deps.len() == 2)
            .count();
        assert_eq!(joins, 4);
    }

    #[test]
    fn no_overlap_mode_serializes_per_chip() {
        let mesh = Torus2d::new(1, 1);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(ChipId(0), GemmShape::new(8, 8, 8), &[]);
        b.gemm(ChipId(0), GemmShape::new(8, 8, 8), &[]);
        let cfg = SimConfig {
            overlap_collectives: false,
            ..SimConfig::tpu_v4()
        };
        let g = lower(&mesh, &cfg, &b.build());
        assert_eq!(g.nodes[1].deps, vec![0]);
    }

    #[test]
    fn pipelined_bcast_carries_bubble_overhead() {
        let mesh = Torus2d::new(8, 1);
        let mut b = ProgramBuilder::new(&mesh);
        for chip in mesh.chips() {
            b.pipelined_bcast(chip, CommAxis::InterRow, 16_000, &[]);
        }
        let cfg = SimConfig::tpu_v4();
        let g = lower(&mesh, &cfg, &b.build());
        let step = g
            .nodes
            .iter()
            .find(|n| matches!(n.resource, Resource::Link(_)))
            .unwrap();
        // stages = P + D - 2 = 8 + 16 - 2 = 22; sync = 22 * t_sync.
        assert!((step.sync - 22.0 * cfg.t_sync.as_secs()).abs() < 1e-12);
        // flow bytes = 2 * bytes * stages / D > 2 * bytes (bubbles).
        assert!(step.flow_bytes > 2.0 * 16_000.0);
    }
}
