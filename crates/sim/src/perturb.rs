//! Cluster-variability profiles: per-chip and per-link perturbations.
//!
//! A [`ClusterProfile`] describes one concrete *draw* of cluster
//! non-ideality — which chips are slow and by how much, which links run
//! degraded, and when links suffer transient outages. The profile itself
//! is plain data: generating profiles from stochastic fault models lives
//! in the `meshslice-faults` crate, so the simulator stays free of any
//! randomness and a run is reproducible from the profile alone.
//!
//! The engine consumes a profile (threaded through
//! [`SimConfig::faults`](crate::SimConfig)) at exactly two points:
//!
//! - a node occupying the chip's **compute unit** has its busy timer
//!   multiplied by [`compute_slowdown`](ClusterProfile::compute_slowdown),
//! - a node occupying a **link direction** has its flow-rate cap
//!   multiplied by
//!   [`link_multiplier_at`](ClusterProfile::link_multiplier_at), which
//!   combines the link's static degradation with any outage window active
//!   at that instant.
//!
//! Outage boundaries are pre-scheduled as simulation events, so in-flight
//! transfers are re-rated exactly at each edge. All multipliers default
//! to `1.0`, and multiplying an `f64` by exactly `1.0` is an identity in
//! IEEE-754 arithmetic — an ideal profile therefore reproduces the
//! unperturbed simulation bit-for-bit (and the engine skips the fault
//! path entirely for ideal profiles).

use meshslice_mesh::LinkDir;

/// A transient window during which one link direction runs at a reduced
/// bandwidth floor.
///
/// The window is half-open: the floor applies for `start <= t < end`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkOutage {
    /// Start of the outage, seconds of simulation time.
    pub start: f64,
    /// End of the outage, seconds of simulation time.
    pub end: f64,
    /// Bandwidth multiplier during the window, in `(0, 1]`.
    pub floor: f64,
}

impl LinkOutage {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= start < end` and `floor` is in `(0, 1]`.
    pub fn new(start: f64, end: f64, floor: f64) -> Self {
        assert!(
            start.is_finite() && end.is_finite() && start >= 0.0 && start < end,
            "invalid outage window [{start}, {end})"
        );
        assert!(
            floor > 0.0 && floor <= 1.0,
            "outage floor {floor} must be in (0, 1]"
        );
        LinkOutage { start, end, floor }
    }

    /// Whether the window covers time `t`.
    pub fn contains(&self, t: f64) -> bool {
        self.start <= t && t < self.end
    }
}

/// One concrete draw of cluster non-ideality.
///
/// # Example
///
/// ```
/// use meshslice_mesh::LinkDir;
/// use meshslice_sim::{ClusterProfile, LinkOutage};
///
/// let mut p = ClusterProfile::ideal(4);
/// p.set_compute_slowdown(2, 1.5); // chip 2 is a 1.5x straggler
/// p.set_link_multiplier(0, LinkDir::RowPlus, 0.8);
/// p.add_outage(1, LinkDir::ColPlus, LinkOutage::new(1e-3, 2e-3, 0.1));
/// assert!(!p.is_ideal());
/// assert_eq!(p.compute_slowdown(2), 1.5);
/// assert_eq!(p.link_multiplier_at(1, LinkDir::ColPlus, 1.5e-3), 0.1);
/// assert_eq!(p.link_multiplier_at(1, LinkDir::ColPlus, 3e-3), 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterProfile {
    /// Per-chip compute-time multipliers (`>= 1` slows the chip down).
    compute_slowdown: Vec<f64>,
    /// Per-(chip, direction) static bandwidth multipliers in `(0, 1]`.
    link_multiplier: Vec<[f64; 4]>,
    /// Per-(chip, direction) outage windows, kept sorted by start and
    /// non-overlapping.
    outages: Vec<[Vec<LinkOutage>; 4]>,
}

impl ClusterProfile {
    /// The fault-free profile of a cluster: all multipliers `1.0`, no
    /// outages.
    pub fn ideal(num_chips: usize) -> Self {
        ClusterProfile {
            compute_slowdown: vec![1.0; num_chips],
            link_multiplier: vec![[1.0; 4]; num_chips],
            outages: (0..num_chips).map(|_| Default::default()).collect(),
        }
    }

    /// Number of chips this profile describes.
    pub fn num_chips(&self) -> usize {
        self.compute_slowdown.len()
    }

    /// Whether every multiplier is exactly `1.0` and no outage exists —
    /// i.e. simulation under this profile is identical to no profile.
    pub fn is_ideal(&self) -> bool {
        self.compute_slowdown.iter().all(|&f| f == 1.0)
            && self
                .link_multiplier
                .iter()
                .all(|dirs| dirs.iter().all(|&m| m == 1.0))
            && self
                .outages
                .iter()
                .all(|dirs| dirs.iter().all(|w| w.is_empty()))
    }

    /// Sets chip `chip`'s compute-time multiplier.
    ///
    /// # Panics
    ///
    /// Panics if the factor is not finite and positive, or the chip is out
    /// of range.
    pub fn set_compute_slowdown(&mut self, chip: usize, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compute slowdown {factor} must be finite and positive"
        );
        self.compute_slowdown[chip] = factor;
    }

    /// Builder-style [`set_compute_slowdown`](Self::set_compute_slowdown).
    pub fn with_compute_slowdown(mut self, chip: usize, factor: f64) -> Self {
        self.set_compute_slowdown(chip, factor);
        self
    }

    /// Sets the static bandwidth multiplier of one link direction.
    ///
    /// # Panics
    ///
    /// Panics unless the multiplier is in `(0, 1]`.
    pub fn set_link_multiplier(&mut self, chip: usize, dir: LinkDir, multiplier: f64) {
        assert!(
            multiplier > 0.0 && multiplier <= 1.0,
            "link multiplier {multiplier} must be in (0, 1]"
        );
        self.link_multiplier[chip][dir.index()] = multiplier;
    }

    /// Builder-style [`set_link_multiplier`](Self::set_link_multiplier).
    pub fn with_link_multiplier(mut self, chip: usize, dir: LinkDir, multiplier: f64) -> Self {
        self.set_link_multiplier(chip, dir, multiplier);
        self
    }

    /// Adds an outage window to one link direction, keeping the window
    /// list sorted.
    ///
    /// # Panics
    ///
    /// Panics if the window overlaps an existing one on the same link.
    pub fn add_outage(&mut self, chip: usize, dir: LinkDir, outage: LinkOutage) {
        let windows = &mut self.outages[chip][dir.index()];
        assert!(
            windows
                .iter()
                .all(|w| outage.end <= w.start || w.end <= outage.start),
            "outage [{}, {}) overlaps an existing window",
            outage.start,
            outage.end
        );
        windows.push(outage);
        windows.sort_by(|a, b| a.start.total_cmp(&b.start));
    }

    /// Builder-style [`add_outage`](Self::add_outage).
    pub fn with_outage(mut self, chip: usize, dir: LinkDir, outage: LinkOutage) -> Self {
        self.add_outage(chip, dir, outage);
        self
    }

    /// Chip `chip`'s compute-time multiplier.
    pub fn compute_slowdown(&self, chip: usize) -> f64 {
        self.compute_slowdown[chip]
    }

    /// The static (outage-free) bandwidth multiplier of one link.
    pub fn base_link_multiplier(&self, chip: usize, dir: LinkDir) -> f64 {
        self.link_multiplier[chip][dir.index()]
    }

    /// The effective bandwidth multiplier of one link at time `t`: the
    /// static degradation, further reduced to the outage floor inside an
    /// outage window.
    pub fn link_multiplier_at(&self, chip: usize, dir: LinkDir, t: f64) -> f64 {
        let base = self.link_multiplier[chip][dir.index()];
        match self.outages[chip][dir.index()]
            .iter()
            .find(|w| w.contains(t))
        {
            Some(w) => base * w.floor,
            None => base,
        }
    }

    /// All outage boundaries (starts and ends) of one chip's four links,
    /// sorted and deduplicated. The engine schedules a re-rating event at
    /// each.
    pub fn edge_times(&self, chip: usize) -> Vec<f64> {
        let mut edges: Vec<f64> = self.outages[chip]
            .iter()
            .flatten()
            .flat_map(|w| [w.start, w.end])
            .collect();
        edges.sort_by(f64::total_cmp);
        edges.dedup();
        edges
    }

    /// The outage windows of one link direction, sorted by start.
    pub fn outages(&self, chip: usize, dir: LinkDir) -> &[LinkOutage] {
        &self.outages[chip][dir.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_profile_is_ideal() {
        let p = ClusterProfile::ideal(8);
        assert!(p.is_ideal());
        assert_eq!(p.num_chips(), 8);
        for chip in 0..8 {
            assert_eq!(p.compute_slowdown(chip), 1.0);
            for dir in LinkDir::ALL {
                assert_eq!(p.link_multiplier_at(chip, dir, 0.5), 1.0);
            }
            assert!(p.edge_times(chip).is_empty());
        }
    }

    #[test]
    fn any_perturbation_breaks_ideality() {
        let slow = ClusterProfile::ideal(2).with_compute_slowdown(0, 2.0);
        assert!(!slow.is_ideal());
        let weak = ClusterProfile::ideal(2).with_link_multiplier(1, LinkDir::RowMinus, 0.5);
        assert!(!weak.is_ideal());
        let out = ClusterProfile::ideal(2).with_outage(
            0,
            LinkDir::ColPlus,
            LinkOutage::new(0.0, 1.0, 0.5),
        );
        assert!(!out.is_ideal());
    }

    #[test]
    fn outage_floor_applies_inside_the_window_only() {
        let p = ClusterProfile::ideal(1)
            .with_link_multiplier(0, LinkDir::RowPlus, 0.8)
            .with_outage(0, LinkDir::RowPlus, LinkOutage::new(1.0, 2.0, 0.25));
        let d = LinkDir::RowPlus;
        assert_eq!(p.link_multiplier_at(0, d, 0.5), 0.8);
        assert_eq!(p.link_multiplier_at(0, d, 1.0), 0.8 * 0.25); // inclusive start
        assert_eq!(p.link_multiplier_at(0, d, 1.999), 0.8 * 0.25);
        assert_eq!(p.link_multiplier_at(0, d, 2.0), 0.8); // exclusive end
    }

    #[test]
    fn edge_times_merge_all_directions() {
        let p = ClusterProfile::ideal(1)
            .with_outage(0, LinkDir::RowPlus, LinkOutage::new(1.0, 3.0, 0.5))
            .with_outage(0, LinkDir::ColMinus, LinkOutage::new(2.0, 3.0, 0.5));
        assert_eq!(p.edge_times(0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_outages_panic() {
        ClusterProfile::ideal(1)
            .with_outage(0, LinkDir::RowPlus, LinkOutage::new(1.0, 3.0, 0.5))
            .with_outage(0, LinkDir::RowPlus, LinkOutage::new(2.0, 4.0, 0.5));
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1]")]
    fn out_of_range_multiplier_panics() {
        ClusterProfile::ideal(1).with_link_multiplier(0, LinkDir::RowPlus, 1.5);
    }

    #[test]
    fn abutting_outages_are_allowed() {
        let p = ClusterProfile::ideal(1)
            .with_outage(0, LinkDir::RowPlus, LinkOutage::new(2.0, 3.0, 0.5))
            .with_outage(0, LinkDir::RowPlus, LinkOutage::new(1.0, 2.0, 0.25));
        // Sorted by start despite reversed insertion.
        let windows = p.outages(0, LinkDir::RowPlus);
        assert_eq!(windows[0].start, 1.0);
        assert_eq!(windows[1].start, 2.0);
        assert_eq!(p.link_multiplier_at(0, LinkDir::RowPlus, 2.0), 0.5);
    }
}
