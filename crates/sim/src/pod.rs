//! Pod-scale (N-D) cluster condition and its projection onto 2D planes.
//!
//! A [`PodProfile`] describes the static health of an N-D torus pod —
//! per-chip compute slowdowns and per-(chip, axis, direction) link
//! degradations — in *physical* pod terms. The 2D engine never sees the
//! pod directly: [`PodProfile::project`] restricts the pod condition to a
//! rank-2 [`MeshView`] (typically one plane from [`MeshView::planes`]),
//! relabels the plane's chips as a dense logical [`Torus2d`], and emits
//! the corresponding [`ClusterProfile`] keyed by logical chip and
//! [`LinkDir`]. MeshSlice then runs unchanged on the plane, priced under
//! the plane's actual faults.
//!
//! The pod condition is static (multipliers only); transient
//! [`LinkOutage`](crate::LinkOutage) windows stay a 2D-profile concern and
//! can be layered onto the projected profile afterwards.

use meshslice_mesh::{
    AxisName, ChipId, HopLink, LinkDir, MeshError, MeshShape, MeshView, Torus2d, MAX_AXES,
};

use crate::perturb::ClusterProfile;

/// The static condition of an N-D torus pod.
///
/// # Example
///
/// ```
/// use meshslice_mesh::{AxisName, MeshShape, MeshView};
/// use meshslice_sim::PodProfile;
///
/// let pod_shape = MeshShape::nd(&[("x", 4), ("y", 4), ("z", 2)]).unwrap();
/// let pod = PodProfile::ideal(pod_shape)
///     .with_compute_slowdown(meshslice_mesh::ChipId(0), 2.0);
/// let plane = &MeshView::full(pod_shape).planes()[0]; // x×y @ z=0
/// let proj = pod.project(&plane.view).unwrap();
/// assert_eq!(proj.torus.num_chips(), 16);
/// assert_eq!(proj.profile.compute_slowdown(0), 2.0); // chip 0 is on z=0
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PodProfile {
    shape: MeshShape,
    /// Per-chip compute-time multipliers (`>= 1` slows the chip down).
    compute_slowdown: Vec<f64>,
    /// Per-(chip, axis, direction) static bandwidth multipliers in
    /// `(0, 1]`; `[axis][0]` is the `+` direction, `[axis][1]` the `−`.
    link_multiplier: Vec<[[f64; 2]; MAX_AXES]>,
}

/// A pod plane bound to the 2D machinery: the dense logical torus, the
/// physical chip each logical chip stands for, and the plane-local fault
/// profile.
#[derive(Clone, Debug, PartialEq)]
pub struct PlaneAssignment {
    /// The dense logical torus the 2D engine and algorithms run on.
    pub torus: Torus2d,
    /// `physical[i]` is the pod chip playing logical [`ChipId`]`(i)`.
    pub physical: Vec<ChipId>,
    /// The pod condition restricted to the plane, in logical chip ids.
    pub profile: ClusterProfile,
}

impl PodProfile {
    /// The fault-free condition of a pod: all multipliers `1.0`.
    pub fn ideal(shape: MeshShape) -> Self {
        let n = shape.num_chips();
        PodProfile {
            shape,
            compute_slowdown: vec![1.0; n],
            link_multiplier: vec![[[1.0; 2]; MAX_AXES]; n],
        }
    }

    /// The pod's physical shape.
    pub fn shape(&self) -> MeshShape {
        self.shape
    }

    /// Number of chips in the pod.
    pub fn num_chips(&self) -> usize {
        self.compute_slowdown.len()
    }

    /// Whether every multiplier is exactly `1.0`.
    pub fn is_ideal(&self) -> bool {
        self.compute_slowdown.iter().all(|&f| f == 1.0)
            && self
                .link_multiplier
                .iter()
                .all(|axes| axes.iter().all(|dirs| dirs.iter().all(|&m| m == 1.0)))
    }

    /// Sets a chip's compute-time multiplier.
    ///
    /// # Panics
    ///
    /// Panics if the factor is not finite and positive, or the chip is out
    /// of range.
    pub fn set_compute_slowdown(&mut self, chip: ChipId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "compute slowdown {factor} must be finite and positive"
        );
        self.compute_slowdown[chip.0] = factor;
    }

    /// Builder-style [`set_compute_slowdown`](Self::set_compute_slowdown).
    pub fn with_compute_slowdown(mut self, chip: ChipId, factor: f64) -> Self {
        self.set_compute_slowdown(chip, factor);
        self
    }

    /// Sets the static bandwidth multiplier of one pod link: chip `chip`'s
    /// link along `axis`, `+` direction when `forward`.
    ///
    /// # Panics
    ///
    /// Panics unless the multiplier is in `(0, 1]`, the chip is in range,
    /// and `axis` names an axis of the pod shape.
    pub fn set_link_multiplier(
        &mut self,
        chip: ChipId,
        axis: AxisName,
        forward: bool,
        multiplier: f64,
    ) {
        assert!(
            multiplier > 0.0 && multiplier <= 1.0,
            "link multiplier {multiplier} must be in (0, 1]"
        );
        let a = self
            .shape
            .axis_index(axis)
            .unwrap_or_else(|| panic!("pod {} has no axis '{axis}'", self.shape));
        self.link_multiplier[chip.0][a][usize::from(!forward)] = multiplier;
    }

    /// Builder-style [`set_link_multiplier`](Self::set_link_multiplier).
    pub fn with_link_multiplier(
        mut self,
        chip: ChipId,
        axis: AxisName,
        forward: bool,
        multiplier: f64,
    ) -> Self {
        self.set_link_multiplier(chip, axis, forward, multiplier);
        self
    }

    /// A chip's compute-time multiplier.
    pub fn compute_slowdown(&self, chip: ChipId) -> f64 {
        self.compute_slowdown[chip.0]
    }

    /// The static bandwidth multiplier of one pod link.
    ///
    /// # Panics
    ///
    /// Panics if `axis` does not name an axis of the pod shape.
    pub fn link_multiplier(&self, chip: ChipId, axis: AxisName, forward: bool) -> f64 {
        let a = self
            .shape
            .axis_index(axis)
            .unwrap_or_else(|| panic!("pod {} has no axis '{axis}'", self.shape));
        self.link_multiplier[chip.0][a][usize::from(!forward)]
    }

    /// The smallest link multiplier anywhere in the pod — the conservative
    /// rate assumed for multi-link routed hops, whose exact path the view
    /// algebra does not pin down.
    fn worst_link_multiplier(&self) -> f64 {
        let rank = self.shape.rank();
        self.link_multiplier
            .iter()
            .flat_map(|axes| axes[..rank].iter().flatten())
            .fold(1.0f64, |acc, &m| acc.min(m))
    }

    /// The effective multiplier of one resolved ring hop, taken in the
    /// hop's own direction.
    fn hop_multiplier(&self, from: ChipId, link: &HopLink) -> f64 {
        match link {
            HopLink::Direct { axis, forward, .. } => self.link_multiplier(from, *axis, *forward),
            // A routed hop crosses several links; without the concrete
            // path, bound its bandwidth by the pod's worst link.
            HopLink::Route { .. } => self.worst_link_multiplier(),
        }
    }

    /// Restricts the pod condition to a rank-2 view over this pod's shape,
    /// producing the logical torus, its physical chip assignment, and the
    /// plane-local [`ClusterProfile`].
    ///
    /// Logical link directions map through the view's ring hops: the hop
    /// from logical `(r, c)` to `(r+1, c)` prices that chip's
    /// [`LinkDir::RowPlus`] link, its reverse the neighbor's
    /// [`LinkDir::RowMinus`], and likewise for columns. Plane views
    /// (from [`MeshView::planes`]) resolve every hop to a single physical
    /// link; hops of flattened views that route across several links are
    /// conservatively priced at the pod's worst link multiplier.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::NotRank2`] for views of any other rank, and
    /// [`MeshError::RankMismatch`] if the view is not a view of this pod's
    /// shape.
    pub fn project(&self, view: &MeshView) -> Result<PlaneAssignment, MeshError> {
        if view.base() != self.shape {
            return Err(MeshError::RankMismatch {
                expected: self.shape.rank(),
                got: view.base().rank(),
            });
        }
        let (torus, physical) = view.as_torus2d()?;
        let logical_of = |chip: ChipId| -> usize {
            physical
                .iter()
                .position(|&p| p == chip)
                .expect("ring hops stay within the view's chips")
        };
        let mut profile = ClusterProfile::ideal(physical.len());
        for (l, &p) in physical.iter().enumerate() {
            let slowdown = self.compute_slowdown(p);
            if slowdown != 1.0 {
                profile.set_compute_slowdown(l, slowdown);
            }
        }
        let names = view.axis_names();
        for (name, plus, minus) in [
            (names[0], LinkDir::RowPlus, LinkDir::RowMinus),
            (names[1], LinkDir::ColPlus, LinkDir::ColMinus),
        ] {
            for ring in view.ring_hops(name)? {
                for hop in ring {
                    let fwd = self.hop_multiplier(hop.from, &hop.link);
                    if fwd != 1.0 {
                        profile.set_link_multiplier(logical_of(hop.from), plus, fwd);
                    }
                    // The reverse of the hop runs the opposite direction
                    // of the same physical link(s), from the receiver.
                    let back = match &hop.link {
                        HopLink::Direct { axis, forward, .. } => {
                            self.link_multiplier(hop.to, *axis, !forward)
                        }
                        HopLink::Route { .. } => self.worst_link_multiplier(),
                    };
                    if back != 1.0 {
                        profile.set_link_multiplier(logical_of(hop.to), minus, back);
                    }
                }
            }
        }
        Ok(PlaneAssignment {
            torus,
            physical,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod3() -> MeshShape {
        MeshShape::nd(&[("x", 4), ("y", 4), ("z", 2)]).unwrap()
    }

    #[test]
    fn ideal_pod_projects_to_ideal_profiles_on_every_plane() {
        let pod = PodProfile::ideal(pod3());
        for plane in MeshView::full(pod3()).planes() {
            let proj = pod.project(&plane.view).unwrap();
            assert!(proj.profile.is_ideal(), "plane {plane}");
            assert_eq!(proj.torus.num_chips(), proj.physical.len());
        }
    }

    #[test]
    fn compute_slowdown_lands_on_the_right_logical_chip() {
        let shape = pod3();
        // Physical chip at (x=1, y=2, z=1): index 1*8 + 2*2 + 1 = 13.
        let victim = ChipId(13);
        let pod = PodProfile::ideal(shape).with_compute_slowdown(victim, 3.0);
        for plane in MeshView::full(shape).planes() {
            let proj = pod.project(&plane.view).unwrap();
            let hit = proj.physical.iter().position(|&p| p == victim);
            match hit {
                Some(l) => {
                    assert_eq!(proj.profile.compute_slowdown(l), 3.0, "plane {plane}");
                    // Nobody else slowed.
                    for other in 0..proj.physical.len() {
                        if other != l {
                            assert_eq!(proj.profile.compute_slowdown(other), 1.0);
                        }
                    }
                }
                None => assert!(proj.profile.is_ideal(), "plane {plane} avoids the victim"),
            }
        }
    }

    #[test]
    fn link_degradation_maps_to_logical_directions() {
        let shape = pod3();
        // Weaken chip (0,0,0)'s +x link.
        let pod = PodProfile::ideal(shape).with_link_multiplier(ChipId(0), AxisName::X, true, 0.5);
        // On the x×y @ z=0 plane, x is the row axis: logical chip 0's
        // RowPlus link is the degraded one.
        let plane = MeshView::full(shape).select(AxisName::Z, 0).unwrap();
        let proj = pod.project(&plane).unwrap();
        assert_eq!(proj.physical[0], ChipId(0));
        assert_eq!(proj.profile.base_link_multiplier(0, LinkDir::RowPlus), 0.5);
        assert_eq!(proj.profile.base_link_multiplier(0, LinkDir::RowMinus), 1.0);
        // On the y×x orientation the same physical link is a ColPlus.
        let flipped = plane.transpose();
        let proj = pod.project(&flipped).unwrap();
        let l = proj.physical.iter().position(|&p| p == ChipId(0)).unwrap();
        assert_eq!(proj.profile.base_link_multiplier(l, LinkDir::ColPlus), 0.5);
        // A z=1 plane never touches the degraded link.
        let clean = MeshView::full(shape).select(AxisName::Z, 1).unwrap();
        assert!(pod.project(&clean).unwrap().profile.is_ideal());
    }

    #[test]
    fn project_rejects_foreign_and_non_2d_views() {
        let pod = PodProfile::ideal(pod3());
        let other = MeshView::full(MeshShape::new(4, 4));
        assert!(pod.project(&other).is_err());
        let full3 = MeshView::full(pod3());
        assert!(matches!(
            pod.project(&full3),
            Err(MeshError::NotRank2 { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "has no axis")]
    fn unknown_axis_panics() {
        PodProfile::ideal(pod3()).with_link_multiplier(ChipId(0), AxisName::W, true, 0.5);
    }
}
