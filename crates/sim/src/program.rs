//! The operation-level program representation.
//!
//! A [`Program`] is a cluster-wide DAG of operations: every op belongs to
//! one chip and may depend on any other ops (including ops of other chips,
//! although the algorithms in this workspace only create cross-chip
//! dependencies implicitly, through collectives).
//!
//! Collective participation is expressed per chip: all chips taking part in
//! one logical collective use the same *tag*, and the lowering pass links
//! their ring steps together.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use meshslice_mesh::{ChipId, CommAxis, LinkDir, Torus2d};
use meshslice_tensor::GemmShape;

/// Identifier of an operation within a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The raw index of the op in its program.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Which ring collective a [`OpKind::Collective`] op performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring AllGather: `P − 1` steps, each forwarding one shard.
    AllGather,
    /// Ring ReduceScatter: `P − 1` steps, each forwarding one partial
    /// output shard.
    ReduceScatter,
}

/// One operation of a chip.
#[derive(Clone, Debug, PartialEq)]
pub enum OpKind {
    /// A local (partial) GeMM on the chip's systolic arrays.
    Gemm {
        /// Local problem shape.
        shape: GemmShape,
    },
    /// An HBM-to-HBM blocked slicing copy (`slice_col` / `slice_row`).
    SliceCopy {
        /// Bytes of the sub-shard being extracted or scattered.
        bytes: u64,
    },
    /// Participation in a ring collective.
    Collective {
        /// AllGather or ReduceScatter.
        kind: CollectiveKind,
        /// Communication direction (which rings are used).
        axis: CommAxis,
        /// Instance tag: ops with equal tags across the chips of a ring
        /// form one collective.
        tag: u64,
        /// Bytes moved per ring step (the local shard for AllGather, the
        /// scattered output shard for ReduceScatter).
        shard_bytes: u64,
        /// 1 = unidirectional ring; 2 = split the transfer over both ring
        /// directions (halving the per-step bytes), as the 1D baselines do
        /// to use both of their ICI links.
        lanes: u8,
    },
    /// A single neighbor exchange over one link (Cannon's shifts, Wang's
    /// decomposed collectives).
    SendRecv {
        /// Outgoing link.
        dir: LinkDir,
        /// Bytes sent (the chip simultaneously receives as many).
        bytes: u64,
    },
    /// A SUMMA-style pipelined one-to-all broadcast or all-to-one reduce on
    /// a ring: the shard is split into fine-grain packets streamed over
    /// `P + D − 2` pipeline stages, each paying a synchronization (§2.3.3).
    PipelinedBcast {
        /// Communication direction.
        axis: CommAxis,
        /// Total bytes of the broadcast/reduced shard.
        bytes: u64,
    },
}

/// A dependency cycle found by [`Program::validate_acyclic`].
///
/// Names one op caught in the cycle (its id, chip, and kind) plus a short
/// excerpt of the cycle itself so the offending dependency chain can be
/// read straight out of the error message.
#[derive(Clone, Debug, PartialEq)]
pub struct CycleError {
    /// An op that participates in the cycle.
    pub op: OpId,
    /// The chip that op runs on.
    pub chip: ChipId,
    /// What the op does.
    pub kind: OpKind,
    /// Up to [`CycleError::EXCERPT_LEN`] consecutive ops of the cycle,
    /// starting at `op`; each waits on the next.
    pub excerpt: Vec<OpId>,
}

impl CycleError {
    /// Maximum number of cycle members reported in [`CycleError::excerpt`].
    pub const EXCERPT_LEN: usize = 8;
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dependency cycle through op {} ({:?} on chip {}): ",
            self.op.index(),
            self.kind,
            self.chip.index()
        )?;
        for (i, op) in self.excerpt.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{}", op.index())?;
        }
        if self.excerpt.len() == Self::EXCERPT_LEN {
            write!(f, " -> ...")?;
        }
        Ok(())
    }
}

impl Error for CycleError {}

/// An operation: its chip, kind, and dependencies.
#[derive(Clone, Debug, PartialEq)]
pub struct Op {
    /// The chip executing the op.
    pub chip: ChipId,
    /// What the op does.
    pub kind: OpKind,
    /// Ops that must complete before this one starts.
    pub deps: Vec<OpId>,
}

/// A cluster-wide DAG of operations, ready for the [`Engine`].
///
/// [`Engine`]: crate::Engine
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub(crate) ops: Vec<Op>,
}

impl Program {
    /// The operations, indexed by [`OpId`].
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Checks that the op dependency graph is acyclic and returns a valid
    /// topological order of op indices.
    ///
    /// The builder only allows backward references, so programs built with
    /// [`ProgramBuilder`] are always acyclic; this check exists for
    /// programs constructed or transformed by other means, and gives a
    /// clearer error than the engine's deadlock panic.
    ///
    /// # Errors
    ///
    /// Returns a [`CycleError`] naming an op that participates in a cycle,
    /// its chip and kind, and a short excerpt of the cycle.
    pub fn validate_acyclic(&self) -> Result<Vec<usize>, CycleError> {
        let n = self.ops.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in self.ops.iter().enumerate() {
            indegree[i] = op.deps.len();
            for d in &op.deps {
                dependents[d.0].push(i);
            }
        }
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(i) = ready.pop() {
            order.push(i);
            for &d in &dependents[i] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(d);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(self.cycle_error(&indegree))
        }
    }

    /// Builds the [`CycleError`] for a failed topological sort.
    ///
    /// `indegree` holds each op's count of unsatisfied dependencies after
    /// Kahn's algorithm got stuck; ops with a positive count form the
    /// cyclic core (plus anything downstream of it). Following any
    /// still-pending dependency from such an op must eventually revisit an
    /// op, which yields a genuine cycle to excerpt.
    fn cycle_error(&self, indegree: &[usize]) -> CycleError {
        let start = (0..self.ops.len())
            .find(|&i| indegree[i] > 0)
            .expect("a cyclic op exists");
        // Walk pending deps until an op repeats; the repeat closes a cycle.
        let mut seen_at: HashMap<usize, usize> = HashMap::new();
        let mut walk: Vec<usize> = Vec::new();
        let mut at = start;
        let cycle_head = loop {
            if let Some(&pos) = seen_at.get(&at) {
                break pos;
            }
            seen_at.insert(at, walk.len());
            walk.push(at);
            at = self.ops[at]
                .deps
                .iter()
                .map(|d| d.0)
                .find(|&d| indegree[d] > 0)
                .expect("a stuck op has a stuck dependency");
        };
        let cycle: Vec<usize> = walk[cycle_head..].to_vec();
        let op = OpId(cycle[0]);
        CycleError {
            op,
            chip: self.ops[op.0].chip,
            kind: self.ops[op.0].kind.clone(),
            excerpt: cycle
                .into_iter()
                .take(CycleError::EXCERPT_LEN)
                .map(OpId)
                .collect(),
        }
    }

    /// Total FLOPs of all GeMM ops (for utilization accounting).
    pub fn total_flops(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match &op.kind {
                OpKind::Gemm { shape } => shape.flops(),
                _ => 0,
            })
            .sum()
    }
}

/// Incrementally builds a [`Program`] against a mesh.
///
/// The builder validates chips and dependencies eagerly and collective
/// consistency in [`ProgramBuilder::build`].
///
/// # Example
///
/// ```
/// use meshslice_mesh::{CommAxis, Torus2d};
/// use meshslice_sim::{CollectiveKind, GemmShape, ProgramBuilder};
///
/// let mesh = Torus2d::new(2, 2);
/// let mut b = ProgramBuilder::new(&mesh);
/// let tag = b.next_tag();
/// for chip in mesh.chips() {
///     let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1024, &[]);
///     b.gemm(chip, GemmShape::new(64, 64, 64), &[ag]);
/// }
/// let program = b.build();
/// assert_eq!(program.len(), 8);
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    mesh: Torus2d,
    ops: Vec<Op>,
    next_tag: u64,
}

impl ProgramBuilder {
    /// Creates a builder for programs on `mesh`.
    pub fn new(mesh: &Torus2d) -> Self {
        ProgramBuilder {
            mesh: mesh.clone(),
            ops: Vec::new(),
            next_tag: 0,
        }
    }

    /// The mesh this program targets.
    pub fn mesh(&self) -> &Torus2d {
        &self.mesh
    }

    /// Returns a fresh collective tag, unique within this builder.
    pub fn next_tag(&mut self) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn push(&mut self, chip: ChipId, kind: OpKind, deps: &[OpId]) -> OpId {
        assert!(
            chip.index() < self.mesh.num_chips(),
            "{chip:?} outside the {} mesh",
            self.mesh.shape()
        );
        for d in deps {
            assert!(d.0 < self.ops.len(), "dependency {d:?} does not exist yet");
        }
        let id = OpId(self.ops.len());
        self.ops.push(Op {
            chip,
            kind,
            deps: deps.to_vec(),
        });
        id
    }

    /// Adds a local GeMM.
    ///
    /// # Panics
    ///
    /// Panics if the chip is outside the mesh or a dependency does not
    /// exist.
    pub fn gemm(&mut self, chip: ChipId, shape: GemmShape, deps: &[OpId]) -> OpId {
        self.push(chip, OpKind::Gemm { shape }, deps)
    }

    /// Adds a blocked slicing copy of `bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the chip is outside the mesh or a dependency does not
    /// exist.
    pub fn slice_copy(&mut self, chip: ChipId, bytes: u64, deps: &[OpId]) -> OpId {
        self.push(chip, OpKind::SliceCopy { bytes }, deps)
    }

    /// Adds an AllGather participation (unidirectional ring).
    ///
    /// `shard_bytes` is the chip's local contribution.
    ///
    /// # Panics
    ///
    /// Panics if the chip is outside the mesh or a dependency does not
    /// exist.
    pub fn all_gather(
        &mut self,
        chip: ChipId,
        tag: u64,
        axis: CommAxis,
        shard_bytes: u64,
        deps: &[OpId],
    ) -> OpId {
        self.collective(
            chip,
            tag,
            CollectiveKind::AllGather,
            axis,
            shard_bytes,
            1,
            deps,
        )
    }

    /// Adds a ReduceScatter participation (unidirectional ring).
    ///
    /// `shard_bytes` is the scattered output shard size (input ÷ ring
    /// length).
    ///
    /// # Panics
    ///
    /// Panics if the chip is outside the mesh or a dependency does not
    /// exist.
    pub fn reduce_scatter(
        &mut self,
        chip: ChipId,
        tag: u64,
        axis: CommAxis,
        shard_bytes: u64,
        deps: &[OpId],
    ) -> OpId {
        self.collective(
            chip,
            tag,
            CollectiveKind::ReduceScatter,
            axis,
            shard_bytes,
            1,
            deps,
        )
    }

    /// Adds a collective participation with explicit kind and lane count.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is not 1 or 2, the chip is outside the mesh, or a
    /// dependency does not exist.
    #[allow(clippy::too_many_arguments)]
    pub fn collective(
        &mut self,
        chip: ChipId,
        tag: u64,
        kind: CollectiveKind,
        axis: CommAxis,
        shard_bytes: u64,
        lanes: u8,
        deps: &[OpId],
    ) -> OpId {
        assert!(lanes == 1 || lanes == 2, "lanes must be 1 or 2");
        self.push(
            chip,
            OpKind::Collective {
                kind,
                axis,
                tag,
                shard_bytes,
                lanes,
            },
            deps,
        )
    }

    /// Adds a single neighbor exchange.
    ///
    /// # Panics
    ///
    /// Panics if the chip is outside the mesh or a dependency does not
    /// exist.
    pub fn send_recv(&mut self, chip: ChipId, dir: LinkDir, bytes: u64, deps: &[OpId]) -> OpId {
        self.push(chip, OpKind::SendRecv { dir, bytes }, deps)
    }

    /// Adds a SUMMA-style pipelined broadcast or reduce.
    ///
    /// # Panics
    ///
    /// Panics if the chip is outside the mesh or a dependency does not
    /// exist.
    pub fn pipelined_bcast(
        &mut self,
        chip: ChipId,
        axis: CommAxis,
        bytes: u64,
        deps: &[OpId],
    ) -> OpId {
        self.push(chip, OpKind::PipelinedBcast { axis, bytes }, deps)
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if any collective tag is inconsistent: members of one ring
    /// must all carry the same kind, axis, byte count, and lane count, and
    /// every ring touched by a tag must be fully covered.
    pub fn build(self) -> Program {
        self.validate_collectives();
        Program { ops: self.ops }
    }

    fn validate_collectives(&self) {
        // tag -> (kind, axis, shard_bytes, lanes) plus participating chips.
        let mut groups: HashMap<u64, (CollectiveKind, CommAxis, u64, u8, Vec<ChipId>)> =
            HashMap::new();
        for op in &self.ops {
            if let OpKind::Collective {
                kind,
                axis,
                tag,
                shard_bytes,
                lanes,
            } = op.kind
            {
                let entry =
                    groups
                        .entry(tag)
                        .or_insert((kind, axis, shard_bytes, lanes, Vec::new()));
                assert!(
                    entry.0 == kind
                        && entry.1 == axis
                        && entry.2 == shard_bytes
                        && entry.3 == lanes,
                    "collective tag {tag} used with inconsistent parameters"
                );
                assert!(
                    !entry.4.contains(&op.chip),
                    "chip {:?} participates twice in collective tag {tag}",
                    op.chip
                );
                entry.4.push(op.chip);
            }
        }
        for (tag, (_, axis, _, _, chips)) in &groups {
            for &chip in chips {
                let ring = self.mesh.ring_through(self.mesh.coord_of(chip), *axis);
                for member in ring.members() {
                    assert!(
                        chips.contains(member),
                        "collective tag {tag}: ring of {chip:?} is missing {member:?}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_mesh::Coord;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mesh = Torus2d::new(1, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let a = b.gemm(ChipId(0), GemmShape::new(1, 1, 1), &[]);
        let c = b.slice_copy(ChipId(1), 64, &[a]);
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        let p = b.build();
        assert_eq!(p.len(), 2);
        assert_eq!(p.ops()[1].deps, vec![a]);
    }

    #[test]
    fn total_flops_counts_gemms_only() {
        let mesh = Torus2d::new(1, 1);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(ChipId(0), GemmShape::new(2, 3, 4), &[]);
        b.slice_copy(ChipId(0), 1000, &[]);
        assert_eq!(b.build().total_flops(), 48);
    }

    #[test]
    fn collective_on_full_ring_validates() {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        // An InterRow collective must include every chip of each column.
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, 128, &[]);
        }
        b.build();
    }

    #[test]
    #[should_panic(expected = "missing")]
    fn incomplete_ring_panics() {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        b.all_gather(
            mesh.chip_at(Coord::new(0, 0)),
            tag,
            CommAxis::InterRow,
            128,
            &[],
        );
        b.build();
    }

    #[test]
    #[should_panic(expected = "inconsistent parameters")]
    fn inconsistent_tag_parameters_panic() {
        let mesh = Torus2d::new(2, 1);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        b.all_gather(ChipId(0), tag, CommAxis::InterRow, 128, &[]);
        b.all_gather(ChipId(1), tag, CommAxis::InterRow, 256, &[]);
        b.build();
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_dependency_panics() {
        let mesh = Torus2d::new(1, 1);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(ChipId(0), GemmShape::new(1, 1, 1), &[OpId(5)]);
    }

    #[test]
    fn builder_programs_are_acyclic() {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            let ag = b.all_gather(chip, tag, CommAxis::InterRow, 64, &[]);
            b.gemm(chip, GemmShape::new(2, 2, 2), &[ag]);
        }
        let p = b.build();
        let order = p.validate_acyclic().expect("builder output is acyclic");
        assert_eq!(order.len(), p.len());
        // Every op appears after its dependencies.
        let pos: std::collections::HashMap<usize, usize> =
            order.iter().enumerate().map(|(i, &op)| (op, i)).collect();
        for (i, op) in p.ops().iter().enumerate() {
            for d in &op.deps {
                assert!(pos[&d.index()] < pos[&i]);
            }
        }
    }

    #[test]
    fn hand_built_cycles_are_detected() {
        // Construct a cyclic program directly (the builder forbids this).
        let p = Program {
            ops: vec![
                Op {
                    chip: ChipId(0),
                    kind: OpKind::SliceCopy { bytes: 1 },
                    deps: vec![OpId(1)],
                },
                Op {
                    chip: ChipId(3),
                    kind: OpKind::Gemm {
                        shape: GemmShape::new(1, 1, 1),
                    },
                    deps: vec![OpId(0)],
                },
            ],
        };
        let err = p.validate_acyclic().unwrap_err();
        assert_eq!(err.op, OpId(0));
        assert_eq!(err.chip, ChipId(0));
        assert_eq!(err.kind, OpKind::SliceCopy { bytes: 1 });
        assert_eq!(err.excerpt, vec![OpId(0), OpId(1)]);
        let msg = err.to_string();
        assert!(msg.contains("cycle through op 0"), "message: {msg}");
        assert!(msg.contains("chip 0"), "message: {msg}");
        assert!(msg.contains("0 -> 1"), "message: {msg}");
    }

    #[test]
    fn cycle_error_names_a_true_cycle_member() {
        // Op 0 is stuck only because it waits on the 1 <-> 2 cycle; the
        // error must point into the cycle itself, not at op 0.
        let p = Program {
            ops: vec![
                Op {
                    chip: ChipId(0),
                    kind: OpKind::SliceCopy { bytes: 1 },
                    deps: vec![OpId(1)],
                },
                Op {
                    chip: ChipId(1),
                    kind: OpKind::SliceCopy { bytes: 2 },
                    deps: vec![OpId(2)],
                },
                Op {
                    chip: ChipId(2),
                    kind: OpKind::SliceCopy { bytes: 3 },
                    deps: vec![OpId(1)],
                },
            ],
        };
        let err = p.validate_acyclic().unwrap_err();
        assert!(err.op == OpId(1) || err.op == OpId(2));
        assert_eq!(err.excerpt.len(), 2);
    }

    #[test]
    fn tags_are_unique() {
        let mesh = Torus2d::new(1, 1);
        let mut b = ProgramBuilder::new(&mesh);
        assert_ne!(b.next_tag(), b.next_tag());
    }
}
