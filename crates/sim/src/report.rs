//! Simulation results and time breakdowns.

use std::fmt;

use crate::time::Duration;

/// Per-category busy-time totals, summed across all chips.
///
/// These are the categories of the paper's Figure 10: operation *launch*
/// overhead, shard *transfer* time, and chip *synchronization* time, plus
/// the compute-side buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// GeMM execution on the systolic arrays.
    pub compute: Duration,
    /// Blocked slicing copies (the MeshSlice `slice_col` / `slice_row`).
    pub slice: Duration,
    /// Communication operation launch overheads.
    pub comm_launch: Duration,
    /// Ring-step and pipeline-stage synchronizations.
    pub comm_sync: Duration,
    /// Shard transfer occupancy (including pipeline bubbles).
    pub comm_transfer: Duration,
}

impl TimeBreakdown {
    /// Total communication time (`launch + sync + transfer`).
    pub fn comm_total(&self) -> Duration {
        self.comm_launch + self.comm_sync + self.comm_transfer
    }

    /// Element-wise sum of two breakdowns.
    pub fn merged(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute: self.compute + other.compute,
            slice: self.slice + other.slice,
            comm_launch: self.comm_launch + other.comm_launch,
            comm_sync: self.comm_sync + other.comm_sync,
            comm_transfer: self.comm_transfer + other.comm_transfer,
        }
    }
}

/// The result of one simulation run.
///
/// # Example
///
/// ```
/// use meshslice_mesh::{ChipId, Torus2d};
/// use meshslice_sim::{Engine, GemmShape, ProgramBuilder, SimConfig};
///
/// let mesh = Torus2d::new(1, 1);
/// let mut b = ProgramBuilder::new(&mesh);
/// b.gemm(ChipId(0), GemmShape::new(2048, 2048, 2048), &[]);
/// let report = Engine::new(mesh, SimConfig::tpu_v4()).run(&b.build());
/// println!("{report}");
/// assert!(report.flop_utilization() > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    makespan: Duration,
    num_chips: usize,
    peak_flops: f64,
    total_flops: u64,
    totals: TimeBreakdown,
    overlapped_comm: Duration,
}

impl SimReport {
    pub(crate) fn new(
        makespan: Duration,
        num_chips: usize,
        peak_flops: f64,
        total_flops: u64,
        totals: TimeBreakdown,
        overlapped_comm: Duration,
    ) -> Self {
        SimReport {
            makespan,
            num_chips,
            peak_flops,
            total_flops,
            totals,
            overlapped_comm,
        }
    }

    /// Wall-clock duration of the run (completion of the last node).
    pub fn makespan(&self) -> Duration {
        self.makespan
    }

    /// Number of chips in the simulated cluster.
    pub fn num_chips(&self) -> usize {
        self.num_chips
    }

    /// FLOPs executed by all GeMM operations of the program.
    pub fn total_flops(&self) -> u64 {
        self.total_flops
    }

    /// Cluster-wide busy-time totals per category.
    pub fn totals(&self) -> &TimeBreakdown {
        &self.totals
    }

    /// Average per-chip busy time per category.
    pub fn per_chip(&self) -> TimeBreakdown {
        let div = |d: Duration| Duration::from_secs(d.as_secs() / self.num_chips as f64);
        TimeBreakdown {
            compute: div(self.totals.compute),
            slice: div(self.totals.slice),
            comm_launch: div(self.totals.comm_launch),
            comm_sync: div(self.totals.comm_sync),
            comm_transfer: div(self.totals.comm_transfer),
        }
    }

    /// Achieved FLOP utilization: executed FLOPs divided by what the whole
    /// cluster could execute at peak over the makespan (the metric of the
    /// paper's Figures 9, 11, 12).
    ///
    /// Returns 0 for an empty run.
    pub fn flop_utilization(&self) -> f64 {
        let capacity = self.peak_flops * self.num_chips as f64 * self.makespan.as_secs();
        if capacity == 0.0 {
            0.0
        } else {
            self.total_flops as f64 / capacity
        }
    }

    /// Goodput: useful compute (this run's makespan) divided by the
    /// wall-clock it actually took under failures — checkpoint writes,
    /// detection, restore, and replayed lost work all inflate
    /// `wall_clock` past the makespan. Clamped to `[0, 1]`; a failure-free
    /// run has goodput exactly 1.
    pub fn goodput(&self, wall_clock: Duration) -> f64 {
        let wall = wall_clock.as_secs();
        if wall <= 0.0 {
            return 0.0;
        }
        (self.makespan.as_secs() / wall).clamp(0.0, 1.0)
    }

    /// Shard-transfer time that elapsed while the owning chip's compute
    /// unit was simultaneously busy — communication the schedule hid
    /// under computation.
    pub fn overlapped_comm(&self) -> Duration {
        self.overlapped_comm
    }

    /// Fraction of shard-transfer time hidden under computation, in
    /// `[0, 1]` — the paper's headline overlap quantity (Figure 4).
    ///
    /// Returns 0 for a run with no shard transfers.
    pub fn overlap_efficiency(&self) -> f64 {
        let transfer = self.totals.comm_transfer.as_secs();
        if transfer == 0.0 {
            0.0
        } else {
            (self.overlapped_comm.as_secs() / transfer).clamp(0.0, 1.0)
        }
    }

    /// Communication time relative to computation time, per category
    /// (`launch`, `transfer`, `sync`) — the bars of the paper's Figure 10.
    ///
    /// Returns zeros if the program performed no computation.
    pub fn comm_relative_to_compute(&self) -> (f64, f64, f64) {
        let compute = self.totals.compute.as_secs();
        if compute == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.totals.comm_launch.as_secs() / compute,
            self.totals.comm_transfer.as_secs() / compute,
            self.totals.comm_sync.as_secs() / compute,
        )
    }

    /// Combines reports of *sequentially executed* programs (e.g. the
    /// twelve FC-layer GeMMs of one training step): makespans add, FLOPs
    /// add, and breakdowns merge.
    ///
    /// # Panics
    ///
    /// Panics if the reports disagree on cluster size or peak FLOPs, or if
    /// `reports` is empty.
    pub fn merge_serial(reports: &[SimReport]) -> SimReport {
        assert!(!reports.is_empty(), "cannot merge zero reports");
        let first = &reports[0];
        let mut makespan = Duration::ZERO;
        let mut total_flops = 0u64;
        let mut totals = TimeBreakdown::default();
        let mut overlapped_comm = Duration::ZERO;
        for r in reports {
            assert_eq!(r.num_chips, first.num_chips, "cluster size mismatch");
            // Relative tolerance: peak FLOPs are O(1e14), where an
            // absolute 1e-3 window is meaninglessly tight (and on tiny
            // test configs it would be far too loose).
            let tol = first.peak_flops.abs().max(f64::MIN_POSITIVE) * 1e-9;
            assert!(
                (r.peak_flops - first.peak_flops).abs() <= tol,
                "peak FLOPs mismatch: {} vs {}",
                r.peak_flops,
                first.peak_flops
            );
            makespan += r.makespan;
            total_flops += r.total_flops;
            totals = totals.merged(&r.totals);
            overlapped_comm += r.overlapped_comm;
        }
        SimReport {
            makespan,
            num_chips: first.num_chips,
            peak_flops: first.peak_flops,
            total_flops,
            totals,
            overlapped_comm,
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let per = self.per_chip();
        write!(
            f,
            "makespan {} | util {:.1}% | overlap {:.1}% | per-chip compute {} slice {} launch {} sync {} transfer {}",
            self.makespan,
            self.flop_utilization() * 100.0,
            self.overlap_efficiency() * 100.0,
            per.compute,
            per.slice,
            per.comm_launch,
            per.comm_sync,
            per.comm_transfer,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(makespan: f64, flops: u64, compute: f64) -> SimReport {
        SimReport::new(
            Duration::from_secs(makespan),
            4,
            100.0,
            flops,
            TimeBreakdown {
                compute: Duration::from_secs(compute),
                slice: Duration::ZERO,
                comm_launch: Duration::from_secs(1.0),
                comm_sync: Duration::from_secs(2.0),
                comm_transfer: Duration::from_secs(3.0),
            },
            Duration::from_secs(1.5),
        )
    }

    #[test]
    fn utilization_formula() {
        let r = report(1.0, 200, 1.0);
        // 200 flops / (100 flops/s * 4 chips * 1 s) = 0.5.
        assert!((r.flop_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_chip_divides_totals() {
        let r = report(1.0, 0, 8.0);
        assert!((r.per_chip().compute.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_relative_to_compute_ratios() {
        let r = report(1.0, 0, 2.0);
        let (l, t, s) = r.comm_relative_to_compute();
        assert!((l - 0.5).abs() < 1e-12);
        assert!((t - 1.5).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_serial_adds_everything() {
        let merged = SimReport::merge_serial(&[report(1.0, 100, 2.0), report(2.0, 50, 4.0)]);
        assert_eq!(merged.makespan(), Duration::from_secs(3.0));
        assert_eq!(merged.total_flops(), 150);
        assert_eq!(merged.totals().compute, Duration::from_secs(6.0));
        assert_eq!(merged.totals().comm_total(), Duration::from_secs(12.0));
    }

    #[test]
    fn overlap_efficiency_is_hidden_over_transfer() {
        // 1.5 s hidden out of 3.0 s of transfer.
        let r = report(1.0, 0, 2.0);
        assert!((r.overlap_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_efficiency_of_transfer_free_run_is_zero() {
        let r = SimReport::new(
            Duration::from_secs(1.0),
            4,
            100.0,
            10,
            TimeBreakdown::default(),
            Duration::ZERO,
        );
        assert_eq!(r.overlap_efficiency(), 0.0);
    }

    #[test]
    fn merge_serial_adds_overlapped_comm() {
        let merged = SimReport::merge_serial(&[report(1.0, 100, 2.0), report(2.0, 50, 4.0)]);
        assert_eq!(merged.overlapped_comm(), Duration::from_secs(3.0));
        assert!((merged.overlap_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn goodput_is_makespan_over_wall_clock() {
        let r = report(2.0, 100, 1.0);
        assert!((r.goodput(Duration::from_secs(4.0)) - 0.5).abs() < 1e-12);
        // A failure-free run (wall clock == makespan) has goodput 1.
        assert_eq!(r.goodput(Duration::from_secs(2.0)), 1.0);
        assert_eq!(r.goodput(Duration::ZERO), 0.0);
        // Wall clock can never be shorter than the useful work.
        assert_eq!(r.goodput(Duration::from_secs(1.0)), 1.0);
    }

    #[test]
    fn display_mentions_utilization() {
        assert!(report(1.0, 100, 1.0).to_string().contains("util"));
    }

    #[test]
    #[should_panic(expected = "cannot merge zero reports")]
    fn merging_nothing_panics() {
        SimReport::merge_serial(&[]);
    }

    #[test]
    fn merge_serial_uses_relative_peak_flops_tolerance() {
        // At TPU scale (~1e14 FLOP/s) a one-ULP difference is ~1e-2 in
        // absolute terms — far beyond the old absolute 1e-3 window, but
        // well within a relative one.
        let mut a = report(1.0, 100, 2.0);
        let mut b = report(2.0, 50, 4.0);
        a.peak_flops = 272e12;
        b.peak_flops = 272e12 * (1.0 + 1e-15);
        assert_ne!(a.peak_flops, b.peak_flops);
        let merged = SimReport::merge_serial(&[a, b]);
        assert_eq!(merged.makespan(), Duration::from_secs(3.0));
    }

    #[test]
    #[should_panic(expected = "peak FLOPs mismatch")]
    fn merge_serial_rejects_genuinely_different_peaks() {
        let mut a = report(1.0, 100, 2.0);
        let mut b = report(2.0, 50, 4.0);
        a.peak_flops = 272e12;
        b.peak_flops = 275e12;
        SimReport::merge_serial(&[a, b]);
    }
}
