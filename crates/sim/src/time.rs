//! Simulation time.
//!
//! Times and durations are `f64` seconds wrapped in newtypes with *total*
//! ordering (`f64::total_cmp`), so they can key the event heap. All event
//! processing is single-threaded and performed in a deterministic order, so
//! simulations are bit-reproducible.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulation time, in seconds since the start of the run.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Time(f64);

/// A span of simulation time, in seconds.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Duration(f64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        Time(secs)
    }

    /// The time as seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// A zero-length duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        Duration(secs)
    }

    /// Creates a duration from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    pub fn from_micros(us: f64) -> Self {
        Duration::from_secs(us * 1e-6)
    }

    /// The duration as seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration as microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Eq for Time {}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Eq for Duration {}

impl Ord for Duration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Duration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<Duration> for Time {
    type Output = Time;

    fn add(self, d: Duration) -> Time {
        Time(self.0 + d.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;

    /// The span between two times.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self` by more than rounding error.
    fn sub(self, rhs: Time) -> Duration {
        let d = self.0 - rhs.0;
        assert!(d > -1e-12, "negative duration {d}");
        Duration(d.max(0.0))
    }
}

impl Add for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 * 1e6)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.0 * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_secs(1.0) + Duration::from_secs(0.5);
        assert_eq!(t.as_secs(), 1.5);
        assert_eq!((t - Time::from_secs(1.0)).as_secs(), 0.5);
    }

    #[test]
    fn ordering_is_total() {
        let a = Time::from_secs(1.0);
        let b = Time::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn micros_conversion() {
        let d = Duration::from_micros(2.5);
        assert!((d.as_secs() - 2.5e-6).abs() < 1e-15);
        assert!((d.as_micros() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        Duration::from_secs(-1.0);
    }

    #[test]
    fn display_in_microseconds() {
        assert_eq!(Duration::from_micros(1.0).to_string(), "1.000us");
    }
}
