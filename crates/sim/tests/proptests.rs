//! Property-based tests of the simulator's invariants.

use meshslice_mesh::{ChipId, CommAxis, Torus2d};
use meshslice_sim::{Engine, GemmShape, ProgramBuilder, SimConfig};
use proptest::prelude::*;

fn cfg() -> SimConfig {
    SimConfig::tpu_v4()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A chain of GeMMs on one chip takes exactly the sum of their times
    /// (no hidden parallelism, no lost time), for any chain length.
    #[test]
    fn serial_compute_is_additive(count in 1usize..6, dim in 6usize..10) {
        let n = 1usize << dim; // 64..512
        let mesh = Torus2d::new(1, 1);
        let shape = GemmShape::new(n, n, n);
        let mut b = ProgramBuilder::new(&mesh);
        let mut prev = None;
        for _ in 0..count {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(b.gemm(ChipId(0), shape, &deps));
        }
        let report = Engine::new(mesh.clone(), cfg()).run(&b.build());

        let mut single = ProgramBuilder::new(&mesh);
        single.gemm(ChipId(0), shape, &[]);
        let one = Engine::new(mesh, cfg()).run(&single.build());
        let ratio = report.makespan().as_secs() / one.makespan().as_secs();
        prop_assert!((ratio - count as f64).abs() < 1e-6, "ratio {ratio} vs {count}");
    }

    /// Ring AllGather time grows monotonically with shard size and with
    /// ring length.
    #[test]
    fn collective_time_is_monotone(
        ring in 2usize..9,
        kib in 1u64..512,
    ) {
        let run = |ring: usize, bytes: u64| {
            let mesh = Torus2d::new(ring, 1);
            let mut b = ProgramBuilder::new(&mesh);
            let tag = b.next_tag();
            for chip in mesh.chips() {
                b.all_gather(chip, tag, CommAxis::InterRow, bytes, &[]);
            }
            Engine::new(mesh, cfg()).run(&b.build()).makespan()
        };
        let bytes = kib * 1024;
        prop_assert!(run(ring, 2 * bytes) >= run(ring, bytes));
        if ring < 8 {
            prop_assert!(run(ring + 1, bytes) >= run(ring, bytes));
        }
    }

    /// Busy-time accounting is conserved: the per-category totals of a
    /// compute-only program equal the known op durations.
    #[test]
    fn compute_accounting_is_exact(count in 1usize..5) {
        let mesh = Torus2d::new(2, 2);
        let shape = GemmShape::new(256, 256, 256);
        let mut b = ProgramBuilder::new(&mesh);
        for chip in mesh.chips() {
            for _ in 0..count {
                b.gemm(chip, shape, &[]);
            }
        }
        let c = cfg();
        let report = Engine::new(mesh, c.clone()).run(&b.build());
        let per_gemm = c.gemm_flop_time(shape).as_secs() + c.t_kernel_launch.as_secs();
        let expect = per_gemm * (4 * count) as f64;
        prop_assert!(
            (report.totals().compute.as_secs() - expect).abs() < 1e-9,
            "accounted {} vs expected {expect}",
            report.totals().compute.as_secs()
        );
        prop_assert_eq!(report.totals().comm_total().as_secs(), 0.0);
    }

    /// Doubling every hardware overhead never makes a program faster.
    #[test]
    fn overheads_are_monotone(ring in 2usize..6, s in 1usize..4) {
        let mesh = Torus2d::new(ring, ring);
        let mut b = ProgramBuilder::new(&mesh);
        for _ in 0..s {
            let tag = b.next_tag();
            for chip in mesh.chips() {
                let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 18, &[]);
                b.gemm(chip, GemmShape::new(128, 128, 128), &[ag]);
            }
        }
        let program = b.build();
        let base = cfg();
        let slow = SimConfig {
            t_sync: meshslice_sim::Duration::from_micros(base.t_sync.as_micros() * 2.0),
            t_launch: meshslice_sim::Duration::from_micros(base.t_launch.as_micros() * 2.0),
            link_bandwidth: base.link_bandwidth / 2.0,
            ..base.clone()
        };
        let fast_t = Engine::new(mesh.clone(), base).run(&program).makespan();
        let slow_t = Engine::new(mesh, slow).run(&program).makespan();
        prop_assert!(slow_t >= fast_t);
    }

    /// Traced completions are consistent: every op completes within the
    /// makespan, and dependencies complete no later than their dependents.
    #[test]
    fn trace_respects_dependencies(ring in 2usize..5, s in 1usize..4) {
        let mesh = Torus2d::new(ring, 1);
        let mut b = ProgramBuilder::new(&mesh);
        for _ in 0..s {
            let tag = b.next_tag();
            for chip in mesh.chips() {
                let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 16, &[]);
                b.gemm(chip, GemmShape::new(64, 64, 64), &[ag]);
            }
        }
        let program = b.build();
        let (report, traces) = Engine::new(mesh, cfg()).run_traced(&program);
        prop_assert_eq!(traces.len(), program.len());
        for (i, op) in program.ops().iter().enumerate() {
            prop_assert!(traces[i].completed <= report.makespan());
            for d in &op.deps {
                prop_assert!(traces[d.index()].completed <= traces[i].completed);
            }
        }
    }
}
