//! Critical-path extraction and slack analysis over a realized schedule.
//!
//! The engine's [`RunTimeline`] records, for every lowered node, when its
//! dependencies were satisfied, when it acquired its exclusive resource,
//! and when it ran. The makespan-constraining chain is recovered by
//! walking backwards from the last node to finish: at each node the
//! binding predecessor is either the resource holder that released the
//! lane to it (the node *queued*) or the dependency that finished last
//! (the node was *data-bound*). Because a released lane is handed over at
//! exactly the releasing node's finish time, and a node becomes ready at
//! exactly its last dependency's finish time, consecutive path segments
//! abut bit-for-bit and their durations telescope to the makespan.

use std::collections::HashSet;

use meshslice_mesh::ChipId;
use meshslice_sim::{OpId, RunTimeline, SpanKind};

/// What a stretch of critical-path time was spent on: one of the busy
/// [`SpanKind`]s, or the synchronization delay paid before going busy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PathKind {
    /// GeMM execution.
    Compute,
    /// Blocked slicing copies.
    Slice,
    /// Communication launch overhead.
    CommLaunch,
    /// Ring-step / pipeline synchronization delay.
    CommSync,
    /// Shard transfer occupancy.
    CommTransfer,
}

impl PathKind {
    /// Stable lowercase label, used in JSON artifacts and tables.
    pub fn label(&self) -> &'static str {
        match self {
            PathKind::Compute => "compute",
            PathKind::Slice => "slice",
            PathKind::CommLaunch => "comm_launch",
            PathKind::CommSync => "comm_sync",
            PathKind::CommTransfer => "comm_transfer",
        }
    }

    /// All kinds, in bucket order.
    pub const ALL: [PathKind; 5] = [
        PathKind::Compute,
        PathKind::Slice,
        PathKind::CommLaunch,
        PathKind::CommSync,
        PathKind::CommTransfer,
    ];
}

impl From<SpanKind> for PathKind {
    fn from(kind: SpanKind) -> Self {
        match kind {
            SpanKind::Compute => PathKind::Compute,
            SpanKind::Slice => PathKind::Slice,
            SpanKind::CommLaunch => PathKind::CommLaunch,
            SpanKind::CommTransfer => PathKind::CommTransfer,
        }
    }
}

/// One contiguous stretch of the critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct PathSegment {
    /// Index of the lowered node (into [`RunTimeline::nodes`]).
    pub node: usize,
    /// The program operation the node belongs to.
    pub op: OpId,
    /// The chip the time was spent on.
    pub chip: ChipId,
    /// What the time was spent on.
    pub kind: PathKind,
    /// Segment start, seconds.
    pub start: f64,
    /// Segment end, seconds.
    pub end: f64,
}

impl PathSegment {
    /// Segment duration, seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// Critical-path totals per [`PathKind`], summing to the makespan.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PathAttribution {
    /// Seconds of critical-path GeMM execution.
    pub compute: f64,
    /// Seconds of critical-path slicing copies.
    pub slice: f64,
    /// Seconds of critical-path launch overhead.
    pub comm_launch: f64,
    /// Seconds of critical-path synchronization delay.
    pub comm_sync: f64,
    /// Seconds of critical-path shard transfer.
    pub comm_transfer: f64,
}

impl PathAttribution {
    /// Sum of all buckets — equals the makespan up to float rounding.
    pub fn total(&self) -> f64 {
        self.compute + self.slice + self.comm_launch + self.comm_sync + self.comm_transfer
    }

    /// The bucket for `kind`.
    pub fn get(&self, kind: PathKind) -> f64 {
        match kind {
            PathKind::Compute => self.compute,
            PathKind::Slice => self.slice,
            PathKind::CommLaunch => self.comm_launch,
            PathKind::CommSync => self.comm_sync,
            PathKind::CommTransfer => self.comm_transfer,
        }
    }

    fn add(&mut self, kind: PathKind, secs: f64) {
        match kind {
            PathKind::Compute => self.compute += secs,
            PathKind::Slice => self.slice += secs,
            PathKind::CommLaunch => self.comm_launch += secs,
            PathKind::CommSync => self.comm_sync += secs,
            PathKind::CommTransfer => self.comm_transfer += secs,
        }
    }
}

/// The extracted critical path of one run.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// Path segments in chronological order, abutting, covering
    /// `[0, makespan]`.
    pub segments: Vec<PathSegment>,
    /// The run's makespan, seconds.
    pub makespan: f64,
}

impl CriticalPath {
    /// Extracts the makespan-constraining chain from a realized schedule.
    ///
    /// Returns an empty path for an empty timeline.
    pub fn extract(timeline: &RunTimeline) -> CriticalPath {
        let nodes = &timeline.nodes;
        if nodes.is_empty() {
            return CriticalPath {
                segments: Vec::new(),
                makespan: 0.0,
            };
        }
        // Start from the last node to finish (ties → lowest index, for
        // determinism).
        let mut current = (0..nodes.len())
            .max_by(|&a, &b| {
                nodes[a]
                    .finish
                    .as_secs()
                    .total_cmp(&nodes[b].finish.as_secs())
                    .then(b.cmp(&a))
            })
            .unwrap();
        let makespan = nodes[current].finish.as_secs();
        let mut segments = Vec::new();
        let mut visited = HashSet::new();
        loop {
            if !visited.insert(current) {
                // Defensive: the timing invariants make a cycle
                // impossible, but never loop forever on a corrupt input.
                break;
            }
            let rec = &nodes[current];
            let ready = rec.ready.as_secs();
            let acquired = rec.acquired.as_secs();
            let busy_start = rec.busy_start.as_secs();
            let finish = rec.finish.as_secs();
            // The node's own contribution: sync delay, then busy time.
            if finish > busy_start {
                segments.push(PathSegment {
                    node: current,
                    op: rec.op,
                    chip: rec.chip,
                    kind: rec.kind.into(),
                    start: busy_start,
                    end: finish,
                });
            }
            if busy_start > acquired {
                segments.push(PathSegment {
                    node: current,
                    op: rec.op,
                    chip: rec.chip,
                    kind: PathKind::CommSync,
                    start: acquired,
                    end: busy_start,
                });
            }
            // Binding predecessor: the resource holder if the node
            // queued past its ready time, else the last dependency.
            let next = if acquired > ready {
                rec.res_pred
            } else {
                rec.deps
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        nodes[a]
                            .finish
                            .as_secs()
                            .total_cmp(&nodes[b].finish.as_secs())
                            .then(b.cmp(&a))
                    })
                    .filter(|&d| nodes[d].finish.as_secs() >= ready)
            };
            match next {
                Some(p) => current = p,
                None => break,
            }
        }
        segments.reverse();
        CriticalPath { segments, makespan }
    }

    /// Critical-path time per [`PathKind`]; `total()` equals the
    /// makespan up to float rounding.
    pub fn attribution(&self) -> PathAttribution {
        let mut attr = PathAttribution::default();
        for s in &self.segments {
            attr.add(s.kind, s.duration());
        }
        attr
    }

    /// Critical-path time per `(chip, kind)`, sorted by descending
    /// duration — answers "which chip's ring sync bounds this run".
    pub fn by_chip_kind(&self) -> Vec<(ChipId, PathKind, f64)> {
        let mut acc: Vec<(ChipId, PathKind, f64)> = Vec::new();
        for s in &self.segments {
            match acc
                .iter_mut()
                .find(|(c, k, _)| *c == s.chip && *k == s.kind)
            {
                Some((_, _, d)) => *d += s.duration(),
                None => acc.push((s.chip, s.kind, s.duration())),
            }
        }
        acc.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.index().cmp(&b.0.index())));
        acc
    }

    /// Critical-path time per program operation, sorted by descending
    /// duration.
    pub fn by_op(&self) -> Vec<(OpId, f64)> {
        let mut acc: Vec<(OpId, f64)> = Vec::new();
        for s in &self.segments {
            match acc.iter_mut().find(|(o, _)| *o == s.op) {
                Some((_, d)) => *d += s.duration(),
                None => acc.push((s.op, s.duration())),
            }
        }
        acc.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.index().cmp(&b.0.index())));
        acc
    }
}

/// Per-node slack: how much later each node could have finished without
/// moving the makespan, given the realized resource assignment.
///
/// Computed by a single backward (CPM-style) pass over the completion
/// order, which topologically orders both dependency and
/// resource-handoff edges. Critical-path nodes get slack 0.
pub fn node_slacks(timeline: &RunTimeline) -> Vec<f64> {
    let nodes = &timeline.nodes;
    let n = nodes.len();
    if n == 0 {
        return Vec::new();
    }
    let makespan = timeline
        .finish_seq
        .last()
        .map(|&i| nodes[i].finish.as_secs())
        .unwrap_or(0.0);
    // Successor lists: dependency edges plus resource-handoff edges.
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, rec) in nodes.iter().enumerate() {
        for &d in &rec.deps {
            succs[d].push(i);
        }
        if let Some(p) = rec.res_pred {
            succs[p].push(i);
        }
    }
    // Latest finish: bounded by every successor's latest acquisition.
    let mut lf = vec![f64::INFINITY; n];
    for &i in timeline.finish_seq.iter().rev() {
        let mut latest = makespan;
        for &s in &succs[i] {
            let held = nodes[s].finish.as_secs() - nodes[s].acquired.as_secs();
            latest = latest.min(lf[s] - held);
        }
        lf[i] = latest;
    }
    (0..n)
        .map(|i| (lf[i] - nodes[i].finish.as_secs()).max(0.0))
        .collect()
}

/// Minimum slack per program operation, indexed by [`OpId`].
pub fn op_slacks(timeline: &RunTimeline, num_ops: usize) -> Vec<f64> {
    let slacks = node_slacks(timeline);
    let mut per_op = vec![f64::INFINITY; num_ops];
    for (rec, s) in timeline.nodes.iter().zip(&slacks) {
        let op = rec.op.index();
        if op < num_ops {
            per_op[op] = per_op[op].min(*s);
        }
    }
    for s in &mut per_op {
        if !s.is_finite() {
            *s = 0.0;
        }
    }
    per_op
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_mesh::{CommAxis, Torus2d};
    use meshslice_sim::{Engine, GemmShape, Program, ProgramBuilder, SimConfig};

    fn ring_program(mesh: &Torus2d) -> Program {
        let mut b = ProgramBuilder::new(mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(1024, 1024, 1024), &[ag]);
        }
        b.build()
    }

    #[test]
    fn path_telescopes_to_the_makespan() {
        let mesh = Torus2d::new(4, 2);
        let program = ring_program(&mesh);
        let (report, _, timeline) =
            Engine::new(mesh, SimConfig::tpu_v4()).run_instrumented(&program);
        let path = CriticalPath::extract(&timeline);
        assert!(!path.segments.is_empty());
        assert_eq!(path.makespan, report.makespan().as_secs());
        // Chronological, abutting, ending at the makespan.
        assert!(path.segments.first().unwrap().start.abs() < 1e-12);
        for pair in path.segments.windows(2) {
            assert!(
                (pair[0].end - pair[1].start).abs() < 1e-12,
                "gap between {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
        assert!((path.segments.last().unwrap().end - path.makespan).abs() < 1e-12);
        // Attribution telescopes.
        let total = path.attribution().total();
        assert!(
            (total - path.makespan).abs() < 1e-9 * path.makespan.max(1.0),
            "attribution {total} vs makespan {}",
            path.makespan
        );
    }

    #[test]
    fn single_gemm_path_is_pure_compute() {
        let mesh = Torus2d::new(1, 1);
        let mut b = ProgramBuilder::new(&mesh);
        b.gemm(
            meshslice_mesh::ChipId(0),
            GemmShape::new(2048, 2048, 2048),
            &[],
        );
        let (report, _, timeline) =
            Engine::new(mesh, SimConfig::tpu_v4()).run_instrumented(&b.build());
        let path = CriticalPath::extract(&timeline);
        let attr = path.attribution();
        assert!((attr.total() - report.makespan().as_secs()).abs() < 1e-12);
        assert_eq!(attr.comm_transfer, 0.0);
        assert!(attr.compute > 0.0);
    }

    #[test]
    fn straggler_pulls_the_path_across_chips() {
        // Chip 0 computes before joining the ring, and chip 1 runs a
        // large GeMM gated on the gathered result. Chip 1's forwarding
        // steps stall on chip 0's late shard, so chip 1's GeMM finishes
        // strictly last and its chain routes back through chip 0's GeMM
        // — the path must cross chips.
        let mesh = Torus2d::new(4, 1);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            if chip.index() == 0 {
                let g = b.gemm(chip, GemmShape::new(4096, 4096, 4096), &[]);
                b.all_gather(chip, tag, CommAxis::InterRow, 4 << 20, &[g]);
            } else {
                let ag = b.all_gather(chip, tag, CommAxis::InterRow, 4 << 20, &[]);
                if chip.index() == 1 {
                    b.gemm(chip, GemmShape::new(4096, 4096, 4096), &[ag]);
                }
            }
        }
        let (_, _, timeline) = Engine::new(mesh, SimConfig::tpu_v4()).run_instrumented(&b.build());
        let path = CriticalPath::extract(&timeline);
        let chips: HashSet<usize> = path.segments.iter().map(|s| s.chip.index()).collect();
        assert!(chips.contains(&0), "path skipped the straggler: {chips:?}");
        assert!(chips.len() > 1, "path stayed on chips {chips:?}");
        let attr = path.attribution();
        assert!(attr.compute > 0.0);
        assert!(attr.comm_transfer > 0.0);
    }

    #[test]
    fn slacks_are_nonnegative_and_zero_on_the_path() {
        // Chip 0's GeMM is 8x larger than everyone else's, so the other
        // chips' compute sits off the critical path with real slack.
        let mesh = Torus2d::new(4, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            let side = if chip.index() == 0 { 4096 } else { 512 };
            b.gemm(chip, GemmShape::new(side, side, side), &[ag]);
        }
        let program = b.build();
        let (_, _, timeline) = Engine::new(mesh, SimConfig::tpu_v4()).run_instrumented(&program);
        let slacks = node_slacks(&timeline);
        assert!(slacks.iter().all(|&s| s >= 0.0));
        let path = CriticalPath::extract(&timeline);
        for seg in &path.segments {
            assert!(
                slacks[seg.node] < 1e-9,
                "critical node {} has slack {}",
                seg.node,
                slacks[seg.node]
            );
        }
        // Some off-path node has real slack in this program.
        assert!(slacks.iter().any(|&s| s > 1e-9));
        let per_op = op_slacks(&timeline, program.len());
        assert_eq!(per_op.len(), program.len());
        assert!(per_op.iter().all(|&s| s >= 0.0));
    }
}
