//! Diffing two metric artifacts: makespan/bucket/overlap deltas,
//! critical-path shifts, and an ASCII per-lane utilization heatmap.

use std::fmt;

use crate::critical_path::PathKind;
use crate::metrics::{RunMetrics, BUCKET_LABELS, LANE_LABELS};

/// Utilization shade ramp, darkest last.
const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

fn shade(utilization: f64) -> char {
    let idx = (utilization.clamp(0.0, 1.0) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[idx]
}

/// The comparison of two runs, ready to render.
#[derive(Clone, Debug)]
pub struct RunDiff {
    /// Baseline metrics.
    pub a: RunMetrics,
    /// Candidate metrics.
    pub b: RunMetrics,
}

impl RunDiff {
    /// Pairs two artifacts for comparison.
    pub fn new(a: RunMetrics, b: RunMetrics) -> RunDiff {
        RunDiff { a, b }
    }

    /// Makespan change, `b - a`, seconds (negative = faster).
    pub fn makespan_delta(&self) -> f64 {
        self.b.makespan - self.a.makespan
    }

    /// Relative makespan change, `(b - a) / a`.
    pub fn makespan_rel(&self) -> f64 {
        if self.a.makespan == 0.0 {
            0.0
        } else {
            self.makespan_delta() / self.a.makespan
        }
    }

    fn lane_util(m: &RunMetrics, chip: usize, lane: usize) -> f64 {
        m.lanes
            .iter()
            .find(|l| l.chip == chip && l.lane == lane)
            .map(|l| l.utilization)
            .unwrap_or(0.0)
    }

    /// Renders the per-chip, per-lane utilization heatmap of both runs
    /// side by side. Rows are chips, columns are the six lanes
    /// (compute, four link directions, host).
    pub fn heatmap(&self) -> String {
        let chips = self.a.num_chips.max(self.b.num_chips);
        let mut out = String::new();
        out.push_str("      lanes: ");
        out.push_str(&LANE_LABELS.join(" "));
        out.push_str(&format!(
            "   (shade ramp \"{}\")\n",
            SHADES.iter().collect::<String>()
        ));
        out.push_str("chip    A        B\n");
        for chip in 0..chips {
            let row = |m: &RunMetrics| -> String {
                (0..6)
                    .map(|lane| shade(Self::lane_util(m, chip, lane)))
                    .collect()
            };
            out.push_str(&format!(
                "{chip:>4}  [{}]  [{}]\n",
                row(&self.a),
                row(&self.b)
            ));
        }
        out
    }

    /// The lanes whose utilization changed the most, descending by
    /// absolute change: `(chip, lane, a, b)`.
    pub fn top_lane_changes(&self, limit: usize) -> Vec<(usize, usize, f64, f64)> {
        let chips = self.a.num_chips.max(self.b.num_chips);
        let mut changes: Vec<(usize, usize, f64, f64)> = (0..chips)
            .flat_map(|chip| (0..6).map(move |lane| (chip, lane)))
            .map(|(chip, lane)| {
                (
                    chip,
                    lane,
                    Self::lane_util(&self.a, chip, lane),
                    Self::lane_util(&self.b, chip, lane),
                )
            })
            .filter(|(_, _, a, b)| (a - b).abs() > 1e-12)
            .collect();
        changes.sort_by(|x, y| (y.3 - y.2).abs().total_cmp(&(x.3 - x.2).abs()));
        changes.truncate(limit);
        changes
    }
}

fn meta_line(m: &RunMetrics) -> String {
    if m.meta.is_empty() {
        "(unlabeled)".to_string()
    } else {
        m.meta
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

impl fmt::Display for RunDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "A: {}", meta_line(&self.a))?;
        writeln!(f, "B: {}", meta_line(&self.b))?;
        writeln!(
            f,
            "makespan      {:>12.6e}  {:>12.6e}  {:>+8.2}%",
            self.a.makespan,
            self.b.makespan,
            self.makespan_rel() * 100.0
        )?;
        writeln!(
            f,
            "flop util     {:>11.2}%  {:>11.2}%  {:>+8.2}pp",
            self.a.flop_utilization * 100.0,
            self.b.flop_utilization * 100.0,
            (self.b.flop_utilization - self.a.flop_utilization) * 100.0
        )?;
        writeln!(
            f,
            "overlap eff   {:>11.2}%  {:>11.2}%  {:>+8.2}pp",
            self.a.overlap_efficiency * 100.0,
            self.b.overlap_efficiency * 100.0,
            (self.b.overlap_efficiency - self.a.overlap_efficiency) * 100.0
        )?;
        writeln!(f, "-- busy-time buckets (cluster seconds) --")?;
        for (i, label) in BUCKET_LABELS.iter().enumerate() {
            let (a, b) = (self.a.buckets[i], self.b.buckets[i]);
            let rel = if a > 0.0 { (b - a) / a * 100.0 } else { 0.0 };
            writeln!(f, "{label:<14}{a:>12.6e}  {b:>12.6e}  {rel:>+8.2}%")?;
        }
        writeln!(f, "-- critical path (seconds) --")?;
        for kind in PathKind::ALL {
            let (a, b) = (
                self.a.critical_path.get(kind),
                self.b.critical_path.get(kind),
            );
            writeln!(f, "{:<14}{a:>12.6e}  {b:>12.6e}", kind.label())?;
        }
        writeln!(f, "-- lane utilization --")?;
        write!(f, "{}", self.heatmap())?;
        let top = self.top_lane_changes(5);
        if !top.is_empty() {
            writeln!(f, "-- largest lane shifts --")?;
            for (chip, lane, a, b) in top {
                writeln!(
                    f,
                    "chip {chip:<3} {:<8} {:>6.1}% -> {:>6.1}%",
                    LANE_LABELS[lane],
                    a * 100.0,
                    b * 100.0
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_mesh::{CommAxis, Torus2d};
    use meshslice_sim::{Engine, GemmShape, ProgramBuilder, SimConfig};

    fn metrics(shard: u64) -> RunMetrics {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, shard, &[]);
            b.gemm(chip, GemmShape::new(1024, 1024, 1024), &[]);
        }
        let program = b.build();
        let (report, spans, timeline) =
            Engine::new(mesh, SimConfig::tpu_v4()).run_instrumented(&program);
        RunMetrics::collect(&report, &spans, &timeline, program.len(), 4)
    }

    #[test]
    fn diff_reports_the_direction_of_change() {
        let diff = RunDiff::new(metrics(1 << 20), metrics(16 << 20));
        // More bytes on the wire: the candidate is slower.
        assert!(diff.makespan_delta() > 0.0);
        assert!(diff.makespan_rel() > 0.0);
    }

    #[test]
    fn heatmap_has_one_row_per_chip() {
        let diff = RunDiff::new(metrics(1 << 20), metrics(4 << 20));
        let map = diff.heatmap();
        let rows = map.lines().filter(|l| l.contains('[')).count();
        assert_eq!(rows, 4);
        // Each bracketed panel holds six lane cells.
        for line in map.lines().filter(|l| l.contains('[')) {
            let first = line.find('[').unwrap();
            let close = line.find(']').unwrap();
            assert_eq!(close - first - 1, 6, "line {line:?}");
        }
    }

    #[test]
    fn display_covers_every_section() {
        let text = RunDiff::new(metrics(1 << 20), metrics(4 << 20)).to_string();
        for needle in [
            "makespan",
            "overlap eff",
            "critical path",
            "lane utilization",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn shade_ramp_is_monotone() {
        assert_eq!(shade(0.0), ' ');
        assert_eq!(shade(1.0), '@');
        let mut prev = 0usize;
        for i in 0..=10 {
            let c = shade(i as f64 / 10.0);
            let idx = SHADES.iter().position(|&s| s == c).unwrap();
            assert!(idx >= prev);
            prev = idx;
        }
    }
}
