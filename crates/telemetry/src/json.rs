//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The workspace builds hermetically with no registry access, so the
//! telemetry crate carries its own small JSON implementation instead of
//! depending on `serde_json`. It supports exactly what the metric and
//! tuning-log artifacts need: objects with ordered keys, arrays, finite
//! numbers, strings with escape handling, booleans, and null.

use std::fmt;

/// A JSON value.
///
/// Object keys keep insertion order so emitted artifacts are
/// deterministic and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number. Non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value rounded to `usize`, if this is a non-negative
    /// number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(n.round() as usize),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message with a byte offset on malformed
    /// input, including trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

/// Shortest representation that round-trips: integers without a decimal
/// point, everything else via `{:?}` (Rust's shortest-roundtrip float
/// formatting).
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        return "null".to_string();
    }
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n:?}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::Str("fc1 \"fwd\"".to_string())),
            ("makespan", Json::Num(0.0123)),
            ("chips", Json::Num(16.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "buckets",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3e-9)]),
            ),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let parsed = Json::parse(r#"{"s": "a\nb\t\"c\" é π"}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("a\nb\t\"c\" é π"));
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::Num(16.0).to_string_compact(), "16");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"abc"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_round_trip_is_exact() {
        let n = 0.1 + 0.2;
        let text = Json::Num(n).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(n));
    }
}
