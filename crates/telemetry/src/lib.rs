//! Observability layer over the MeshSlice simulator.
//!
//! The simulator reports end-of-run totals; this crate answers *why* a
//! schedule's makespan is what it is:
//!
//! - [`CriticalPath`] walks the realized schedule backwards from the
//!   last node to finish and attributes every critical nanosecond to a
//!   `(chip, op, kind)` — plus per-node and per-op slack from a CPM-style
//!   backward pass ([`node_slacks`], [`op_slacks`]).
//! - [`RunMetrics`] aggregates a run into per-lane busy fractions,
//!   windowed utilization time series, the five Figure 10 buckets, and
//!   the overlap efficiency scalar, with JSON and Prometheus exports.
//! - [`TuneLog`] records predicted-vs-simulated makespan for every
//!   autotuner candidate (the paper's Figure 15 error analysis).
//! - [`RunDiff`] compares two metric artifacts with an ASCII per-lane
//!   utilization heatmap.
//! - [`ServingTrace`] records per-request lifecycle events from the
//!   serving fleet event loop (via the [`TraceSink`] hook), exports
//!   JSONL and chrome-trace, and decomposes tail TTFT into
//!   queueing/prefill/preemption/failover blame ([`BlameReport`]).
//! - [`ReplicaSeriesBuilder`]/[`FleetSeries`] fold the same events into
//!   windowed per-replica time-series in O(windows) memory, and
//!   [`FleetDiff`] compares two serving runs like [`RunDiff`] compares
//!   two training runs.
//!
//! Everything is built on [`meshslice_sim::Engine::run_instrumented`],
//! works under fault profiles, and serializes through the dependency-free
//! [`Json`] value.
//!
//! # Example
//!
//! ```
//! use meshslice_mesh::{CommAxis, Torus2d};
//! use meshslice_sim::{Engine, GemmShape, ProgramBuilder, SimConfig};
//! use meshslice_telemetry::{CriticalPath, RunMetrics};
//!
//! let mesh = Torus2d::new(2, 2);
//! let mut b = ProgramBuilder::new(&mesh);
//! let tag = b.next_tag();
//! for chip in mesh.chips() {
//!     let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
//!     b.gemm(chip, GemmShape::new(512, 512, 512), &[ag]);
//! }
//! let program = b.build();
//! let (report, spans, timeline) =
//!     Engine::new(mesh, SimConfig::tpu_v4()).run_instrumented(&program);
//! let path = CriticalPath::extract(&timeline);
//! assert!((path.attribution().total() - report.makespan().as_secs()).abs() < 1e-9);
//! let metrics = RunMetrics::collect(&report, &spans, &timeline, program.len(), 16);
//! assert!(metrics.overlap_efficiency >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod critical_path;
mod diff;
mod json;
mod metrics;
mod percentile;
mod recovery;
mod schema;
mod serving_trace;
mod timeseries;
mod tunelog;

pub use critical_path::{
    node_slacks, op_slacks, CriticalPath, PathAttribution, PathKind, PathSegment,
};
pub use diff::RunDiff;
pub use json::Json;
pub use metrics::{
    spans_overlap_and_buckets, Hotspot, LaneStat, RunMetrics, WindowStat, BUCKET_LABELS,
    LANE_LABELS,
};
pub use percentile::{percentile, LatencySummary};
pub use recovery::{DowntimeBreakdown, RecoveryPhase, RecoverySpan, DOWNTIME_LABELS};
pub use schema::validate;
pub use serving_trace::{
    BlameBucket, BlameReport, NoopTraceSink, RecordingSink, ServingEvent, ServingTrace, TraceSink,
    TtftBlame, BLAME_BUCKETS,
};
pub use timeseries::{
    is_serving_artifact, FleetDelta, FleetDiff, FleetSeries, ReplicaSeries, ReplicaSeriesBuilder,
    SeriesWindow, BASE_WINDOW_SECS, MAX_WINDOWS,
};
pub use tunelog::{TuneCandidate, TuneLog};
