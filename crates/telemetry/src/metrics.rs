//! Aggregated per-run metrics: busy fractions, overlap, windowed
//! utilization time series, and critical-path attribution — the
//! machine-readable counterpart of the paper's Figures 4 and 10.

use meshslice_sim::{NodeSpan, SimReport, SpanKind, SpanTrack};

use crate::critical_path::{op_slacks, CriticalPath, PathAttribution, PathKind};
use crate::json::Json;
use crate::recovery::DowntimeBreakdown;
use meshslice_sim::RunTimeline;

/// Per-chip lane labels, in [`SpanTrack::lane`] order.
pub const LANE_LABELS: [&str; 6] = ["compute", "row+", "row-", "col+", "col-", "host"];

/// Busy time of one chip's execution lane.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneStat {
    /// Chip index.
    pub chip: usize,
    /// Lane index (see [`LANE_LABELS`]).
    pub lane: usize,
    /// Total busy seconds.
    pub busy: f64,
    /// Busy fraction of the makespan, in `[0, 1]`.
    pub utilization: f64,
}

/// Cluster-wide busy fractions over one time window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowStat {
    /// Window start, seconds.
    pub start: f64,
    /// Window end, seconds.
    pub end: f64,
    /// Mean compute-lane busy fraction across chips.
    pub compute: f64,
    /// Mean link-lane busy fraction across chips and directions.
    pub link: f64,
}

/// One critical-path hotspot: time the path spent on one chip doing one
/// kind of work.
#[derive(Clone, Debug, PartialEq)]
pub struct Hotspot {
    /// Chip index.
    pub chip: usize,
    /// What the time was spent on.
    pub kind: PathKind,
    /// Critical-path seconds.
    pub seconds: f64,
}

/// The complete metric artifact of one simulated run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMetrics {
    /// Free-form labels (model, mesh, slice count, …), emitted under
    /// `meta` in the JSON artifact.
    pub meta: Vec<(String, String)>,
    /// Wall-clock duration, seconds.
    pub makespan: f64,
    /// Cluster size.
    pub num_chips: usize,
    /// Achieved FLOP utilization.
    pub flop_utilization: f64,
    /// Fraction of transfer time hidden under compute.
    pub overlap_efficiency: f64,
    /// Cluster-wide busy seconds per category:
    /// `[compute, slice, comm_launch, comm_sync, comm_transfer]`.
    pub buckets: [f64; 5],
    /// Per-chip, per-lane busy time.
    pub lanes: Vec<LaneStat>,
    /// Windowed busy-fraction time series.
    pub windows: Vec<WindowStat>,
    /// Critical-path time per category; totals to the makespan.
    pub critical_path: PathAttribution,
    /// Critical-path time per `(chip, kind)`, descending.
    pub hotspots: Vec<Hotspot>,
    /// Slack statistics over program operations:
    /// `(min, mean, max)` seconds.
    pub slack: (f64, f64, f64),
    /// Failure/recovery downtime accounting; `None` for failure-free
    /// runs (and absent from their JSON artifacts, which stay
    /// byte-identical to pre-recovery ones).
    pub downtime: Option<DowntimeBreakdown>,
}

/// Bucket labels in the order of [`RunMetrics::buckets`].
pub const BUCKET_LABELS: [&str; 5] = [
    "compute",
    "slice",
    "comm_launch",
    "comm_sync",
    "comm_transfer",
];

impl RunMetrics {
    /// Builds the metric artifact from one instrumented run.
    ///
    /// `num_ops` is the program length (for per-op slack);
    /// `num_windows` controls the time-series resolution.
    pub fn collect(
        report: &SimReport,
        spans: &[NodeSpan],
        timeline: &RunTimeline,
        num_ops: usize,
        num_windows: usize,
    ) -> RunMetrics {
        let makespan = report.makespan().as_secs();
        let chips = report.num_chips();
        let totals = report.totals();

        let mut busy = vec![[0.0f64; 6]; chips];
        for s in spans {
            busy[s.chip.index()][s.track.lane()] += s.end.as_secs() - s.start.as_secs();
        }
        let lanes = (0..chips)
            .flat_map(|chip| (0..6).map(move |lane| (chip, lane)))
            .map(|(chip, lane)| LaneStat {
                chip,
                lane,
                busy: busy[chip][lane],
                utilization: if makespan > 0.0 {
                    (busy[chip][lane] / makespan).clamp(0.0, 1.0)
                } else {
                    0.0
                },
            })
            .collect();

        let windows = window_series(spans, makespan, chips, num_windows);

        let path = CriticalPath::extract(timeline);
        let hotspots = path
            .by_chip_kind()
            .into_iter()
            .map(|(chip, kind, seconds)| Hotspot {
                chip: chip.index(),
                kind,
                seconds,
            })
            .collect();

        let slacks = op_slacks(timeline, num_ops);
        let slack = if slacks.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            let min = slacks.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = slacks.iter().cloned().fold(0.0, f64::max);
            let mean = slacks.iter().sum::<f64>() / slacks.len() as f64;
            (min, mean, max)
        };

        RunMetrics {
            meta: Vec::new(),
            makespan,
            num_chips: chips,
            flop_utilization: report.flop_utilization(),
            overlap_efficiency: report.overlap_efficiency(),
            buckets: [
                totals.compute.as_secs(),
                totals.slice.as_secs(),
                totals.comm_launch.as_secs(),
                totals.comm_sync.as_secs(),
                totals.comm_transfer.as_secs(),
            ],
            lanes,
            windows,
            critical_path: path.attribution(),
            hotspots,
            slack,
            downtime: None,
        }
    }

    /// Adds a free-form label to the artifact's `meta` block.
    pub fn with_meta(mut self, key: &str, value: &str) -> Self {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// Attaches the failure/recovery downtime accounting of the run.
    pub fn with_downtime(mut self, downtime: DowntimeBreakdown) -> Self {
        self.downtime = Some(downtime);
        self
    }

    /// Mean compute-lane utilization across chips.
    pub fn mean_compute_utilization(&self) -> f64 {
        let (sum, n) = self
            .lanes
            .iter()
            .filter(|l| l.lane == 0)
            .fold((0.0, 0usize), |(s, n), l| (s + l.utilization, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Serializes to the JSON artifact (schema `schemas/metrics.schema.json`).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema_version", Json::Num(1.0)),
            (
                "meta",
                Json::Obj(
                    self.meta
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            ("makespan_s", Json::Num(self.makespan)),
            ("num_chips", Json::Num(self.num_chips as f64)),
            ("flop_utilization", Json::Num(self.flop_utilization)),
            ("overlap_efficiency", Json::Num(self.overlap_efficiency)),
            (
                "buckets_s",
                Json::Obj(
                    BUCKET_LABELS
                        .iter()
                        .zip(self.buckets)
                        .map(|(k, v)| (k.to_string(), Json::Num(v)))
                        .collect(),
                ),
            ),
            (
                "critical_path_s",
                Json::Obj(
                    PathKind::ALL
                        .iter()
                        .map(|k| (k.label().to_string(), Json::Num(self.critical_path.get(*k))))
                        .chain([("total".to_string(), Json::Num(self.critical_path.total()))])
                        .collect(),
                ),
            ),
            (
                "hotspots",
                Json::Arr(
                    self.hotspots
                        .iter()
                        .map(|h| {
                            Json::obj(vec![
                                ("chip", Json::Num(h.chip as f64)),
                                ("kind", Json::Str(h.kind.label().to_string())),
                                ("seconds", Json::Num(h.seconds)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "lanes",
                Json::Arr(
                    self.lanes
                        .iter()
                        .map(|l| {
                            Json::obj(vec![
                                ("chip", Json::Num(l.chip as f64)),
                                ("lane", Json::Str(LANE_LABELS[l.lane].to_string())),
                                ("busy_s", Json::Num(l.busy)),
                                ("utilization", Json::Num(l.utilization)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "windows",
                Json::Arr(
                    self.windows
                        .iter()
                        .map(|w| {
                            Json::obj(vec![
                                ("start_s", Json::Num(w.start)),
                                ("end_s", Json::Num(w.end)),
                                ("compute_util", Json::Num(w.compute)),
                                ("link_util", Json::Num(w.link)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "op_slack_s",
                Json::obj(vec![
                    ("min", Json::Num(self.slack.0)),
                    ("mean", Json::Num(self.slack.1)),
                    ("max", Json::Num(self.slack.2)),
                ]),
            ),
        ];
        if let Some(d) = &self.downtime {
            pairs.push(("downtime_s", d.to_json()));
        }
        Json::obj(pairs)
    }

    /// Deserializes a JSON artifact produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn from_json(doc: &Json) -> Result<RunMetrics, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let meta = match doc.get("meta") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                .collect(),
            _ => Vec::new(),
        };
        let buckets_obj = doc.get("buckets_s").ok_or("missing 'buckets_s'")?;
        let mut buckets = [0.0; 5];
        for (i, label) in BUCKET_LABELS.iter().enumerate() {
            buckets[i] = buckets_obj
                .get(label)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing bucket '{label}'"))?;
        }
        let cp = doc
            .get("critical_path_s")
            .ok_or("missing 'critical_path_s'")?;
        let cp_get = |label: &str| cp.get(label).and_then(Json::as_f64).unwrap_or(0.0);
        let critical_path = PathAttribution {
            compute: cp_get("compute"),
            slice: cp_get("slice"),
            comm_launch: cp_get("comm_launch"),
            comm_sync: cp_get("comm_sync"),
            comm_transfer: cp_get("comm_transfer"),
        };
        let hotspots = doc
            .get("hotspots")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|h| {
                let kind = PathKind::ALL
                    .into_iter()
                    .find(|k| Some(k.label()) == h.get("kind").and_then(Json::as_str))?;
                Some(Hotspot {
                    chip: h.get("chip")?.as_usize()?,
                    kind,
                    seconds: h.get("seconds")?.as_f64()?,
                })
            })
            .collect();
        let lanes = doc
            .get("lanes")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|l| {
                let label = l.get("lane").and_then(Json::as_str)?;
                Some(LaneStat {
                    chip: l.get("chip")?.as_usize()?,
                    lane: LANE_LABELS.iter().position(|x| *x == label)?,
                    busy: l.get("busy_s")?.as_f64()?,
                    utilization: l.get("utilization")?.as_f64()?,
                })
            })
            .collect();
        let windows = doc
            .get("windows")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(|w| {
                Some(WindowStat {
                    start: w.get("start_s")?.as_f64()?,
                    end: w.get("end_s")?.as_f64()?,
                    compute: w.get("compute_util")?.as_f64()?,
                    link: w.get("link_util")?.as_f64()?,
                })
            })
            .collect();
        let slack_obj = doc.get("op_slack_s");
        let slack_get = |label: &str| {
            slack_obj
                .and_then(|s| s.get(label))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        Ok(RunMetrics {
            meta,
            makespan: num("makespan_s")?,
            num_chips: doc
                .get("num_chips")
                .and_then(Json::as_usize)
                .ok_or("missing 'num_chips'")?,
            flop_utilization: num("flop_utilization")?,
            overlap_efficiency: num("overlap_efficiency")?,
            buckets,
            lanes,
            windows,
            critical_path,
            hotspots,
            slack: (slack_get("min"), slack_get("mean"), slack_get("max")),
            downtime: match doc.get("downtime_s") {
                Some(d) => Some(DowntimeBreakdown::from_json(d)?),
                None => None,
            },
        })
    }

    /// Renders Prometheus text-exposition-format gauges.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let labels: String = self
            .meta
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect::<Vec<_>>()
            .join(",");
        let base = |name: &str, extra: &str| {
            let mut all = labels.clone();
            if !extra.is_empty() {
                if !all.is_empty() {
                    all.push(',');
                }
                all.push_str(extra);
            }
            if all.is_empty() {
                name.to_string()
            } else {
                format!("{name}{{{all}}}")
            }
        };
        out.push_str("# TYPE meshslice_makespan_seconds gauge\n");
        out.push_str(&format!(
            "{} {}\n",
            base("meshslice_makespan_seconds", ""),
            self.makespan
        ));
        out.push_str("# TYPE meshslice_flop_utilization gauge\n");
        out.push_str(&format!(
            "{} {}\n",
            base("meshslice_flop_utilization", ""),
            self.flop_utilization
        ));
        out.push_str("# TYPE meshslice_overlap_efficiency gauge\n");
        out.push_str(&format!(
            "{} {}\n",
            base("meshslice_overlap_efficiency", ""),
            self.overlap_efficiency
        ));
        out.push_str("# TYPE meshslice_bucket_seconds gauge\n");
        for (label, v) in BUCKET_LABELS.iter().zip(self.buckets) {
            out.push_str(&format!(
                "{} {v}\n",
                base("meshslice_bucket_seconds", &format!("kind=\"{label}\""))
            ));
        }
        out.push_str("# TYPE meshslice_critical_path_seconds gauge\n");
        for kind in PathKind::ALL {
            out.push_str(&format!(
                "{} {}\n",
                base(
                    "meshslice_critical_path_seconds",
                    &format!("kind=\"{}\"", kind.label())
                ),
                self.critical_path.get(kind)
            ));
        }
        out.push_str("# TYPE meshslice_lane_utilization gauge\n");
        for l in &self.lanes {
            out.push_str(&format!(
                "{} {}\n",
                base(
                    "meshslice_lane_utilization",
                    &format!("chip=\"{}\",lane=\"{}\"", l.chip, LANE_LABELS[l.lane])
                ),
                l.utilization
            ));
        }
        out
    }
}

/// Cluster-wide busy-fraction time series over `num_windows` equal
/// windows of `[0, makespan]`.
fn window_series(
    spans: &[NodeSpan],
    makespan: f64,
    chips: usize,
    num_windows: usize,
) -> Vec<WindowStat> {
    if makespan <= 0.0 || num_windows == 0 || chips == 0 {
        return Vec::new();
    }
    let width = makespan / num_windows as f64;
    let mut compute = vec![0.0f64; num_windows];
    let mut link = vec![0.0f64; num_windows];
    for s in spans {
        let (acc, lanes) = match s.track {
            SpanTrack::Compute => (&mut compute, 1.0),
            SpanTrack::Link(_) => (&mut link, 4.0),
            SpanTrack::Host => continue,
        };
        let (a, b) = (s.start.as_secs(), s.end.as_secs());
        let first = ((a / width).floor() as usize).min(num_windows - 1);
        let last = ((b / width).ceil() as usize).min(num_windows);
        for (w, slot) in acc.iter_mut().enumerate().take(last).skip(first) {
            let lo = a.max(w as f64 * width);
            let hi = b.min((w + 1) as f64 * width);
            if hi > lo {
                *slot += (hi - lo) / (width * chips as f64 * lanes);
            }
        }
    }
    (0..num_windows)
        .map(|w| WindowStat {
            start: w as f64 * width,
            end: (w + 1) as f64 * width,
            compute: compute[w].clamp(0.0, 1.0),
            link: link[w].clamp(0.0, 1.0),
        })
        .collect()
}

/// Recomputes overlap and bucket totals directly from spans — the
/// reference implementation the engine's O(1) accounting is tested
/// against, and the tool for validating merged reports.
pub fn spans_overlap_and_buckets(spans: &[NodeSpan]) -> (f64, [f64; 5]) {
    let mut buckets = [0.0f64; 5];
    for s in spans {
        let idx = match s.kind {
            SpanKind::Compute => 0,
            SpanKind::Slice => 1,
            SpanKind::CommLaunch => 2,
            SpanKind::CommTransfer => 4,
        };
        buckets[idx] += s.end.as_secs() - s.start.as_secs();
    }
    let mut overlap = 0.0;
    for t in spans.iter().filter(|s| s.kind == SpanKind::CommTransfer) {
        for c in spans
            .iter()
            .filter(|s| s.chip == t.chip && s.track == SpanTrack::Compute)
        {
            let lo = t.start.as_secs().max(c.start.as_secs());
            let hi = t.end.as_secs().min(c.end.as_secs());
            if hi > lo {
                overlap += hi - lo;
            }
        }
    }
    (overlap, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meshslice_mesh::{CommAxis, Torus2d};
    use meshslice_sim::{Engine, GemmShape, ProgramBuilder, SimConfig};

    fn collect(rows: usize, cols: usize) -> RunMetrics {
        let mesh = Torus2d::new(rows, cols);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
            b.gemm(chip, GemmShape::new(2048, 2048, 2048), &[]);
        }
        let program = b.build();
        let (report, spans, timeline) =
            Engine::new(mesh, SimConfig::tpu_v4()).run_instrumented(&program);
        RunMetrics::collect(&report, &spans, &timeline, program.len(), 8)
    }

    #[test]
    fn collect_produces_consistent_metrics() {
        let m = collect(2, 2);
        assert!(m.makespan > 0.0);
        assert_eq!(m.num_chips, 4);
        assert!(m.overlap_efficiency > 0.0 && m.overlap_efficiency <= 1.0);
        assert_eq!(m.lanes.len(), 4 * 6);
        assert!(m.lanes.iter().all(|l| (0.0..=1.0).contains(&l.utilization)));
        assert_eq!(m.windows.len(), 8);
        assert!((m.windows[0].start - 0.0).abs() < 1e-12);
        assert!((m.windows[7].end - m.makespan).abs() < 1e-9);
        // Critical path totals to the makespan.
        assert!((m.critical_path.total() - m.makespan).abs() < 1e-9 * m.makespan);
        assert!(!m.hotspots.is_empty());
    }

    #[test]
    fn json_round_trip_preserves_the_artifact() {
        let m = collect(2, 2)
            .with_meta("model", "test")
            .with_meta("mesh", "2x2");
        let text = m.to_json().to_string_pretty();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn downtime_is_absent_by_default_and_round_trips_when_attached() {
        let plain = collect(2, 2);
        assert_eq!(plain.downtime, None);
        assert!(plain.to_json().get("downtime_s").is_none());

        let m = collect(2, 2).with_downtime(crate::DowntimeBreakdown {
            checkpoint: 18.0,
            lost: 5.5,
            detection: 0.5,
            restore: 2.0,
            degraded: 21.0,
            useful: 100.0,
            failures: 1,
        });
        let text = m.to_json().to_string_pretty();
        let back = RunMetrics::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(m, back);
        assert!(back.downtime.unwrap().goodput() < 1.0);
    }

    #[test]
    fn window_fractions_are_bounded_and_reflect_load() {
        let m = collect(2, 2);
        for w in &m.windows {
            assert!((0.0..=1.0).contains(&w.compute));
            assert!((0.0..=1.0).contains(&w.link));
        }
        // Something ran in the first window.
        assert!(m.windows[0].compute + m.windows[0].link > 0.0);
    }

    #[test]
    fn prometheus_output_has_one_line_per_gauge() {
        let m = collect(2, 2).with_meta("model", "t");
        let text = m.to_prometheus();
        assert!(text.contains("meshslice_makespan_seconds{model=\"t\"}"));
        assert!(text.contains("meshslice_bucket_seconds{model=\"t\",kind=\"compute\"}"));
        assert!(text.contains("lane=\"row+\""));
        // No NaNs or empty values.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().unwrap().is_finite(), "line {line}");
        }
    }

    #[test]
    fn span_recomputation_matches_engine_accounting() {
        let mesh = Torus2d::new(2, 2);
        let mut b = ProgramBuilder::new(&mesh);
        let tag = b.next_tag();
        for chip in mesh.chips() {
            b.all_gather(chip, tag, CommAxis::InterRow, 2 << 20, &[]);
            b.gemm(chip, GemmShape::new(4096, 4096, 4096), &[]);
        }
        let program = b.build();
        let (report, spans) = Engine::new(mesh, SimConfig::tpu_v4()).run_spans(&program);
        let (overlap, buckets) = spans_overlap_and_buckets(&spans);
        assert!((overlap - report.overlapped_comm().as_secs()).abs() < 1e-9);
        let totals = report.totals();
        for (got, want) in buckets.iter().zip([
            totals.compute.as_secs(),
            totals.slice.as_secs(),
            totals.comm_launch.as_secs(),
            0.0, // comm_sync has no busy spans
            totals.comm_transfer.as_secs(),
        ]) {
            if want > 0.0 {
                assert!((got - want).abs() < 1e-9, "bucket {got} vs {want}");
            }
        }
    }
}
