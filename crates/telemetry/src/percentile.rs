//! Per-request latency samples → percentile summaries.
//!
//! The serving fleet simulator records one span per request (arrival,
//! first token, completion); what operators act on are the order
//! statistics — p50/p95/p99 TTFT and TPOT against an SLO target. This
//! module reduces a sample vector to a [`LatencySummary`] with the
//! deterministic nearest-rank method, so identical runs serialize to
//! identical artifacts.
//!
//! Both entry points are total: empty inputs yield `0.0` (a fleet that
//! completed no request still serializes a well-formed artifact), a
//! single sample is every percentile, and non-finite samples are
//! dropped before summarizing so a stray `NaN` cannot silently poison
//! the tail statistics an SLO gate reads.

use crate::json::Json;

/// The nearest-rank percentile of an ascending-sorted sample slice:
/// the smallest value with at least `q·n` samples at or below it
/// (`q` in `[0, 1]`). Deterministic — no interpolation, so results are
/// bit-identical across platforms.
///
/// Total by construction: an empty slice yields `0.0` (there is no
/// order statistic to report, and the zero sentinel matches the
/// all-zero [`LatencySummary`] of an empty run), and `q` is clamped
/// into `[0, 1]` with a non-finite `q` reading the conservative tail
/// (`q = 1`).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = if q.is_finite() {
        q.clamp(0.0, 1.0)
    } else {
        1.0
    };
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(n - 1)]
}

/// Order statistics of one latency metric (seconds): the percentiles the
/// serving artifact reports, plus mean and max for sanity checks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Number of (finite) samples summarized.
    pub count: usize,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile — the tail SLOs are written against.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarizes a sample vector (need not be sorted). Non-finite
    /// samples (`NaN`, `±inf`) are dropped first — `count` reflects the
    /// samples actually summarized — and an empty (or fully non-finite)
    /// vector yields the all-zero summary with `count == 0`, so a fleet
    /// that completed no request still serializes a well-formed
    /// artifact.
    pub fn from_unsorted(samples: Vec<f64>) -> LatencySummary {
        let mut samples: Vec<f64> = samples.into_iter().filter(|s| s.is_finite()).collect();
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                mean: 0.0,
                max: 0.0,
            };
        }
        samples.sort_by(f64::total_cmp);
        let count = samples.len();
        LatencySummary {
            count,
            p50: percentile(&samples, 0.50),
            p95: percentile(&samples, 0.95),
            p99: percentile(&samples, 0.99),
            mean: samples.iter().sum::<f64>() / count as f64,
            max: samples[count - 1],
        }
    }

    /// Serializes the summary with every value multiplied by `scale`
    /// (e.g. `1e3` to report seconds as milliseconds).
    pub fn to_json_scaled(&self, scale: f64) -> Json {
        Json::obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("p50", Json::Num(self.p50 * scale)),
            ("p95", Json::Num(self.p95 * scale)),
            ("p99", Json::Num(self.p99 * scale)),
            ("mean", Json::Num(self.mean * scale)),
            ("max", Json::Num(self.max * scale)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_hand_computed_values() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile(&[7.0], q), 7.0);
        }
        let s = LatencySummary::from_unsorted(vec![7.0]);
        assert_eq!(s.count, 1);
        assert_eq!(
            (s.p50, s.p95, s.p99, s.mean, s.max),
            (7.0, 7.0, 7.0, 7.0, 7.0)
        );
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = LatencySummary::from_unsorted(vec![3.0, 1.0, 2.0, 5.0, 4.0]);
        let b = LatencySummary::from_unsorted(vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50, 3.0);
        assert_eq!(a.max, 5.0);
        assert_eq!(a.mean, 3.0);
        assert_eq!(a.count, 5);
    }

    #[test]
    fn empty_samples_summarize_to_zeros() {
        let s = LatencySummary::from_unsorted(Vec::new());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn empty_percentile_is_zero_not_a_panic() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[], 1.0), 0.0);
    }

    #[test]
    fn out_of_range_or_non_finite_quantiles_are_clamped() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&v, -0.5), 1.0);
        assert_eq!(percentile(&v, 1.5), 3.0);
        assert_eq!(percentile(&v, f64::NAN), 3.0, "NaN reads the tail");
        assert_eq!(percentile(&v, f64::INFINITY), 3.0);
    }

    #[test]
    fn non_finite_samples_are_dropped_not_propagated() {
        let s = LatencySummary::from_unsorted(vec![
            1.0,
            f64::NAN,
            2.0,
            f64::INFINITY,
            3.0,
            f64::NEG_INFINITY,
        ]);
        assert_eq!(s.count, 3);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.max, 3.0);
        assert!(s.mean.is_finite());
        // All-NaN input degrades to the empty summary, not NaN fields.
        let bad = LatencySummary::from_unsorted(vec![f64::NAN, f64::NAN]);
        assert_eq!(bad.count, 0);
        assert_eq!(bad.p99, 0.0);
    }

    #[test]
    fn json_scaling_converts_units() {
        let s = LatencySummary::from_unsorted(vec![0.1, 0.2]);
        let j = s.to_json_scaled(1e3);
        assert_eq!(j.get("p50").and_then(Json::as_f64), Some(100.0));
        assert_eq!(j.get("count").and_then(Json::as_usize), Some(2));
    }
}
