//! Failure/recovery telemetry: downtime accounting and recovery spans.
//!
//! `meshslice-recovery` walks a training run through permanent failures;
//! these types carry its accounting into the metric artifact so the
//! MTBF→goodput trajectory is machine-readable alongside the usual
//! busy-time buckets. A [`DowntimeBreakdown`] can be attached to
//! [`RunMetrics`](crate::RunMetrics) (it is absent for failure-free runs,
//! keeping existing artifacts byte-identical), and [`RecoverySpan`]s
//! record each failure's detect/restore/replay phases on a wall-clock
//! timeline.

use crate::json::Json;

/// Labels of the downtime buckets, in [`DowntimeBreakdown::buckets`]
/// order.
pub const DOWNTIME_LABELS: [&str; 5] = ["checkpoint", "lost", "detection", "restore", "degraded"];

/// Wall-clock seconds a recovered run spent *not* doing nominal useful
/// work, by cause.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DowntimeBreakdown {
    /// Committed checkpoint writes.
    pub checkpoint: f64,
    /// Replayed work discarded by failures.
    pub lost: f64,
    /// Failure-detection latency.
    pub detection: f64,
    /// Checkpoint-restore time.
    pub restore: f64,
    /// Extra step time paid on the degraded torus.
    pub degraded: f64,
    /// Useful seconds (nominal step time of the committed steps).
    pub useful: f64,
    /// Failures that interrupted the run.
    pub failures: usize,
}

impl DowntimeBreakdown {
    /// Total non-useful seconds.
    pub fn total(&self) -> f64 {
        self.checkpoint + self.lost + self.detection + self.restore + self.degraded
    }

    /// The five downtime buckets in [`DOWNTIME_LABELS`] order.
    pub fn buckets(&self) -> [f64; 5] {
        [
            self.checkpoint,
            self.lost,
            self.detection,
            self.restore,
            self.degraded,
        ]
    }

    /// Useful fraction of the total wall clock, in `[0, 1]`.
    pub fn goodput(&self) -> f64 {
        let wall = self.useful + self.total();
        if wall <= 0.0 {
            return 1.0;
        }
        (self.useful / wall).clamp(0.0, 1.0)
    }

    /// Serializes to the `downtime_s` object of the metric artifact.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("checkpoint", Json::Num(self.checkpoint)),
            ("lost", Json::Num(self.lost)),
            ("detection", Json::Num(self.detection)),
            ("restore", Json::Num(self.restore)),
            ("degraded", Json::Num(self.degraded)),
            ("useful", Json::Num(self.useful)),
            ("failures", Json::Num(self.failures as f64)),
        ])
    }

    /// Deserializes the `downtime_s` object.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn from_json(doc: &Json) -> Result<DowntimeBreakdown, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing downtime field '{key}'"))
        };
        Ok(DowntimeBreakdown {
            checkpoint: num("checkpoint")?,
            lost: num("lost")?,
            detection: num("detection")?,
            restore: num("restore")?,
            degraded: num("degraded")?,
            useful: num("useful")?,
            failures: doc
                .get("failures")
                .and_then(Json::as_usize)
                .ok_or("missing downtime field 'failures'")?,
        })
    }
}

/// What one phase of a recovery episode was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// A chip or link died; survivors have not noticed yet.
    Failure,
    /// Survivors stalled on the dead peer; the sync watchdog is running.
    Detection,
    /// Model state streaming back from the last checkpoint.
    Restore,
    /// Re-executing the work lost since the last checkpoint.
    Replay,
}

impl RecoveryPhase {
    /// Stable label for artifacts and trace viewers.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPhase::Failure => "failure",
            RecoveryPhase::Detection => "detection",
            RecoveryPhase::Restore => "restore",
            RecoveryPhase::Replay => "replay",
        }
    }
}

/// One phase of one recovery episode on the run's wall-clock timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RecoverySpan {
    /// Which failure this span belongs to (0-based).
    pub episode: usize,
    /// The phase.
    pub phase: RecoveryPhase,
    /// Wall-clock start, seconds.
    pub start: f64,
    /// Wall-clock end, seconds.
    pub end: f64,
}

impl RecoverySpan {
    /// Span duration, seconds.
    pub fn duration(&self) -> f64 {
        (self.end - self.start).max(0.0)
    }

    /// Serializes one span for the artifact's `recovery_spans` array.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("episode", Json::Num(self.episode as f64)),
            ("phase", Json::Str(self.phase.label().to_string())),
            ("start_s", Json::Num(self.start)),
            ("end_s", Json::Num(self.end)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown() -> DowntimeBreakdown {
        DowntimeBreakdown {
            checkpoint: 18.0,
            lost: 5.5,
            detection: 0.5,
            restore: 2.0,
            degraded: 21.0,
            useful: 100.0,
            failures: 1,
        }
    }

    #[test]
    fn goodput_is_useful_over_wall() {
        let d = breakdown();
        let wall = d.useful + d.total();
        assert!((d.goodput() - 100.0 / wall).abs() < 1e-12);
        assert!(d.goodput() < 1.0);
    }

    #[test]
    fn json_round_trips() {
        let d = breakdown();
        let back = DowntimeBreakdown::from_json(&d.to_json()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn missing_field_is_reported() {
        let err =
            DowntimeBreakdown::from_json(&Json::obj(vec![("lost", Json::Num(1.0))])).unwrap_err();
        assert!(err.contains("checkpoint"), "{err}");
    }

    #[test]
    fn spans_carry_phase_labels() {
        let s = RecoverySpan {
            episode: 0,
            phase: RecoveryPhase::Detection,
            start: 17.5,
            end: 18.0,
        };
        assert!((s.duration() - 0.5).abs() < 1e-12);
        let j = s.to_json();
        assert_eq!(j.get("phase").and_then(Json::as_str), Some("detection"));
    }

    #[test]
    fn empty_breakdown_has_goodput_one() {
        let d = DowntimeBreakdown {
            checkpoint: 0.0,
            lost: 0.0,
            detection: 0.0,
            restore: 0.0,
            degraded: 0.0,
            useful: 0.0,
            failures: 0,
        };
        assert_eq!(d.goodput(), 1.0);
    }
}
