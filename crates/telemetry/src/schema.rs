//! A small structural JSON-schema checker.
//!
//! Supports the subset of JSON Schema the CI smoke job needs to validate
//! metric artifacts: `type` (including `"integer"`), `properties`,
//! `required`, `items`, `enum`, and `minimum`/`maximum` bounds. Unknown
//! keywords are ignored, as the spec prescribes.

use crate::json::Json;

/// Validates `value` against `schema`, returning every violation as a
/// `(json-pointer-ish path, message)` pair. An empty vector means the
/// document conforms.
pub fn validate(schema: &Json, value: &Json) -> Vec<(String, String)> {
    let mut errors = Vec::new();
    check(schema, value, "$", &mut errors);
    errors
}

fn type_name(value: &Json) -> &'static str {
    match value {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::Num(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn matches_type(value: &Json, ty: &str) -> bool {
    match ty {
        "integer" => matches!(value, Json::Num(n) if n.fract() == 0.0),
        other => type_name(value) == other,
    }
}

fn check(schema: &Json, value: &Json, path: &str, errors: &mut Vec<(String, String)>) {
    if let Some(ty) = schema.get("type").and_then(Json::as_str) {
        if !matches_type(value, ty) {
            errors.push((
                path.to_string(),
                format!("expected type {ty}, found {}", type_name(value)),
            ));
            return;
        }
    }
    if let Some(Json::Arr(allowed)) = schema.get("enum") {
        if !allowed.contains(value) {
            errors.push((path.to_string(), format!("{value} not in enum")));
        }
    }
    if let (Some(min), Some(n)) = (schema.get("minimum").and_then(Json::as_f64), value.as_f64()) {
        if n < min {
            errors.push((path.to_string(), format!("{n} below minimum {min}")));
        }
    }
    if let (Some(max), Some(n)) = (schema.get("maximum").and_then(Json::as_f64), value.as_f64()) {
        if n > max {
            errors.push((path.to_string(), format!("{n} above maximum {max}")));
        }
    }
    if let Some(Json::Arr(required)) = schema.get("required") {
        for key in required.iter().filter_map(|k| k.as_str()) {
            if value.get(key).is_none() {
                errors.push((path.to_string(), format!("missing required key '{key}'")));
            }
        }
    }
    if let (Some(Json::Obj(props)), Json::Obj(pairs)) = (schema.get("properties"), value) {
        for (key, sub) in props {
            if let Some((_, v)) = pairs.iter().find(|(k, _)| k == key) {
                check(sub, v, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let (Some(item_schema), Json::Arr(items)) = (schema.get("items"), value) {
        for (i, item) in items.iter().enumerate() {
            check(item_schema, item, &format!("{path}[{i}]"), errors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Json {
        Json::parse(
            r#"{
                "type": "object",
                "required": ["makespan", "chips", "buckets"],
                "properties": {
                    "makespan": {"type": "number", "minimum": 0},
                    "chips": {"type": "integer", "minimum": 1},
                    "kind": {"type": "string", "enum": ["run", "diff"]},
                    "buckets": {
                        "type": "array",
                        "items": {"type": "number", "minimum": 0}
                    }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn conforming_document_passes() {
        let doc =
            Json::parse(r#"{"makespan": 1.5, "chips": 16, "kind": "run", "buckets": [0, 1, 2.5]}"#)
                .unwrap();
        assert!(validate(&schema(), &doc).is_empty());
    }

    #[test]
    fn missing_required_key_is_reported() {
        let doc = Json::parse(r#"{"makespan": 1.5, "chips": 16}"#).unwrap();
        let errors = validate(&schema(), &doc);
        assert!(errors.iter().any(|(_, m)| m.contains("buckets")));
    }

    #[test]
    fn type_and_bound_violations_are_reported_with_paths() {
        let doc =
            Json::parse(r#"{"makespan": -1, "chips": 2.5, "kind": "bogus", "buckets": [1, "x"]}"#)
                .unwrap();
        let errors = validate(&schema(), &doc);
        let paths: Vec<&str> = errors.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"$.makespan"));
        assert!(paths.contains(&"$.chips"));
        assert!(paths.contains(&"$.kind"));
        assert!(paths.contains(&"$.buckets[1]"));
    }
}
