//! Request-level tracing for the serving fleet simulator.
//!
//! The fleet event loop (in `meshslice-serving`) drives a [`TraceSink`]
//! with one [`ServingEvent`] per lifecycle transition: arrival,
//! admission to the queue, each prefill chunk and decode iteration,
//! preemption/resume, failover outage, and completion with the SLO
//! verdict. The default sink is [`NoopTraceSink`]; recording into a
//! [`ServingTrace`] is opt-in and — by construction — never feeds back
//! into the simulation arithmetic, so a traced run produces a
//! bit-for-bit identical `FleetReport` (property-tested in the serving
//! crate).
//!
//! A recorded trace exports three ways:
//!
//! - [`ServingTrace::to_jsonl`] — one JSON object per line (header
//!   first), validated by `schemas/serving_trace.schema.json`;
//! - [`ServingTrace::to_chrome_trace`] — chrome://tracing / Perfetto
//!   JSON with one process lane per replica: tid 0 carries the
//!   replica's step timeline (prefill chunks, decode iterations,
//!   failover outages) and each request gets its own thread with
//!   nested `queued` → `prefill` → `generate` spans;
//! - [`BlameReport`] — every completed request's TTFT decomposed into
//!   queueing / prefill / preemption-stall / failover components that
//!   sum to the measured TTFT exactly.
//!
//! Event times are simulation seconds. Within one replica the stream is
//! ordered by *emission*; `Arrival`/`Queued` events carry the logical
//! arrival time, which can predate the previous step's end (arrivals
//! are drained when the loop next looks at the clock). Per-request
//! times are always non-decreasing — [`ServingTrace::check_invariants`]
//! enforces exactly that plus span nesting.

use std::collections::BTreeMap;

use crate::json::Json;

/// One lifecycle event emitted by the fleet event loop.
///
/// `kv_bytes` / `queue` snapshots on step events are the replica state
/// *after* the step, which is what the windowed time-series bins.
#[derive(Clone, Debug, PartialEq)]
pub enum ServingEvent {
    /// A request reached the replica's admission control.
    Arrival {
        /// Trace id.
        id: usize,
        /// Arrival time, seconds.
        t: f64,
    },
    /// Admission accepted the request into the waiting queue.
    Queued {
        /// Trace id.
        id: usize,
        /// Arrival time, seconds.
        t: f64,
        /// Queue depth after the push.
        queue: usize,
    },
    /// Admission rejected the request (peak KV can never fit).
    Rejected {
        /// Trace id.
        id: usize,
        /// Arrival time, seconds.
        t: f64,
    },
    /// One chunked-prefill step.
    Prefill {
        /// Step start, seconds.
        start: f64,
        /// Step end, seconds.
        end: f64,
        /// Tokens processed in the chunk.
        tokens: usize,
        /// Requests prefilled for the first time (first token at `end`).
        fresh: Vec<usize>,
        /// Preempted/failed-over requests re-prefilled in this chunk.
        resumed: Vec<usize>,
        /// Whether the step priced on the degraded torus.
        degraded: bool,
        /// Per-chip KV bytes resident after the step.
        kv_bytes: u64,
        /// Waiting-queue depth after the step.
        queue: usize,
    },
    /// A request's first token was emitted (prefill chunk end).
    FirstToken {
        /// Trace id.
        id: usize,
        /// First-token time, seconds.
        t: f64,
    },
    /// One decode iteration over the active batch.
    Decode {
        /// Step start, seconds.
        start: f64,
        /// Step end, seconds.
        end: f64,
        /// Active batch size (tokens generated this step).
        batch: usize,
        /// Whether the step priced on the degraded torus.
        degraded: bool,
        /// Per-chip KV bytes resident after the step.
        kv_bytes: u64,
        /// Waiting-queue depth after the step.
        queue: usize,
    },
    /// A request was evicted (KV pressure LIFO or failover flush).
    Preempted {
        /// Trace id.
        id: usize,
        /// Eviction time, seconds.
        t: f64,
    },
    /// The replica was out for failover (detection + weight restore).
    Outage {
        /// Outage start, seconds.
        start: f64,
        /// Outage end, seconds.
        end: f64,
    },
    /// A request emitted its last token.
    Completed {
        /// Trace id.
        id: usize,
        /// Completion time, seconds.
        t: f64,
        /// Time to first token, seconds.
        ttft: f64,
        /// Tokens generated.
        generated: usize,
        /// Times the request was preempted.
        preemptions: usize,
        /// Whether TTFT met the SLO target.
        slo_ok: bool,
    },
    /// Admission shed the request: SLO-aware load shedding found the
    /// backlog too hot to admit a lowest-priority (newest) arrival.
    Shed {
        /// Trace id.
        id: usize,
        /// Arrival time, seconds.
        t: f64,
        /// Waiting-queue depth that triggered the shed.
        queue: usize,
    },
    /// The fleet router re-enqueued the request with backoff because its
    /// target replica sat inside a failover blackout window.
    Retried {
        /// Trace id.
        id: usize,
        /// Time of the retry decision, seconds.
        t: f64,
        /// Retry attempt number (1 = first retry).
        attempt: usize,
    },
    /// The router landed the request on a survivor replica other than
    /// its round-robin home.
    Redistributed {
        /// Trace id.
        id: usize,
        /// Effective (post-backoff) arrival time, seconds.
        t: f64,
        /// The round-robin home replica.
        from: usize,
        /// The survivor replica that serves the request.
        to: usize,
    },
    /// The router gave up: retry budget or per-request deadline
    /// exhausted with every candidate replica blacked out.
    TimedOut {
        /// Trace id.
        id: usize,
        /// Time the deadline/budget expired, seconds.
        t: f64,
    },
}

impl ServingEvent {
    /// Serializes one event as a flat JSON object (the JSONL line shape).
    pub fn to_json(&self, replica: usize) -> Json {
        let rep = ("replica", Json::Num(replica as f64));
        match self {
            ServingEvent::Arrival { id, t } => Json::obj(vec![
                ("kind", Json::Str("arrival".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
            ]),
            ServingEvent::Queued { id, t, queue } => Json::obj(vec![
                ("kind", Json::Str("queued".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
                ("queue", Json::Num(*queue as f64)),
            ]),
            ServingEvent::Rejected { id, t } => Json::obj(vec![
                ("kind", Json::Str("rejected".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
            ]),
            ServingEvent::Prefill {
                start,
                end,
                tokens,
                fresh,
                resumed,
                degraded,
                kv_bytes,
                queue,
            } => Json::obj(vec![
                ("kind", Json::Str("prefill".into())),
                rep,
                ("start", Json::Num(*start)),
                ("end", Json::Num(*end)),
                ("tokens", Json::Num(*tokens as f64)),
                (
                    "fresh",
                    Json::Arr(fresh.iter().map(|&i| Json::Num(i as f64)).collect()),
                ),
                (
                    "resumed",
                    Json::Arr(resumed.iter().map(|&i| Json::Num(i as f64)).collect()),
                ),
                ("degraded", Json::Bool(*degraded)),
                ("kv_bytes", Json::Num(*kv_bytes as f64)),
                ("queue", Json::Num(*queue as f64)),
            ]),
            ServingEvent::FirstToken { id, t } => Json::obj(vec![
                ("kind", Json::Str("first_token".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
            ]),
            ServingEvent::Decode {
                start,
                end,
                batch,
                degraded,
                kv_bytes,
                queue,
            } => Json::obj(vec![
                ("kind", Json::Str("decode".into())),
                rep,
                ("start", Json::Num(*start)),
                ("end", Json::Num(*end)),
                ("batch", Json::Num(*batch as f64)),
                ("degraded", Json::Bool(*degraded)),
                ("kv_bytes", Json::Num(*kv_bytes as f64)),
                ("queue", Json::Num(*queue as f64)),
            ]),
            ServingEvent::Preempted { id, t } => Json::obj(vec![
                ("kind", Json::Str("preempt".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
            ]),
            ServingEvent::Outage { start, end } => Json::obj(vec![
                ("kind", Json::Str("outage".into())),
                rep,
                ("start", Json::Num(*start)),
                ("end", Json::Num(*end)),
            ]),
            ServingEvent::Completed {
                id,
                t,
                ttft,
                generated,
                preemptions,
                slo_ok,
            } => Json::obj(vec![
                ("kind", Json::Str("complete".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
                ("ttft", Json::Num(*ttft)),
                ("generated", Json::Num(*generated as f64)),
                ("preemptions", Json::Num(*preemptions as f64)),
                ("slo_ok", Json::Bool(*slo_ok)),
            ]),
            ServingEvent::Shed { id, t, queue } => Json::obj(vec![
                ("kind", Json::Str("shed".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
                ("queue", Json::Num(*queue as f64)),
            ]),
            ServingEvent::Retried { id, t, attempt } => Json::obj(vec![
                ("kind", Json::Str("retried".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
                ("attempt", Json::Num(*attempt as f64)),
            ]),
            ServingEvent::Redistributed { id, t, from, to } => Json::obj(vec![
                ("kind", Json::Str("redistributed".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
                ("from", Json::Num(*from as f64)),
                ("to", Json::Num(*to as f64)),
            ]),
            ServingEvent::TimedOut { id, t } => Json::obj(vec![
                ("kind", Json::Str("timed_out".into())),
                rep,
                ("id", Json::Num(*id as f64)),
                ("t", Json::Num(*t)),
            ]),
        }
    }
}

/// Receiver for fleet lifecycle events.
///
/// The fleet event loop calls [`TraceSink::event`] once per transition;
/// implementations must not assume globally sorted times (see the
/// module docs). Sinks observe — they can never influence the
/// simulation.
pub trait TraceSink {
    /// Observes one event.
    fn event(&mut self, e: &ServingEvent);
}

/// The default sink: discards every event.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTraceSink;

impl TraceSink for NoopTraceSink {
    fn event(&mut self, _e: &ServingEvent) {}
}

/// A sink that records every event, per replica, for export.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// Events in emission order.
    pub events: Vec<ServingEvent>,
}

impl TraceSink for RecordingSink {
    fn event(&mut self, e: &ServingEvent) {
        self.events.push(e.clone());
    }
}

/// A full recorded fleet trace: the run header plus every replica's
/// event stream in emission order.
#[derive(Clone, Debug, PartialEq)]
pub struct ServingTrace {
    /// Model name served.
    pub model: String,
    /// Replica mesh, `"RxC"`.
    pub mesh: String,
    /// Replica count (`events.len()`).
    pub replicas: usize,
    /// Mean offered load, requests/second.
    pub qps: f64,
    /// Arrival seed.
    pub seed: u64,
    /// TTFT p99 target, milliseconds.
    pub slo_p99_ttft_ms: f64,
    /// Per-replica event streams, in emission order.
    pub events: Vec<Vec<ServingEvent>>,
}

impl ServingTrace {
    /// Total events across replicas.
    pub fn len(&self) -> usize {
        self.events.iter().map(Vec::len).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The run-header line of the JSONL export.
    pub fn header_json(&self) -> Json {
        Json::obj(vec![
            ("kind", Json::Str("run".into())),
            ("schema_version", Json::Num(1.0)),
            ("model", Json::Str(self.model.clone())),
            ("mesh", Json::Str(self.mesh.clone())),
            ("replicas", Json::Num(self.replicas as f64)),
            ("qps", Json::Num(self.qps)),
            ("seed", Json::Num(self.seed as f64)),
            ("slo_p99_ttft_ms", Json::Num(self.slo_p99_ttft_ms)),
        ])
    }

    /// JSONL export: the header line, then one line per event, replica
    /// by replica in emission order. Every line validates against
    /// `schemas/serving_trace.schema.json`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header_json().to_string_compact());
        out.push('\n');
        for (r, stream) in self.events.iter().enumerate() {
            for e in stream {
                out.push_str(&e.to_json(r).to_string_compact());
                out.push('\n');
            }
        }
        out
    }

    /// Chrome trace-event JSON (load in chrome://tracing or Perfetto):
    /// one process per replica; tid 0 is the step lane (prefill chunks,
    /// decode iterations, outages) and each request gets its own thread
    /// with nested `queued` → `prefill` → `generate` spans plus
    /// re-prefill spans after preemption.
    pub fn to_chrome_trace(&self) -> String {
        let us = |t: f64| t * 1e6;
        let mut evs: Vec<Json> = Vec::new();
        let meta = |pid: usize, tid: usize, what: &str, name: String| {
            Json::obj(vec![
                ("ph", Json::Str("M".into())),
                ("pid", Json::Num(pid as f64)),
                ("tid", Json::Num(tid as f64)),
                ("name", Json::Str(what.into())),
                ("args", Json::obj(vec![("name", Json::Str(name))])),
            ])
        };
        let span = |pid: usize, tid: usize, name: String, cat: &str, s: f64, e: f64| {
            Json::obj(vec![
                ("ph", Json::Str("X".into())),
                ("pid", Json::Num(pid as f64)),
                ("tid", Json::Num(tid as f64)),
                ("name", Json::Str(name)),
                ("cat", Json::Str(cat.into())),
                ("ts", Json::Num(us(s))),
                ("dur", Json::Num(us(e - s))),
            ])
        };
        for (r, stream) in self.events.iter().enumerate() {
            evs.push(meta(r, 0, "process_name", format!("replica {r}")));
            evs.push(meta(r, 0, "thread_name", "steps".to_string()));
            let life = RequestLifetimes::collect(stream);
            for e in stream {
                match e {
                    ServingEvent::Prefill {
                        start,
                        end,
                        tokens,
                        resumed,
                        ..
                    } => {
                        let name = if resumed.is_empty() {
                            format!("prefill {tokens} tok")
                        } else {
                            format!("re-prefill {tokens} tok (+{})", resumed.len())
                        };
                        evs.push(span(r, 0, name, "prefill", *start, *end));
                    }
                    ServingEvent::Decode {
                        start, end, batch, ..
                    } => {
                        evs.push(span(
                            r,
                            0,
                            format!("decode b={batch}"),
                            "decode",
                            *start,
                            *end,
                        ));
                    }
                    ServingEvent::Outage { start, end } => {
                        evs.push(span(r, 0, "failover outage".into(), "outage", *start, *end));
                    }
                    _ => {}
                }
            }
            for (&id, l) in &life.by_id {
                let tid = id + 1;
                if l.rejected {
                    evs.push(span(
                        r,
                        tid,
                        format!("rejected req {id}"),
                        "request",
                        l.arrival,
                        l.arrival,
                    ));
                    continue;
                }
                let Some((cs, ce)) = l.first_chunk else {
                    continue;
                };
                let outer_end = l.completed.unwrap_or(ce);
                evs.push(span(
                    r,
                    tid,
                    format!("req {id}"),
                    "request",
                    l.arrival,
                    outer_end,
                ));
                if cs > l.arrival {
                    evs.push(span(r, tid, "queued".into(), "queued", l.arrival, cs));
                }
                evs.push(span(r, tid, "prefill".into(), "prefill", cs, ce));
                if outer_end > ce {
                    evs.push(span(r, tid, "generate".into(), "decode", ce, outer_end));
                }
                for &(rs, re) in &l.resumed_chunks {
                    evs.push(span(r, tid, "re-prefill".into(), "prefill", rs, re));
                }
            }
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(evs)),
            ("displayTimeUnit", Json::Str("ms".into())),
        ])
        .to_string_pretty()
    }

    /// Checks the trace's structural invariants: per-request event times
    /// non-decreasing, step-lane intervals well-formed and
    /// non-overlapping, and request spans properly nested
    /// (`arrival ≤ prefill start ≤ first token ≤ completion`, with
    /// re-prefills and preemptions inside the generate span).
    ///
    /// # Errors
    ///
    /// Describes the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (r, stream) in self.events.iter().enumerate() {
            // Step lane: intervals ordered and non-overlapping.
            let mut last_end = f64::NEG_INFINITY;
            for e in stream {
                let iv = match e {
                    ServingEvent::Prefill { start, end, .. }
                    | ServingEvent::Decode { start, end, .. }
                    | ServingEvent::Outage { start, end } => Some((*start, *end)),
                    _ => None,
                };
                if let Some((s, en)) = iv {
                    if !(s.is_finite() && en.is_finite() && en >= s) {
                        return Err(format!("replica {r}: malformed step interval [{s}, {en}]"));
                    }
                    if s < last_end - 1e-12 {
                        return Err(format!(
                            "replica {r}: step at {s} overlaps previous step ending {last_end}"
                        ));
                    }
                    last_end = en;
                }
            }
            // Per-request monotonic times and span nesting.
            let life = RequestLifetimes::collect(stream);
            let mut last_t: BTreeMap<usize, f64> = BTreeMap::new();
            let mut touch = |id: usize, t: f64, what: &str| -> Result<(), String> {
                let prev = last_t.entry(id).or_insert(f64::NEG_INFINITY);
                if t < *prev - 1e-12 {
                    return Err(format!(
                        "replica {r}: request {id} {what} at {t} precedes earlier event at {prev}"
                    ));
                }
                *prev = t;
                Ok(())
            };
            for e in stream {
                match e {
                    ServingEvent::Arrival { id, t } => touch(*id, *t, "arrival")?,
                    ServingEvent::Queued { id, t, .. } => touch(*id, *t, "queued")?,
                    ServingEvent::Rejected { id, t } => touch(*id, *t, "rejected")?,
                    ServingEvent::Prefill {
                        start,
                        end,
                        fresh,
                        resumed,
                        ..
                    } => {
                        for &id in fresh.iter().chain(resumed) {
                            touch(id, *start, "prefill start")?;
                            touch(id, *end, "prefill end")?;
                        }
                    }
                    ServingEvent::FirstToken { id, t } => touch(*id, *t, "first token")?,
                    ServingEvent::Preempted { id, t } => touch(*id, *t, "preempt")?,
                    ServingEvent::Completed { id, t, .. } => touch(*id, *t, "complete")?,
                    ServingEvent::Shed { id, t, .. } => touch(*id, *t, "shed")?,
                    ServingEvent::Retried { id, t, .. } => touch(*id, *t, "retried")?,
                    ServingEvent::Redistributed { id, t, .. } => touch(*id, *t, "redistributed")?,
                    ServingEvent::TimedOut { id, t } => touch(*id, *t, "timed out")?,
                    ServingEvent::Outage { .. } | ServingEvent::Decode { .. } => {}
                }
            }
            for (&id, l) in &life.by_id {
                if l.rejected {
                    continue;
                }
                let Some((cs, ce)) = l.first_chunk else {
                    continue;
                };
                let Some(ft) = l.first_token else {
                    return Err(format!(
                        "replica {r}: request {id} prefilled but no first token"
                    ));
                };
                if !(l.arrival <= cs + 1e-12 && cs <= ce && (ce - ft).abs() < 1e-9) {
                    return Err(format!(
                        "replica {r}: request {id} spans not nested: arrival {} chunk [{cs}, {ce}] first token {ft}",
                        l.arrival
                    ));
                }
                if let Some(fin) = l.completed {
                    if fin < ft - 1e-12 {
                        return Err(format!(
                            "replica {r}: request {id} completes at {fin} before first token {ft}"
                        ));
                    }
                    for &(rs, re) in &l.resumed_chunks {
                        if rs < ft - 1e-12 || re > fin + 1e-12 {
                            return Err(format!(
                                "replica {r}: request {id} re-prefill [{rs}, {re}] outside generate span [{ft}, {fin}]"
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Decomposes every completed request's TTFT into blame components.
    pub fn blame(&self) -> BlameReport {
        BlameReport::from_trace(self)
    }
}

/// Per-request milestones recovered from one replica's event stream.
#[derive(Clone, Debug, Default)]
struct Lifetime {
    arrival: f64,
    rejected: bool,
    first_chunk: Option<(f64, f64)>,
    resumed_chunks: Vec<(f64, f64)>,
    first_token: Option<f64>,
    completed: Option<f64>,
}

struct RequestLifetimes {
    by_id: BTreeMap<usize, Lifetime>,
    /// Failover outage intervals on this replica.
    outages: Vec<(f64, f64)>,
    /// Chunks that re-prefilled at least one preempted request.
    reprefill_chunks: Vec<(f64, f64)>,
}

impl RequestLifetimes {
    fn collect(stream: &[ServingEvent]) -> RequestLifetimes {
        let mut by_id: BTreeMap<usize, Lifetime> = BTreeMap::new();
        let mut outages = Vec::new();
        let mut reprefill_chunks = Vec::new();
        for e in stream {
            match e {
                ServingEvent::Arrival { id, t } => {
                    by_id.entry(*id).or_default().arrival = *t;
                }
                ServingEvent::Rejected { id, .. } => {
                    by_id.entry(*id).or_default().rejected = true;
                }
                ServingEvent::Prefill {
                    start,
                    end,
                    fresh,
                    resumed,
                    ..
                } => {
                    for &id in fresh {
                        let l = by_id.entry(id).or_default();
                        if l.first_chunk.is_none() {
                            l.first_chunk = Some((*start, *end));
                        }
                    }
                    for &id in resumed {
                        by_id
                            .entry(id)
                            .or_default()
                            .resumed_chunks
                            .push((*start, *end));
                    }
                    if !resumed.is_empty() {
                        reprefill_chunks.push((*start, *end));
                    }
                }
                ServingEvent::FirstToken { id, t } => {
                    let l = by_id.entry(*id).or_default();
                    if l.first_token.is_none() {
                        l.first_token = Some(*t);
                    }
                }
                ServingEvent::Outage { start, end } => outages.push((*start, *end)),
                ServingEvent::Completed { id, t, .. } => {
                    by_id.entry(*id).or_default().completed = Some(*t);
                }
                // Router/shedding events carry no served-lifecycle
                // milestones: a shed or timed-out request never
                // prefills, so it simply has no `first_chunk` and the
                // chrome/blame exports skip it.
                ServingEvent::Queued { .. }
                | ServingEvent::Decode { .. }
                | ServingEvent::Preempted { .. }
                | ServingEvent::Shed { .. }
                | ServingEvent::Retried { .. }
                | ServingEvent::Redistributed { .. }
                | ServingEvent::TimedOut { .. } => {}
            }
        }
        RequestLifetimes {
            by_id,
            outages,
            reprefill_chunks,
        }
    }
}

/// One completed request's TTFT, decomposed. All components are seconds
/// and sum to `ttft` exactly (`queueing` is the residual).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TtftBlame {
    /// Trace id.
    pub id: usize,
    /// Replica served on.
    pub replica: usize,
    /// Measured time to first token.
    pub ttft: f64,
    /// Waiting for a prefill slot (residual: `ttft` minus the rest).
    pub queueing: f64,
    /// The request's own prefill chunk.
    pub prefill: f64,
    /// Replica time spent re-prefilling preempted/failed-over work
    /// while this request waited.
    pub preemption: f64,
    /// Failover outage overlapping the wait.
    pub failover: f64,
}

impl TtftBlame {
    /// Sum of the four components — equals `ttft` by construction.
    pub fn components_sum(&self) -> f64 {
        self.queueing + self.prefill + self.preemption + self.failover
    }

    fn to_json_ms(self) -> Json {
        Json::obj(vec![
            ("id", Json::Num(self.id as f64)),
            ("replica", Json::Num(self.replica as f64)),
            ("ttft_ms", Json::Num(self.ttft * 1e3)),
            ("queueing_ms", Json::Num(self.queueing * 1e3)),
            ("prefill_ms", Json::Num(self.prefill * 1e3)),
            ("preemption_ms", Json::Num(self.preemption * 1e3)),
            ("failover_ms", Json::Num(self.failover * 1e3)),
        ])
    }
}

/// Percentile-band labels of the blame table, tail last.
pub const BLAME_BUCKETS: [&str; 4] = ["p0-p50", "p50-p90", "p90-p99", "p99-p100"];

/// Mean blame over one percentile band of the TTFT distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlameBucket {
    /// Band label (see [`BLAME_BUCKETS`]).
    pub label: &'static str,
    /// Requests in the band.
    pub count: usize,
    /// Mean TTFT, seconds.
    pub mean_ttft: f64,
    /// Mean queueing component, seconds.
    pub mean_queueing: f64,
    /// Mean prefill component, seconds.
    pub mean_prefill: f64,
    /// Mean preemption-stall component, seconds.
    pub mean_preemption: f64,
    /// Mean failover component, seconds.
    pub mean_failover: f64,
}

/// TTFT blame for every completed request of a fleet run, sorted by
/// TTFT ascending (ties broken by id).
#[derive(Clone, Debug, PartialEq)]
pub struct BlameReport {
    /// Per-request decompositions, TTFT-ascending.
    pub requests: Vec<TtftBlame>,
}

impl BlameReport {
    /// Computes the decomposition from a recorded trace.
    ///
    /// Component semantics, per completed request with arrival `a` and
    /// first token `f`: `prefill` is its own (first) prefill chunk;
    /// `failover` is outage time overlapping `[a, f]`; `preemption` is
    /// time inside `[a, f]` the replica spent on prefill chunks that
    /// re-admitted preempted work (excluding the request's own chunk) —
    /// the stall caused by evicted requests jumping the queue; and
    /// `queueing` is the residual, so the four sum to TTFT exactly.
    /// The three measured intervals are disjoint slices of `[a, f]`,
    /// so every component is non-negative up to rounding.
    pub fn from_trace(trace: &ServingTrace) -> BlameReport {
        let mut requests = Vec::new();
        let overlap = |s: f64, e: f64, a: f64, b: f64| (e.min(b) - s.max(a)).max(0.0);
        for (r, stream) in trace.events.iter().enumerate() {
            let life = RequestLifetimes::collect(stream);
            for (&id, l) in &life.by_id {
                let (Some((cs, ce)), Some(ft)) = (l.first_chunk, l.first_token) else {
                    continue;
                };
                let a = l.arrival;
                let ttft = ft - a;
                let prefill = ce - cs;
                // `+ 0.0` normalizes the empty-sum identity (-0.0) so
                // zero components serialize and render as plain 0.0.
                let failover: f64 = life
                    .outages
                    .iter()
                    .map(|&(s, e)| overlap(s, e, a, ft))
                    .sum::<f64>()
                    + 0.0;
                let preemption: f64 = life
                    .reprefill_chunks
                    .iter()
                    .filter(|&&(s, e)| (s, e) != (cs, ce))
                    .map(|&(s, e)| overlap(s, e, a, ft))
                    .sum::<f64>()
                    + 0.0;
                let queueing = ttft - prefill - preemption - failover + 0.0;
                requests.push(TtftBlame {
                    id,
                    replica: r,
                    ttft,
                    queueing,
                    prefill,
                    preemption,
                    failover,
                });
            }
        }
        requests.sort_by(|x, y| x.ttft.total_cmp(&y.ttft).then(x.id.cmp(&y.id)));
        BlameReport { requests }
    }

    /// Mean blame per percentile band of the TTFT distribution
    /// (`p0-p50`, `p50-p90`, `p90-p99`, `p99-p100`). Bands can be empty
    /// for tiny runs.
    pub fn buckets(&self) -> Vec<BlameBucket> {
        let n = self.requests.len();
        let cut = |q: f64| ((q * n as f64).ceil() as usize).min(n);
        let bounds = [0, cut(0.50), cut(0.90), cut(0.99), n];
        BLAME_BUCKETS
            .iter()
            .enumerate()
            .map(|(i, &label)| {
                let band = &self.requests[bounds[i].min(bounds[i + 1])..bounds[i + 1]];
                let c = band.len();
                let mean = |f: &dyn Fn(&TtftBlame) -> f64| {
                    if c == 0 {
                        0.0
                    } else {
                        band.iter().map(f).sum::<f64>() / c as f64
                    }
                };
                BlameBucket {
                    label,
                    count: c,
                    mean_ttft: mean(&|b| b.ttft),
                    mean_queueing: mean(&|b| b.queueing),
                    mean_prefill: mean(&|b| b.prefill),
                    mean_preemption: mean(&|b| b.preemption),
                    mean_failover: mean(&|b| b.failover),
                }
            })
            .collect()
    }

    /// The nearest-rank `q`-percentile request's decomposition, or
    /// `None` for an empty report.
    pub fn percentile_request(&self, q: f64) -> Option<&TtftBlame> {
        if self.requests.is_empty() {
            return None;
        }
        let n = self.requests.len();
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let rank = (q * n as f64).ceil() as usize;
        Some(&self.requests[rank.saturating_sub(1).min(n - 1)])
    }

    /// JSON export (milliseconds): bucket means, the p99 request, and
    /// every per-request decomposition.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .buckets()
            .into_iter()
            .map(|b| {
                Json::obj(vec![
                    ("bucket", Json::Str(b.label.into())),
                    ("count", Json::Num(b.count as f64)),
                    ("ttft_ms", Json::Num(b.mean_ttft * 1e3)),
                    ("queueing_ms", Json::Num(b.mean_queueing * 1e3)),
                    ("prefill_ms", Json::Num(b.mean_prefill * 1e3)),
                    ("preemption_ms", Json::Num(b.mean_preemption * 1e3)),
                    ("failover_ms", Json::Num(b.mean_failover * 1e3)),
                ])
            })
            .collect();
        let mut fields = vec![
            ("schema_version", Json::Num(1.0)),
            ("count", Json::Num(self.requests.len() as f64)),
            ("buckets", Json::Arr(buckets)),
        ];
        if let Some(p99) = self.percentile_request(0.99) {
            fields.push(("p99", p99.to_json_ms()));
        }
        fields.push((
            "requests",
            Json::Arr(self.requests.iter().map(|b| b.to_json_ms()).collect()),
        ));
        Json::obj(fields)
    }

    /// The `serve --explain` text table (milliseconds).
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "TTFT blame ({} completed requests; mean ms per percentile band)\n",
            self.requests.len()
        );
        out.push_str(&format!(
            "{:<9} {:>6} {:>11} {:>11} {:>9} {:>9} {:>9}\n",
            "bucket", "reqs", "ttft", "queueing", "prefill", "preempt", "failover"
        ));
        for b in self.buckets() {
            out.push_str(&format!(
                "{:<9} {:>6} {:>11.1} {:>11.1} {:>9.1} {:>9.1} {:>9.1}\n",
                b.label,
                b.count,
                b.mean_ttft * 1e3,
                b.mean_queueing * 1e3,
                b.mean_prefill * 1e3,
                b.mean_preemption * 1e3,
                b.mean_failover * 1e3,
            ));
        }
        if let Some(p) = self.percentile_request(0.99) {
            out.push_str(&format!(
                "p99 request #{} (replica {}): ttft {:.1} ms = queueing {:.1} + prefill {:.1} + preempt {:.1} + failover {:.1}\n",
                p.id,
                p.replica,
                p.ttft * 1e3,
                p.queueing * 1e3,
                p.prefill * 1e3,
                p.preemption * 1e3,
                p.failover * 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One replica, two requests: req 0 prefills immediately, req 1
    /// waits behind an outage and a re-prefill chunk.
    fn synthetic_trace() -> ServingTrace {
        let events = vec![vec![
            ServingEvent::Arrival { id: 0, t: 0.0 },
            ServingEvent::Queued {
                id: 0,
                t: 0.0,
                queue: 1,
            },
            ServingEvent::Prefill {
                start: 0.0,
                end: 1.0,
                tokens: 128,
                fresh: vec![0],
                resumed: vec![],
                degraded: false,
                kv_bytes: 10,
                queue: 0,
            },
            ServingEvent::FirstToken { id: 0, t: 1.0 },
            ServingEvent::Arrival { id: 2, t: 1.0 },
            ServingEvent::Queued {
                id: 2,
                t: 1.0,
                queue: 1,
            },
            ServingEvent::Decode {
                start: 1.0,
                end: 2.0,
                batch: 1,
                degraded: false,
                kv_bytes: 11,
                queue: 1,
            },
            ServingEvent::Outage {
                start: 2.0,
                end: 3.0,
            },
            ServingEvent::Preempted { id: 0, t: 2.0 },
            ServingEvent::Prefill {
                start: 3.0,
                end: 4.0,
                tokens: 130,
                fresh: vec![],
                resumed: vec![0],
                degraded: true,
                kv_bytes: 11,
                queue: 1,
            },
            ServingEvent::Prefill {
                start: 4.0,
                end: 5.5,
                tokens: 96,
                fresh: vec![2],
                resumed: vec![],
                degraded: true,
                kv_bytes: 20,
                queue: 0,
            },
            ServingEvent::FirstToken { id: 2, t: 5.5 },
            ServingEvent::Decode {
                start: 5.5,
                end: 7.0,
                batch: 2,
                degraded: true,
                kv_bytes: 22,
                queue: 0,
            },
            ServingEvent::Completed {
                id: 0,
                t: 7.0,
                ttft: 1.0,
                generated: 3,
                preemptions: 1,
                slo_ok: true,
            },
            ServingEvent::Completed {
                id: 2,
                t: 7.0,
                ttft: 4.5,
                generated: 2,
                preemptions: 0,
                slo_ok: false,
            },
        ]];
        ServingTrace {
            model: "tiny".into(),
            mesh: "2x2".into(),
            replicas: 1,
            qps: 5.0,
            seed: 7,
            slo_p99_ttft_ms: 500.0,
            events,
        }
    }

    #[test]
    fn invariants_hold_on_the_synthetic_trace() {
        synthetic_trace().check_invariants().expect("well-formed");
    }

    #[test]
    fn invariants_catch_time_regressions() {
        let mut t = synthetic_trace();
        t.events[0].push(ServingEvent::FirstToken { id: 0, t: 0.5 });
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn invariants_catch_overlapping_steps() {
        let mut t = synthetic_trace();
        t.events[0].push(ServingEvent::Decode {
            start: 6.0,
            end: 6.5,
            batch: 1,
            degraded: true,
            kv_bytes: 1,
            queue: 0,
        });
        assert!(t.check_invariants().is_err());
    }

    #[test]
    fn blame_components_sum_to_ttft_and_attribute_the_stall() {
        let report = synthetic_trace().blame();
        assert_eq!(report.requests.len(), 2);
        for b in &report.requests {
            assert!((b.components_sum() - b.ttft).abs() < 1e-12);
            for c in [b.queueing, b.prefill, b.preemption, b.failover] {
                assert!(c >= -1e-12, "negative component {c} for request {}", b.id);
            }
        }
        // Request 2: arrival 1.0, first token 5.5 → ttft 4.5 decomposed
        // as prefill 1.5 (its own chunk), failover 1.0 (outage 2..3),
        // preemption 1.0 (re-prefill 3..4), queueing 1.0 (decode 1..2).
        let r2 = report.requests.iter().find(|b| b.id == 2).expect("present");
        assert!((r2.ttft - 4.5).abs() < 1e-12);
        assert!((r2.prefill - 1.5).abs() < 1e-12);
        assert!((r2.failover - 1.0).abs() < 1e-12);
        assert!((r2.preemption - 1.0).abs() < 1e-12);
        assert!((r2.queueing - 1.0).abs() < 1e-12);
    }

    #[test]
    fn buckets_partition_the_requests() {
        let report = synthetic_trace().blame();
        let buckets = report.buckets();
        assert_eq!(buckets.len(), BLAME_BUCKETS.len());
        assert_eq!(buckets.iter().map(|b| b.count).sum::<usize>(), 2);
        let p99 = report.percentile_request(0.99).expect("non-empty");
        assert_eq!(p99.id, 2, "slowest request is the tail");
    }

    #[test]
    fn jsonl_round_trips_line_by_line() {
        let t = synthetic_trace();
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1 + t.len());
        for line in lines {
            let v = Json::parse(line).expect("every line parses");
            assert!(v.get("kind").is_some());
        }
        assert!(jsonl.starts_with("{\"kind\":\"run\""));
    }

    #[test]
    fn chrome_trace_has_a_lane_per_replica_and_nested_request_spans() {
        let t = synthetic_trace();
        let doc = Json::parse(&t.to_chrome_trace()).expect("valid json");
        let evs = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("array");
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("replica 0")
        }));
        // Request 2's queued span nests inside its outer request span.
        let span_of = |name: &str| {
            evs.iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .map(|e| {
                    let ts = e.get("ts").and_then(Json::as_f64).unwrap();
                    let dur = e.get("dur").and_then(Json::as_f64).unwrap();
                    (ts, ts + dur)
                })
                .expect("span present")
        };
        let outer = span_of("req 2");
        let queued = span_of("queued");
        assert!(outer.0 <= queued.0 && queued.1 <= outer.1);
    }

    #[test]
    fn empty_trace_blame_is_empty_not_a_panic() {
        let t = ServingTrace {
            model: "tiny".into(),
            mesh: "2x2".into(),
            replicas: 1,
            qps: 1.0,
            seed: 0,
            slo_p99_ttft_ms: 500.0,
            events: vec![vec![]],
        };
        assert!(t.is_empty());
        let blame = t.blame();
        assert!(blame.requests.is_empty());
        assert!(blame.percentile_request(0.99).is_none());
        assert!(blame.render_text().contains("0 completed"));
    }
}
