//! Streaming windowed fleet time-series and the serving-run diff.
//!
//! [`ReplicaSeriesBuilder`] is a [`TraceSink`] that folds the fleet
//! event stream into fixed-width time windows *online*: admitted and
//! completed counts, decode-batch occupancy, KV-cache peaks, queue
//! depth, preemption and re-prefill rates, busy/outage seconds, and
//! generated tokens per window. Memory is O(windows), never O(events):
//! when a run outgrows [`MAX_WINDOWS`] bins the builder doubles the
//! window width and merges adjacent pairs, so an arbitrarily long
//! simulation still fits a bounded series (widths are always
//! `BASE_WINDOW_SECS · 2^k`, which is also what lets two runs be
//! aligned for diffing).
//!
//! [`FleetDiff`] compares two serving artifacts — headline scalar
//! deltas plus per-window ASCII strips of the aggregated series — the
//! serving-side sibling of [`crate::RunDiff`] for training runs.

use std::fmt;

use crate::json::Json;
use crate::serving_trace::{ServingEvent, TraceSink};

/// Width of the finest time window, seconds.
pub const BASE_WINDOW_SECS: f64 = 0.25;

/// Bin-count ceiling; exceeding it doubles the window width.
pub const MAX_WINDOWS: usize = 4096;

/// One replica's accounting over one time window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SeriesWindow {
    /// Requests admitted to the waiting queue.
    pub admitted: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests rejected at admission.
    pub rejected: usize,
    /// Requests shed by SLO-aware admission control.
    pub shed: usize,
    /// Router retry decisions (backoff re-enqueues).
    pub retries: usize,
    /// Requests the router timed out (retry budget or deadline spent).
    pub timed_out: usize,
    /// Decode iterations finishing in the window.
    pub decode_steps: usize,
    /// Sum of decode batch sizes (occupancy = `batch_sum / decode_steps`).
    pub batch_sum: usize,
    /// Prefill chunks finishing in the window.
    pub prefill_chunks: usize,
    /// Prefill chunks that re-admitted preempted work.
    pub reprefills: usize,
    /// Preemption events.
    pub preemptions: usize,
    /// Tokens generated (decode batches + first tokens).
    pub tokens: usize,
    /// Seconds the replica spent in prefill/decode steps.
    pub busy_secs: f64,
    /// Seconds the replica was out for failover.
    pub outage_secs: f64,
    /// Peak per-chip KV bytes observed.
    pub kv_peak_bytes: u64,
    /// Peak waiting-queue depth observed.
    pub queue_peak: usize,
}

impl SeriesWindow {
    fn merge(&self, other: &SeriesWindow) -> SeriesWindow {
        SeriesWindow {
            admitted: self.admitted + other.admitted,
            completed: self.completed + other.completed,
            rejected: self.rejected + other.rejected,
            shed: self.shed + other.shed,
            retries: self.retries + other.retries,
            timed_out: self.timed_out + other.timed_out,
            decode_steps: self.decode_steps + other.decode_steps,
            batch_sum: self.batch_sum + other.batch_sum,
            prefill_chunks: self.prefill_chunks + other.prefill_chunks,
            reprefills: self.reprefills + other.reprefills,
            preemptions: self.preemptions + other.preemptions,
            tokens: self.tokens + other.tokens,
            busy_secs: self.busy_secs + other.busy_secs,
            outage_secs: self.outage_secs + other.outage_secs,
            kv_peak_bytes: self.kv_peak_bytes.max(other.kv_peak_bytes),
            queue_peak: self.queue_peak.max(other.queue_peak),
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("admitted", Json::Num(self.admitted as f64)),
            ("completed", Json::Num(self.completed as f64)),
            ("rejected", Json::Num(self.rejected as f64)),
            ("shed", Json::Num(self.shed as f64)),
            ("retries", Json::Num(self.retries as f64)),
            ("timed_out", Json::Num(self.timed_out as f64)),
            ("decode_steps", Json::Num(self.decode_steps as f64)),
            ("batch_sum", Json::Num(self.batch_sum as f64)),
            ("prefill_chunks", Json::Num(self.prefill_chunks as f64)),
            ("reprefills", Json::Num(self.reprefills as f64)),
            ("preemptions", Json::Num(self.preemptions as f64)),
            ("tokens", Json::Num(self.tokens as f64)),
            ("busy_s", Json::Num(self.busy_secs)),
            ("outage_s", Json::Num(self.outage_secs)),
            ("kv_peak_bytes", Json::Num(self.kv_peak_bytes as f64)),
            ("queue_peak", Json::Num(self.queue_peak as f64)),
        ])
    }

    fn from_json(v: &Json) -> Result<SeriesWindow, String> {
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("window missing numeric '{k}'"))
        };
        Ok(SeriesWindow {
            admitted: num("admitted")? as usize,
            completed: num("completed")? as usize,
            rejected: num("rejected")? as usize,
            shed: num("shed")? as usize,
            retries: num("retries")? as usize,
            timed_out: num("timed_out")? as usize,
            decode_steps: num("decode_steps")? as usize,
            batch_sum: num("batch_sum")? as usize,
            prefill_chunks: num("prefill_chunks")? as usize,
            reprefills: num("reprefills")? as usize,
            preemptions: num("preemptions")? as usize,
            tokens: num("tokens")? as usize,
            busy_secs: num("busy_s")?,
            outage_secs: num("outage_s")?,
            kv_peak_bytes: num("kv_peak_bytes")? as u64,
            queue_peak: num("queue_peak")? as usize,
        })
    }
}

/// Online per-replica window aggregator; implements [`TraceSink`] so the
/// fleet event loop can drive it directly.
#[derive(Clone, Debug)]
pub struct ReplicaSeriesBuilder {
    window_secs: f64,
    windows: Vec<SeriesWindow>,
}

impl Default for ReplicaSeriesBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicaSeriesBuilder {
    /// A builder at the finest window width ([`BASE_WINDOW_SECS`]).
    pub fn new() -> ReplicaSeriesBuilder {
        ReplicaSeriesBuilder {
            window_secs: BASE_WINDOW_SECS,
            windows: Vec::new(),
        }
    }

    /// Current window width, seconds (`BASE_WINDOW_SECS · 2^k`).
    pub fn window_secs(&self) -> f64 {
        self.window_secs
    }

    /// Window index of time `t`, growing (and rebinning) as needed.
    fn slot(&mut self, t: f64) -> usize {
        let t = t.max(0.0);
        loop {
            let idx = (t / self.window_secs) as usize;
            if idx < MAX_WINDOWS {
                if idx >= self.windows.len() {
                    self.windows.resize(idx + 1, SeriesWindow::default());
                }
                return idx;
            }
            self.coarsen();
        }
    }

    /// Doubles the window width, merging adjacent pairs in place.
    fn coarsen(&mut self) {
        self.window_secs *= 2.0;
        let merged: Vec<SeriesWindow> = self
            .windows
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    pair[0].merge(&pair[1])
                } else {
                    pair[0]
                }
            })
            .collect();
        self.windows = merged;
    }

    /// Spreads `kind` seconds of an interval `[s, e]` pro-rata over the
    /// windows it overlaps.
    fn add_interval(&mut self, s: f64, e: f64, outage: bool) {
        let s = s.max(0.0);
        let e = e.max(s);
        let last = self.slot(e);
        let w = self.window_secs;
        let first = ((s / w) as usize).min(last);
        for i in first..=last {
            let lo = i as f64 * w;
            let hi = lo + w;
            let ov = (e.min(hi) - s.max(lo)).max(0.0);
            if ov > 0.0 {
                if outage {
                    self.windows[i].outage_secs += ov;
                } else {
                    self.windows[i].busy_secs += ov;
                }
            }
        }
    }

    /// Folds one event into the series.
    pub fn observe(&mut self, e: &ServingEvent) {
        match e {
            ServingEvent::Arrival { .. } | ServingEvent::FirstToken { .. } => {}
            ServingEvent::Queued { t, queue, .. } => {
                let i = self.slot(*t);
                self.windows[i].admitted += 1;
                self.windows[i].queue_peak = self.windows[i].queue_peak.max(*queue);
            }
            ServingEvent::Rejected { t, .. } => {
                let i = self.slot(*t);
                self.windows[i].rejected += 1;
            }
            ServingEvent::Prefill {
                start,
                end,
                fresh,
                resumed,
                kv_bytes,
                queue,
                ..
            } => {
                self.add_interval(*start, *end, false);
                let i = self.slot(*end);
                self.windows[i].prefill_chunks += 1;
                if !resumed.is_empty() {
                    self.windows[i].reprefills += 1;
                }
                self.windows[i].tokens += fresh.len();
                self.windows[i].kv_peak_bytes = self.windows[i].kv_peak_bytes.max(*kv_bytes);
                self.windows[i].queue_peak = self.windows[i].queue_peak.max(*queue);
            }
            ServingEvent::Decode {
                start,
                end,
                batch,
                kv_bytes,
                queue,
                ..
            } => {
                self.add_interval(*start, *end, false);
                let i = self.slot(*end);
                self.windows[i].decode_steps += 1;
                self.windows[i].batch_sum += batch;
                self.windows[i].tokens += batch;
                self.windows[i].kv_peak_bytes = self.windows[i].kv_peak_bytes.max(*kv_bytes);
                self.windows[i].queue_peak = self.windows[i].queue_peak.max(*queue);
            }
            ServingEvent::Preempted { t, .. } => {
                let i = self.slot(*t);
                self.windows[i].preemptions += 1;
            }
            ServingEvent::Outage { start, end } => {
                self.add_interval(*start, *end, true);
            }
            ServingEvent::Completed { t, .. } => {
                let i = self.slot(*t);
                self.windows[i].completed += 1;
            }
            ServingEvent::Shed { t, queue, .. } => {
                let i = self.slot(*t);
                self.windows[i].shed += 1;
                self.windows[i].queue_peak = self.windows[i].queue_peak.max(*queue);
            }
            ServingEvent::Retried { t, .. } => {
                let i = self.slot(*t);
                self.windows[i].retries += 1;
            }
            // The redistribution itself is already counted by its
            // retry decisions; the landing shows up as a Queued event
            // on the survivor replica.
            ServingEvent::Redistributed { .. } => {}
            ServingEvent::TimedOut { t, .. } => {
                let i = self.slot(*t);
                self.windows[i].timed_out += 1;
            }
        }
    }

    /// Finalizes the builder into a series.
    pub fn finish(self) -> ReplicaSeries {
        ReplicaSeries {
            window_secs: self.window_secs,
            windows: self.windows,
        }
    }
}

impl TraceSink for ReplicaSeriesBuilder {
    fn event(&mut self, e: &ServingEvent) {
        self.observe(e);
    }
}

/// One replica's finished window series.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReplicaSeries {
    /// Window width, seconds.
    pub window_secs: f64,
    /// Windows from `t = 0`, each covering `[i·w, (i+1)·w)`.
    pub windows: Vec<SeriesWindow>,
}

impl ReplicaSeries {
    /// Coarsens to `width` (must be `window_secs · 2^k`); no-op when
    /// already at `width`.
    fn coarsen_to(&mut self, width: f64) {
        while self.window_secs < width * (1.0 - 1e-9) {
            self.window_secs *= 2.0;
            self.windows = self
                .windows
                .chunks(2)
                .map(|p| {
                    if p.len() == 2 {
                        p[0].merge(&p[1])
                    } else {
                        p[0]
                    }
                })
                .collect();
        }
    }
}

/// The whole fleet's window series at one common width.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetSeries {
    /// Window width shared by every replica, seconds.
    pub window_secs: f64,
    /// Per-replica series, replica order.
    pub replicas: Vec<ReplicaSeries>,
}

impl FleetSeries {
    /// Assembles per-replica builders, coarsening everything to the
    /// widest width so windows align across replicas.
    pub fn from_builders(builders: Vec<ReplicaSeriesBuilder>) -> FleetSeries {
        let mut replicas: Vec<ReplicaSeries> = builders.into_iter().map(|b| b.finish()).collect();
        let width = replicas
            .iter()
            .map(|r| r.window_secs)
            .fold(BASE_WINDOW_SECS, f64::max);
        for r in &mut replicas {
            r.coarsen_to(width);
        }
        FleetSeries {
            window_secs: width,
            replicas,
        }
    }

    /// Fleet-summed windows (element-wise merge across replicas).
    pub fn aggregate(&self) -> Vec<SeriesWindow> {
        let len = self
            .replicas
            .iter()
            .map(|r| r.windows.len())
            .max()
            .unwrap_or(0);
        let mut out = vec![SeriesWindow::default(); len];
        for r in &self.replicas {
            for (i, w) in r.windows.iter().enumerate() {
                out[i] = out[i].merge(w);
            }
        }
        out
    }

    /// Serializes as the `timeseries` section of the serving artifact.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("window_secs", Json::Num(self.window_secs)),
            (
                "replicas",
                Json::Arr(
                    self.replicas
                        .iter()
                        .map(|r| {
                            Json::obj(vec![(
                                "windows",
                                Json::Arr(r.windows.iter().map(|w| w.to_json()).collect()),
                            )])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the `timeseries` section back.
    ///
    /// # Errors
    ///
    /// Describes the first missing or mistyped field.
    pub fn from_json(v: &Json) -> Result<FleetSeries, String> {
        let window_secs = v
            .get("window_secs")
            .and_then(Json::as_f64)
            .ok_or("timeseries missing 'window_secs'")?;
        let reps = v
            .get("replicas")
            .and_then(Json::as_arr)
            .ok_or("timeseries missing 'replicas'")?;
        let mut replicas = Vec::with_capacity(reps.len());
        for r in reps {
            let ws = r
                .get("windows")
                .and_then(Json::as_arr)
                .ok_or("replica series missing 'windows'")?;
            let windows = ws
                .iter()
                .map(SeriesWindow::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            replicas.push(ReplicaSeries {
                window_secs,
                windows,
            });
        }
        Ok(FleetSeries {
            window_secs,
            replicas,
        })
    }
}

/// Whether a parsed artifact is a serving `FleetReport` (vs a training
/// `RunMetrics` document).
pub fn is_serving_artifact(doc: &Json) -> bool {
    doc.get("ttft_ms").is_some() && doc.get("per_replica").is_some()
}

const SHADES: &[u8] = b" .:-=+*#%@";
const STRIP_COLS: usize = 64;

fn shade(x: f64, max: f64) -> char {
    if x <= 0.0 || max <= 0.0 {
        return ' ';
    }
    let i = ((x / max) * (SHADES.len() - 1) as f64).round() as usize;
    SHADES[i.min(SHADES.len() - 1)] as char
}

/// Downsamples to at most [`STRIP_COLS`] values by merging equal runs.
fn strip(values: &[f64]) -> Vec<f64> {
    if values.len() <= STRIP_COLS {
        return values.to_vec();
    }
    let group = values.len().div_ceil(STRIP_COLS);
    values
        .chunks(group)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// A headline scalar compared across two serving runs.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetDelta {
    /// Metric name as it appears in the artifact.
    pub name: &'static str,
    /// Value in run A.
    pub a: f64,
    /// Value in run B.
    pub b: f64,
}

/// Comparison of two serving artifacts: headline scalar deltas plus
/// aligned per-window strips of the fleet-aggregated time-series.
/// Render with `Display`.
#[derive(Clone, Debug)]
pub struct FleetDiff {
    /// Headline metric pairs.
    pub deltas: Vec<FleetDelta>,
    series_a: FleetSeries,
    series_b: FleetSeries,
}

impl FleetDiff {
    /// Builds the diff from two parsed serving artifacts.
    ///
    /// # Errors
    ///
    /// When either document is not a serving artifact or its
    /// `timeseries` section is malformed.
    pub fn new(a: &Json, b: &Json) -> Result<FleetDiff, String> {
        if !is_serving_artifact(a) || !is_serving_artifact(b) {
            return Err("both artifacts must be serving reports (serving.schema.json)".into());
        }
        let scalar = |doc: &Json, path: &[&str]| -> f64 {
            let mut v = doc;
            for k in path {
                match v.get(k) {
                    Some(next) => v = next,
                    None => return 0.0,
                }
            }
            v.as_f64().unwrap_or(0.0)
        };
        let headline: [(&'static str, &[&str]); 10] = [
            ("qps", &["qps"]),
            ("completed", &["completed"]),
            ("rejected", &["rejected"]),
            ("preemptions", &["preemptions"]),
            ("failovers", &["failovers"]),
            ("ttft_p99_ms", &["ttft_ms", "p99"]),
            ("tpot_p50_ms", &["tpot_ms", "p50"]),
            ("goodput_tokens_per_chip_s", &["goodput_tokens_per_chip_s"]),
            ("slo_attainment", &["slo_attainment"]),
            ("makespan_secs", &["makespan_secs"]),
        ];
        let deltas = headline
            .iter()
            .map(|(name, path)| FleetDelta {
                name,
                a: scalar(a, path),
                b: scalar(b, path),
            })
            .collect();
        let series = |doc: &Json| -> Result<FleetSeries, String> {
            match doc.get("timeseries") {
                Some(ts) => FleetSeries::from_json(ts),
                None => Ok(FleetSeries::default()),
            }
        };
        let mut series_a = series(a)?;
        let mut series_b = series(b)?;
        // Align widths so window i means the same wall-clock in both.
        let width = series_a.window_secs.max(series_b.window_secs);
        if width > 0.0 {
            for s in [&mut series_a, &mut series_b] {
                for r in &mut s.replicas {
                    r.coarsen_to(width);
                }
                s.window_secs = width;
            }
        }
        Ok(FleetDiff {
            deltas,
            series_a,
            series_b,
        })
    }
}

impl fmt::Display for FleetDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "serving run diff (A vs B)")?;
        writeln!(
            f,
            "{:<27} {:>14} {:>14} {:>10}",
            "metric", "A", "B", "delta"
        )?;
        for d in &self.deltas {
            writeln!(
                f,
                "{:<27} {:>14.3} {:>14.3} {:>+10.3}",
                d.name,
                d.a,
                d.b,
                d.b - d.a
            )?;
        }
        let agg_a = self.series_a.aggregate();
        let agg_b = self.series_b.aggregate();
        if agg_a.is_empty() && agg_b.is_empty() {
            return Ok(());
        }
        writeln!(
            f,
            "time-series ({}s windows, fleet-aggregated, '{}' = max):",
            self.series_a.window_secs,
            SHADES[SHADES.len() - 1] as char
        )?;
        type Track<'a> = (&'a str, &'a dyn Fn(&SeriesWindow) -> f64);
        let tracks: [Track; 4] = [
            ("tokens/s", &|w| w.tokens as f64),
            ("queue depth", &|w| w.queue_peak as f64),
            ("batch occupancy", &|w| {
                if w.decode_steps == 0 {
                    0.0
                } else {
                    w.batch_sum as f64 / w.decode_steps as f64
                }
            }),
            ("preemptions", &|w| w.preemptions as f64),
        ];
        for (name, get) in tracks {
            let va = strip(&agg_a.iter().map(get).collect::<Vec<_>>());
            let vb = strip(&agg_b.iter().map(get).collect::<Vec<_>>());
            let max = va.iter().chain(&vb).fold(0.0_f64, |m, &x| m.max(x));
            let row = |v: &[f64]| v.iter().map(|&x| shade(x, max)).collect::<String>();
            writeln!(f, "{:<17} A |{}|", name, row(&va))?;
            writeln!(f, "{:<17} B |{}|", "", row(&vb))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode(start: f64, end: f64, batch: usize, queue: usize) -> ServingEvent {
        ServingEvent::Decode {
            start,
            end,
            batch,
            degraded: false,
            kv_bytes: 100,
            queue,
        }
    }

    #[test]
    fn windows_bin_counts_and_busy_time() {
        let mut b = ReplicaSeriesBuilder::new();
        b.observe(&ServingEvent::Queued {
            id: 0,
            t: 0.1,
            queue: 1,
        });
        b.observe(&decode(0.0, 0.5, 4, 2)); // spans windows 0 and 1
        b.observe(&ServingEvent::Completed {
            id: 0,
            t: 0.5,
            ttft: 0.2,
            generated: 3,
            preemptions: 0,
            slo_ok: true,
        });
        let s = b.finish();
        assert_eq!(s.window_secs, BASE_WINDOW_SECS);
        assert_eq!(s.windows[0].admitted, 1);
        assert!((s.windows[0].busy_secs - 0.25).abs() < 1e-12);
        assert!((s.windows[1].busy_secs - 0.25).abs() < 1e-12);
        // The step and completion land in the window containing `end`.
        assert_eq!(s.windows[2].decode_steps, 1);
        assert_eq!(s.windows[2].tokens, 4);
        assert_eq!(s.windows[2].completed, 1);
        assert_eq!(s.windows[2].queue_peak, 2);
    }

    #[test]
    fn long_runs_rebin_instead_of_growing_without_bound() {
        let mut b = ReplicaSeriesBuilder::new();
        let horizon = BASE_WINDOW_SECS * (MAX_WINDOWS as f64) * 5.0;
        let step = horizon / 100.0;
        for i in 0..100 {
            let t = i as f64 * step;
            b.observe(&decode(t, t + 0.1, 1, 0));
        }
        let s = b.finish();
        assert!(s.windows.len() <= MAX_WINDOWS);
        assert!(s.window_secs > BASE_WINDOW_SECS);
        // Rebinning conserves totals.
        let steps: usize = s.windows.iter().map(|w| w.decode_steps).sum();
        assert_eq!(steps, 100);
        let busy: f64 = s.windows.iter().map(|w| w.busy_secs).sum();
        assert!((busy - 100.0 * 0.1).abs() < 1e-6);
    }

    #[test]
    fn fleet_series_aligns_replica_widths_and_round_trips() {
        let mut fine = ReplicaSeriesBuilder::new();
        fine.observe(&decode(0.0, 1.0, 2, 0));
        let mut coarse = ReplicaSeriesBuilder::new();
        let far = BASE_WINDOW_SECS * MAX_WINDOWS as f64 * 2.0;
        coarse.observe(&decode(far, far + 1.0, 3, 0));
        let fleet = FleetSeries::from_builders(vec![fine, coarse]);
        assert!(fleet.window_secs > BASE_WINDOW_SECS);
        for r in &fleet.replicas {
            assert_eq!(r.window_secs, fleet.window_secs);
        }
        let parsed = FleetSeries::from_json(&fleet.to_json()).expect("round trip");
        assert_eq!(parsed, fleet);
        let agg = fleet.aggregate();
        assert_eq!(agg.iter().map(|w| w.decode_steps).sum::<usize>(), 2);
    }

    #[test]
    fn fleet_diff_reports_deltas_and_strips() {
        let mut b = ReplicaSeriesBuilder::new();
        b.observe(&decode(0.0, 1.0, 2, 1));
        let series = FleetSeries::from_builders(vec![b]).to_json();
        let mk = |p99: f64| {
            Json::obj(vec![
                ("qps", Json::Num(5.0)),
                ("completed", Json::Num(10.0)),
                ("ttft_ms", Json::obj(vec![("p99", Json::Num(p99))])),
                ("per_replica", Json::Arr(vec![])),
                ("timeseries", series.clone()),
            ])
        };
        let diff = FleetDiff::new(&mk(100.0), &mk(250.0)).expect("serving artifacts");
        let text = diff.to_string();
        assert!(text.contains("ttft_p99_ms"));
        assert!(text.contains("+150.000"));
        assert!(text.contains("tokens/s"));
        let not_serving = Json::obj(vec![("makespan", Json::Num(1.0))]);
        assert!(FleetDiff::new(&not_serving, &mk(1.0)).is_err());
    }

    #[test]
    fn sniffer_distinguishes_serving_artifacts() {
        let serving = Json::obj(vec![
            ("ttft_ms", Json::obj(vec![])),
            ("per_replica", Json::Arr(vec![])),
        ]);
        let training = Json::obj(vec![("lanes", Json::Arr(vec![]))]);
        assert!(is_serving_artifact(&serving));
        assert!(!is_serving_artifact(&training));
    }
}
