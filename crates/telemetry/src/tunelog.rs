//! Structured autotuner attribution: predicted vs simulated time for
//! every candidate the tuner evaluated — the paper's Figure 15 error
//! analysis as a queryable artifact.

use std::fmt;

use crate::json::Json;

/// One autotuner candidate: a `(layer, pass, slice count)` point with the
/// analytical prediction and the simulated ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneCandidate {
    /// Mesh rows.
    pub mesh_rows: usize,
    /// Mesh columns.
    pub mesh_cols: usize,
    /// What was tuned, e.g. `"fc1/fwd"`.
    pub label: String,
    /// The dataflow of the candidate schedule.
    pub dataflow: String,
    /// The slice count evaluated.
    pub slice_count: usize,
    /// Analytical cost-model makespan, seconds.
    pub predicted: f64,
    /// Simulated makespan, seconds.
    pub simulated: f64,
    /// Analytical communication time, seconds.
    pub predicted_comm: f64,
    /// Simulated communication (transfer + sync + launch) time, seconds.
    pub simulated_comm: f64,
    /// Whether the tuner selected this candidate.
    pub chosen: bool,
}

impl TuneCandidate {
    /// Signed relative error of the prediction, `(pred - sim) / sim`.
    pub fn rel_error(&self) -> f64 {
        if self.simulated == 0.0 {
            0.0
        } else {
            (self.predicted - self.simulated) / self.simulated
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mesh_rows", Json::Num(self.mesh_rows as f64)),
            ("mesh_cols", Json::Num(self.mesh_cols as f64)),
            ("label", Json::Str(self.label.clone())),
            ("dataflow", Json::Str(self.dataflow.clone())),
            ("slice_count", Json::Num(self.slice_count as f64)),
            ("predicted_s", Json::Num(self.predicted)),
            ("simulated_s", Json::Num(self.simulated)),
            ("predicted_comm_s", Json::Num(self.predicted_comm)),
            ("simulated_comm_s", Json::Num(self.simulated_comm)),
            ("rel_error", Json::Num(self.rel_error())),
            ("chosen", Json::Bool(self.chosen)),
        ])
    }

    fn from_json(doc: &Json) -> Result<TuneCandidate, String> {
        let num = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing numeric field '{key}'"))
        };
        let text = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        Ok(TuneCandidate {
            mesh_rows: num("mesh_rows")? as usize,
            mesh_cols: num("mesh_cols")? as usize,
            label: text("label")?,
            dataflow: text("dataflow")?,
            slice_count: num("slice_count")? as usize,
            predicted: num("predicted_s")?,
            simulated: num("simulated_s")?,
            predicted_comm: num("predicted_comm_s")?,
            simulated_comm: num("simulated_comm_s")?,
            chosen: doc.get("chosen").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// Every candidate one tuning session evaluated.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneLog {
    /// Candidates in evaluation order.
    pub candidates: Vec<TuneCandidate>,
}

impl TuneLog {
    /// Appends a candidate.
    pub fn push(&mut self, candidate: TuneCandidate) {
        self.candidates.push(candidate);
    }

    /// Mean of `|rel_error|` over all candidates; 0 when empty.
    pub fn mean_abs_rel_error(&self) -> f64 {
        if self.candidates.is_empty() {
            return 0.0;
        }
        self.candidates
            .iter()
            .map(|c| c.rel_error().abs())
            .sum::<f64>()
            / self.candidates.len() as f64
    }

    /// Largest `|rel_error|` over all candidates; 0 when empty.
    pub fn max_abs_rel_error(&self) -> f64 {
        self.candidates
            .iter()
            .map(|c| c.rel_error().abs())
            .fold(0.0, f64::max)
    }

    /// The chosen candidates, in evaluation order.
    pub fn chosen(&self) -> impl Iterator<Item = &TuneCandidate> {
        self.candidates.iter().filter(|c| c.chosen)
    }

    /// Serializes the log (schema version 1).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(1.0)),
            (
                "summary",
                Json::obj(vec![
                    ("candidates", Json::Num(self.candidates.len() as f64)),
                    ("mean_abs_rel_error", Json::Num(self.mean_abs_rel_error())),
                    ("max_abs_rel_error", Json::Num(self.max_abs_rel_error())),
                ]),
            ),
            (
                "candidates",
                Json::Arr(self.candidates.iter().map(TuneCandidate::to_json).collect()),
            ),
        ])
    }

    /// Deserializes a log produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed candidate field.
    pub fn from_json(doc: &Json) -> Result<TuneLog, String> {
        let items = doc
            .get("candidates")
            .and_then(Json::as_arr)
            .ok_or("missing 'candidates' array")?;
        let candidates = items
            .iter()
            .map(TuneCandidate::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TuneLog { candidates })
    }
}

impl fmt::Display for TuneLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:<10} {:>3} {:>12} {:>12} {:>8}  chosen",
            "label", "dataflow", "S", "predicted", "simulated", "err%"
        )?;
        for c in &self.candidates {
            writeln!(
                f,
                "{:<14} {:<10} {:>3} {:>12.4e} {:>12.4e} {:>+8.2}  {}",
                c.label,
                c.dataflow,
                c.slice_count,
                c.predicted,
                c.simulated,
                c.rel_error() * 100.0,
                if c.chosen { "*" } else { "" }
            )?;
        }
        write!(
            f,
            "{} candidates | mean |err| {:.2}% | max |err| {:.2}%",
            self.candidates.len(),
            self.mean_abs_rel_error() * 100.0,
            self.max_abs_rel_error() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(s: usize, predicted: f64, simulated: f64, chosen: bool) -> TuneCandidate {
        TuneCandidate {
            mesh_rows: 4,
            mesh_cols: 4,
            label: "fc1/fwd".to_string(),
            dataflow: "os".to_string(),
            slice_count: s,
            predicted,
            simulated,
            predicted_comm: predicted * 0.3,
            simulated_comm: simulated * 0.35,
            chosen,
        }
    }

    #[test]
    fn error_statistics() {
        let mut log = TuneLog::default();
        log.push(candidate(1, 1.1, 1.0, false)); // +10%
        log.push(candidate(2, 0.8, 1.0, true)); // -20%
        assert!((log.mean_abs_rel_error() - 0.15).abs() < 1e-12);
        assert!((log.max_abs_rel_error() - 0.2).abs() < 1e-12);
        assert_eq!(log.chosen().count(), 1);
    }

    #[test]
    fn json_round_trip() {
        let mut log = TuneLog::default();
        log.push(candidate(1, 1.1, 1.0, false));
        log.push(candidate(4, 0.9, 0.95, true));
        let text = log.to_json().to_string_pretty();
        let back = TuneLog::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn display_is_a_table_with_summary() {
        let mut log = TuneLog::default();
        log.push(candidate(2, 1.0, 1.0, true));
        let text = log.to_string();
        assert!(text.contains("fc1/fwd"));
        assert!(text.contains("mean |err|"));
    }

    #[test]
    fn zero_simulated_time_gives_zero_error() {
        assert_eq!(candidate(1, 0.5, 0.0, false).rel_error(), 0.0);
    }
}
