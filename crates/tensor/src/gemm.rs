//! Reference GeMM kernels.
//!
//! These kernels are correctness oracles for the distributed algorithms, not
//! performance kernels: the timing layer of the reproduction never touches
//! matrix data, so these only need to be fast enough for test-scale problems.

use crate::Matrix;

/// Computes `C = A · B`.
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use meshslice_tensor::{Matrix, gemm};
///
/// let a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f32);
/// let c = gemm::matmul(&a, &Matrix::identity(2));
/// assert_eq!(c, a);
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    matmul_acc(&mut c, a, b);
    c
}

/// Computes `C += A · B`.
///
/// # Panics
///
/// Panics if the shapes are inconsistent.
pub fn matmul_acc(c: &mut Matrix, a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimensions differ: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    assert_eq!(
        (c.rows(), c.cols()),
        (a.rows(), b.cols()),
        "output shape mismatch"
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // i-k-j loop order keeps the inner loop streaming rows of B and C.
    for i in 0..m {
        for p in 0..k {
            let aip = a_data[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let b_row = &b_data[p * n..(p + 1) * n];
            let c_row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
}

/// Computes `C = A · Bᵀ` (the left-stationary partial product of Figure 5).
///
/// # Panics
///
/// Panics if `a.cols() != b.cols()`.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "A·Bᵀ requires equal column counts: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for i in 0..m {
        let a_row = &a_data[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b_data[j * k..(j + 1) * k];
            let dot: f32 = a_row.iter().zip(b_row).map(|(x, y)| x * y).sum();
            c[(i, j)] = dot;
        }
    }
    c
}

/// Computes `C = Aᵀ · B` (the right-stationary partial product of Figure 5).
///
/// # Panics
///
/// Panics if `a.rows() != b.rows()`.
pub fn matmul_at_b(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "Aᵀ·B requires equal row counts: A is {}x{}, B is {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    for p in 0..k {
        let a_row = &a_data[p * m..(p + 1) * m];
        let b_row = &b_data[p * n..(p + 1) * n];
        for (i, &aip) in a_row.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let c_row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
    c
}

/// Accumulates the outer product `C += col · row` of a column vector
/// (`m × 1`) and a row vector (`1 × n`).
///
/// This is the primitive of the paper's Algorithm 1: `C_ij` is the sum of
/// `K` outer products of the columns of `A_i*` and the rows of `B_*j`.
///
/// # Panics
///
/// Panics if `col` is not a column vector, `row` is not a row vector, or the
/// output shape does not match.
pub fn outer_product_acc(c: &mut Matrix, col: &Matrix, row: &Matrix) {
    assert_eq!(col.cols(), 1, "first operand must be a column vector");
    assert_eq!(row.rows(), 1, "second operand must be a row vector");
    assert_eq!(
        (c.rows(), c.cols()),
        (col.rows(), row.cols()),
        "output shape mismatch"
    );
    let n = row.cols();
    for i in 0..c.rows() {
        let ci = col.as_slice()[i];
        let c_row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
        for (cv, rv) in c_row.iter_mut().zip(row.as_slice()) {
            *cv += ci * rv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Matrix, Matrix) {
        let a = Matrix::random(5, 7, 11);
        let b = Matrix::random(7, 3, 13);
        (a, b)
    }

    #[test]
    fn matmul_against_identity() {
        let (a, _) = small();
        assert!(matmul(&a, &Matrix::identity(7)).approx_eq(&a, 1e-6));
        assert!(matmul(&Matrix::identity(5), &a).approx_eq(&a, 1e-6));
    }

    #[test]
    fn matmul_small_known_values() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = Matrix::random(4, 6, 1);
        let b = Matrix::random(5, 6, 2);
        assert!(matmul_a_bt(&a, &b).approx_eq(&matmul(&a, &b.transpose()), 1e-5));
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = Matrix::random(6, 4, 3);
        let b = Matrix::random(6, 5, 4);
        assert!(matmul_at_b(&a, &b).approx_eq(&matmul(&a.transpose(), &b), 1e-5));
    }

    #[test]
    fn matmul_acc_accumulates() {
        let (a, b) = small();
        let mut c = matmul(&a, &b);
        matmul_acc(&mut c, &a, &b);
        let mut twice = matmul(&a, &b);
        twice.scale(2.0);
        assert!(c.approx_eq(&twice, 1e-5));
    }

    #[test]
    fn sum_of_outer_products_equals_matmul() {
        // This is exactly the decomposition of the paper's Figure 6:
        // C = a_0·b_0 + ... + a_{K-1}·b_{K-1}.
        let (a, b) = small();
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for p in 0..a.cols() {
            let col = a.block(0, p, a.rows(), 1);
            let row = b.block(p, 0, 1, b.cols());
            outer_product_acc(&mut c, &col, &row);
        }
        assert!(c.approx_eq(&matmul(&a, &b), 1e-5));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_inner_dimension_panics() {
        matmul(&Matrix::zeros(2, 3), &Matrix::zeros(4, 2));
    }
}
