//! Dense matrix primitives for the MeshSlice reproduction.
//!
//! This crate provides the numeric substrate every other crate builds on:
//!
//! - [`Matrix`]: a dense, row-major `f32` matrix with block/concat utilities.
//! - [`gemm`]: reference GeMM kernels (`C = AB`, `C = ABᵀ`, `C = AᵀB`) used to
//!   verify the distributed algorithms numerically.
//! - [`slice`](mod@slice): the blocked `slice_col` / `slice_row` operations of the paper's
//!   Algorithm 2, the heart of the MeshSlice 2D GeMM algorithm.
//! - [`shard`]: partitioning a matrix into a `Pr × Pc` grid of shards and
//!   reassembling it, as required by 2D tensor parallelism.
//! - [`shape`]: GeMM problem shapes and their FLOP/byte accounting.
//!
//! # Example
//!
//! ```
//! use meshslice_tensor::{Matrix, gemm};
//!
//! let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f32);
//! let b = Matrix::identity(3);
//! let c = gemm::matmul(&a, &b);
//! assert!(c.approx_eq(&a, 1e-6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gemm;
mod matrix;
pub mod shape;
pub mod shard;
pub mod slice;

pub use matrix::Matrix;
pub use shape::GemmShape;
