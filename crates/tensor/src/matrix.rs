//! The dense row-major matrix type.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// `Matrix` is the single numeric container used throughout the MeshSlice
/// reproduction. It deliberately stays small and predictable: row-major
/// storage, no views, no strides. Distributed algorithms copy sub-matrices
/// explicitly, which mirrors the data movement they model.
///
/// # Example
///
/// ```
/// use meshslice_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f32);
/// assert_eq!(m[(0, 1)], 1.0);
/// assert_eq!(m.transpose()[(1, 0)], 1.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a matrix whose entry `(i, j)` is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Creates a matrix with entries drawn uniformly from `[-1, 1)`.
    ///
    /// The generator is seeded, so results are reproducible.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        // A small xorshift generator keeps this crate's dependency on `rand`
        // out of the hot path and makes the sequence stable across versions.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map the top 24 bits to [-1, 1).
            let v = (state >> 40) as f32 / (1u64 << 23) as f32;
            v - 1.0
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The `(rows, cols)` pair.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(
            i < self.rows,
            "row {} out of bounds ({} rows)",
            i,
            self.rows
        );
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.data[j * self.cols + i])
    }

    /// Copies the sub-matrix starting at `(row0, col0)` with the given size.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn block(&self, row0: usize, col0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(
            row0 + rows <= self.rows && col0 + cols <= self.cols,
            "block ({row0}+{rows}, {col0}+{cols}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..rows {
            let src = &self.data[(row0 + i) * self.cols + col0..][..cols];
            out.data[i * cols..(i + 1) * cols].copy_from_slice(src);
        }
        out
    }

    /// Writes `src` into the sub-matrix starting at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if `src` extends past the matrix bounds.
    pub fn set_block(&mut self, row0: usize, col0: usize, src: &Matrix) {
        assert!(
            row0 + src.rows <= self.rows && col0 + src.cols <= self.cols,
            "block ({row0}+{}, {col0}+{}) out of bounds for {}x{}",
            src.rows,
            src.cols,
            self.rows,
            self.cols
        );
        for i in 0..src.rows {
            let dst = &mut self.data[(row0 + i) * self.cols + col0..][..src.cols];
            dst.copy_from_slice(&src.data[i * src.cols..(i + 1) * src.cols]);
        }
    }

    /// Accumulates `src` into the sub-matrix starting at `(row0, col0)`.
    ///
    /// # Panics
    ///
    /// Panics if `src` extends past the matrix bounds.
    pub fn add_block(&mut self, row0: usize, col0: usize, src: &Matrix) {
        assert!(
            row0 + src.rows <= self.rows && col0 + src.cols <= self.cols,
            "block out of bounds"
        );
        for i in 0..src.rows {
            let dst = &mut self.data[(row0 + i) * self.cols + col0..][..src.cols];
            for (d, s) in dst
                .iter_mut()
                .zip(&src.data[i * src.cols..(i + 1) * src.cols])
            {
                *d += s;
            }
        }
    }

    /// Stacks matrices vertically, in order.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn vcat(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "vcat of zero matrices");
        let cols = parts[0].cols;
        assert!(
            parts.iter().all(|p| p.cols == cols),
            "vcat with mismatched column counts"
        );
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut r = 0;
        for p in parts {
            out.set_block(r, 0, p);
            r += p.rows;
        }
        out
    }

    /// Concatenates matrices horizontally, in order.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn hcat(parts: &[Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "hcat of zero matrices");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "hcat with mismatched row counts"
        );
        let cols = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        let mut c = 0;
        for p in parts {
            out.set_block(0, c, p);
            c += p.cols;
        }
        out
    }

    /// Splits the matrix into `n` equal vertical chunks (by rows).
    ///
    /// # Panics
    ///
    /// Panics if `n` does not divide the row count.
    pub fn vsplit(&self, n: usize) -> Vec<Matrix> {
        assert!(
            n > 0 && self.rows.is_multiple_of(n),
            "{} rows not divisible by {n}",
            self.rows
        );
        let chunk = self.rows / n;
        (0..n)
            .map(|i| self.block(i * chunk, 0, chunk, self.cols))
            .collect()
    }

    /// Splits the matrix into `n` equal horizontal chunks (by columns).
    ///
    /// # Panics
    ///
    /// Panics if `n` does not divide the column count.
    pub fn hsplit(&self, n: usize) -> Vec<Matrix> {
        assert!(
            n > 0 && self.cols.is_multiple_of(n),
            "{} cols not divisible by {n}",
            self.cols
        );
        let chunk = self.cols / n;
        (0..n)
            .map(|j| self.block(0, j * chunk, self.rows, chunk))
            .collect()
    }

    /// Element-wise comparison with absolute-or-relative tolerance.
    ///
    /// Two entries `x` and `y` match when `|x − y| ≤ tol · max(1, |x|, |y|)`.
    pub fn approx_eq(&self, other: &Matrix, tol: f32) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(x, y)| (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0))
    }

    /// The largest absolute element-wise difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    /// Scales every element in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl AddAssign<&Matrix> for Matrix {
    /// Element-wise accumulation.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.dims(), rhs.dims(), "dimension mismatch in +=");
        for (d, s) in self.data.iter_mut().zip(&rhs.data) {
            *d += s;
        }
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix {}x{}", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            writeln!(f, " [")?;
            for i in 0..self.rows {
                write!(f, "  ")?;
                for j in 0..self.cols {
                    write!(f, "{:>8.3} ", self.data[i * self.cols + j])?;
                }
                writeln!(f)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.dims(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_indexes_row_major() {
        let m = Matrix::from_fn(2, 3, |i, j| (10 * i + j) as f32);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(0, 2)], 2.0);
        assert_eq!(m[(1, 0)], 10.0);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = Matrix::random(5, 7, 42);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn block_and_set_block_round_trip() {
        let m = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f32);
        let b = m.block(1, 2, 2, 3);
        assert_eq!(b[(0, 0)], m[(1, 2)]);
        let mut z = Matrix::zeros(4, 6);
        z.set_block(1, 2, &b);
        assert_eq!(z[(2, 4)], m[(2, 4)]);
        assert_eq!(z[(0, 0)], 0.0);
    }

    #[test]
    fn add_block_accumulates() {
        let mut m = Matrix::zeros(2, 2);
        let one = Matrix::from_fn(1, 1, |_, _| 1.0);
        m.add_block(0, 0, &one);
        m.add_block(0, 0, &one);
        assert_eq!(m[(0, 0)], 2.0);
    }

    #[test]
    fn vcat_vsplit_round_trip() {
        let m = Matrix::random(6, 4, 1);
        let parts = m.vsplit(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(Matrix::vcat(&parts), m);
    }

    #[test]
    fn hcat_hsplit_round_trip() {
        let m = Matrix::random(4, 6, 2);
        let parts = m.hsplit(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(Matrix::hcat(&parts), m);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        let mut b = a.clone();
        b[(0, 0)] = 1.0 + 1e-7;
        assert!(a.approx_eq(&b, 1e-6));
        b[(0, 0)] = 1.1;
        assert!(!a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Matrix::random(3, 3, 7), Matrix::random(3, 3, 7));
        assert_ne!(Matrix::random(3, 3, 7), Matrix::random(3, 3, 8));
    }

    #[test]
    fn add_assign_sums_elementwise() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f32);
        let mut b = a.clone();
        b += &a;
        assert_eq!(b[(1, 1)], 4.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn block_out_of_bounds_panics() {
        Matrix::zeros(2, 2).block(1, 1, 2, 2);
    }

    #[test]
    fn debug_is_never_empty() {
        let s = format!("{:?}", Matrix::zeros(1, 1));
        assert!(s.contains("Matrix 1x1"));
    }
}
