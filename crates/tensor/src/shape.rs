//! GeMM problem shapes and their FLOP/byte accounting.

use std::fmt;

/// The shape of a GeMM `C[M×N] = A[M×K] · B[K×N]`.
///
/// Shapes are the currency of the timing layer: the simulator and the
/// analytical cost models work purely on shapes and byte counts, never on
/// matrix data.
///
/// # Example
///
/// ```
/// use meshslice_tensor::GemmShape;
///
/// let s = GemmShape::new(128, 64, 32);
/// assert_eq!(s.flops(), 2 * 128 * 64 * 32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GemmShape {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// The contracted dimension (columns of `A`, rows of `B`).
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape from `(m, n, k)`.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmShape { m, n, k }
    }

    /// The number of floating-point operations (`2·m·n·k`, multiply + add).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Bytes of the left input `A` for the given element size.
    pub fn a_bytes(&self, elem_bytes: usize) -> u64 {
        self.m as u64 * self.k as u64 * elem_bytes as u64
    }

    /// Bytes of the right input `B` for the given element size.
    pub fn b_bytes(&self, elem_bytes: usize) -> u64 {
        self.k as u64 * self.n as u64 * elem_bytes as u64
    }

    /// Bytes of the output `C` for the given element size.
    pub fn c_bytes(&self, elem_bytes: usize) -> u64 {
        self.m as u64 * self.n as u64 * elem_bytes as u64
    }

    /// Total bytes touched (`A + B + C`).
    pub fn total_bytes(&self, elem_bytes: usize) -> u64 {
        self.a_bytes(elem_bytes) + self.b_bytes(elem_bytes) + self.c_bytes(elem_bytes)
    }

    /// Arithmetic intensity in FLOPs per byte, assuming each matrix is
    /// streamed once.
    pub fn arithmetic_intensity(&self, elem_bytes: usize) -> f64 {
        self.flops() as f64 / self.total_bytes(elem_bytes) as f64
    }

    /// The shape of the backward-data GeMM `X' = Y'·Wᵀ` derived from a
    /// forward GeMM `Y = X·W` of this shape: `(m, k, n)`.
    pub fn backward_data(&self) -> GemmShape {
        GemmShape::new(self.m, self.k, self.n)
    }

    /// The shape of the backward-weight GeMM `W' = Xᵀ·Y'` derived from a
    /// forward GeMM `Y = X·W` of this shape: `(k, n, m)`.
    pub fn backward_weight(&self) -> GemmShape {
        GemmShape::new(self.k, self.n, self.m)
    }

    /// The shape with `m` and `n` swapped (the transposed problem).
    pub fn transposed(&self) -> GemmShape {
        GemmShape::new(self.n, self.m, self.k)
    }
}

impl fmt::Debug for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GemmShape(M={}, N={}, K={})", self.m, self.n, self.k)
    }
}

impl fmt::Display for GemmShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flops_counts_multiply_add() {
        assert_eq!(GemmShape::new(2, 3, 4).flops(), 48);
    }

    #[test]
    fn byte_accounting() {
        let s = GemmShape::new(4, 8, 2);
        assert_eq!(s.a_bytes(2), 16);
        assert_eq!(s.b_bytes(2), 32);
        assert_eq!(s.c_bytes(2), 64);
        assert_eq!(s.total_bytes(2), 112);
    }

    #[test]
    fn backward_shapes_follow_the_paper() {
        // Forward Y = X·W with (M, N, K); backward-data X' = Y'·Wᵀ is
        // (M, K, N); backward-weight W' = Xᵀ·Y' is (K, N, M).
        let fwd = GemmShape::new(100, 20, 30);
        assert_eq!(fwd.backward_data(), GemmShape::new(100, 30, 20));
        assert_eq!(fwd.backward_weight(), GemmShape::new(30, 20, 100));
    }

    #[test]
    fn all_three_passes_have_equal_flops() {
        let fwd = GemmShape::new(64, 32, 16);
        assert_eq!(fwd.flops(), fwd.backward_data().flops());
        assert_eq!(fwd.flops(), fwd.backward_weight().flops());
    }

    #[test]
    fn arithmetic_intensity_grows_with_size() {
        let small = GemmShape::new(16, 16, 16).arithmetic_intensity(2);
        let large = GemmShape::new(1024, 1024, 1024).arithmetic_intensity(2);
        assert!(large > small);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(GemmShape::new(1, 2, 3).to_string(), "1x2x3");
    }
}
