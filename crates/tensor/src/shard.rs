//! Partitioning matrices into 2D grids of shards.
//!
//! 2D tensor parallelism stores shard `X_ij` of every matrix on the chip at
//! row `i`, column `j` of the mesh. [`ShardGrid`] owns such a grid of shards
//! and can reassemble the global matrix, which the tests use to check the
//! distributed algorithms against dense GeMM.

use crate::Matrix;

/// A `Pr × Pc` grid of equally-sized matrix shards.
///
/// # Example
///
/// ```
/// use meshslice_tensor::{Matrix, shard::ShardGrid};
///
/// let x = Matrix::from_fn(4, 6, |i, j| (i * 6 + j) as f32);
/// let grid = ShardGrid::partition(&x, 2, 3);
/// assert_eq!(grid.shard(1, 2)[(0, 0)], x[(2, 4)]);
/// assert_eq!(grid.assemble(), x);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ShardGrid {
    mesh_rows: usize,
    mesh_cols: usize,
    shard_rows: usize,
    shard_cols: usize,
    shards: Vec<Matrix>,
}

impl ShardGrid {
    /// Splits `x` into `mesh_rows × mesh_cols` equal shards.
    ///
    /// Shard `(i, j)` holds rows `[i·R/Pr, (i+1)·R/Pr)` and columns
    /// `[j·C/Pc, (j+1)·C/Pc)` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if the mesh dimensions do not evenly divide the matrix.
    pub fn partition(x: &Matrix, mesh_rows: usize, mesh_cols: usize) -> Self {
        assert!(
            mesh_rows > 0 && mesh_cols > 0,
            "mesh dimensions must be positive"
        );
        assert!(
            x.rows().is_multiple_of(mesh_rows),
            "{} rows not divisible by {} mesh rows",
            x.rows(),
            mesh_rows
        );
        assert!(
            x.cols().is_multiple_of(mesh_cols),
            "{} cols not divisible by {} mesh cols",
            x.cols(),
            mesh_cols
        );
        let shard_rows = x.rows() / mesh_rows;
        let shard_cols = x.cols() / mesh_cols;
        let mut shards = Vec::with_capacity(mesh_rows * mesh_cols);
        for i in 0..mesh_rows {
            for j in 0..mesh_cols {
                shards.push(x.block(i * shard_rows, j * shard_cols, shard_rows, shard_cols));
            }
        }
        ShardGrid {
            mesh_rows,
            mesh_cols,
            shard_rows,
            shard_cols,
            shards,
        }
    }

    /// Creates a grid of zero shards with the given global and mesh shapes.
    ///
    /// # Panics
    ///
    /// Panics if the mesh dimensions do not evenly divide the global shape.
    pub fn zeros(
        global_rows: usize,
        global_cols: usize,
        mesh_rows: usize,
        mesh_cols: usize,
    ) -> Self {
        ShardGrid::partition(
            &Matrix::zeros(global_rows, global_cols),
            mesh_rows,
            mesh_cols,
        )
    }

    /// Builds a grid from per-position shards (row-major over the mesh).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty, its length is not `mesh_rows · mesh_cols`,
    /// or the shards have unequal dimensions.
    pub fn from_shards(mesh_rows: usize, mesh_cols: usize, shards: Vec<Matrix>) -> Self {
        assert_eq!(
            shards.len(),
            mesh_rows * mesh_cols,
            "expected {} shards, got {}",
            mesh_rows * mesh_cols,
            shards.len()
        );
        assert!(!shards.is_empty(), "a grid needs at least one shard");
        let (shard_rows, shard_cols) = shards[0].dims();
        assert!(
            shards.iter().all(|s| s.dims() == (shard_rows, shard_cols)),
            "all shards must have equal dimensions"
        );
        ShardGrid {
            mesh_rows,
            mesh_cols,
            shard_rows,
            shard_cols,
            shards,
        }
    }

    /// Mesh rows `Pr`.
    pub fn mesh_rows(&self) -> usize {
        self.mesh_rows
    }

    /// Mesh columns `Pc`.
    pub fn mesh_cols(&self) -> usize {
        self.mesh_cols
    }

    /// Per-shard dimensions `(rows, cols)`.
    pub fn shard_dims(&self) -> (usize, usize) {
        (self.shard_rows, self.shard_cols)
    }

    /// Global matrix dimensions `(rows, cols)`.
    pub fn global_dims(&self) -> (usize, usize) {
        (
            self.shard_rows * self.mesh_rows,
            self.shard_cols * self.mesh_cols,
        )
    }

    /// Borrows shard `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the mesh.
    pub fn shard(&self, i: usize, j: usize) -> &Matrix {
        assert!(
            i < self.mesh_rows && j < self.mesh_cols,
            "shard ({i},{j}) out of bounds"
        );
        &self.shards[i * self.mesh_cols + j]
    }

    /// Mutably borrows shard `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `(i, j)` is outside the mesh.
    pub fn shard_mut(&mut self, i: usize, j: usize) -> &mut Matrix {
        assert!(
            i < self.mesh_rows && j < self.mesh_cols,
            "shard ({i},{j}) out of bounds"
        );
        &mut self.shards[i * self.mesh_cols + j]
    }

    /// Reassembles the global matrix from the shards.
    pub fn assemble(&self) -> Matrix {
        let (rows, cols) = self.global_dims();
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..self.mesh_rows {
            for j in 0..self.mesh_cols {
                out.set_block(i * self.shard_rows, j * self.shard_cols, self.shard(i, j));
            }
        }
        out
    }

    /// Iterates over `((i, j), shard)` in row-major mesh order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, usize), &Matrix)> {
        self.shards
            .iter()
            .enumerate()
            .map(move |(idx, s)| ((idx / self.mesh_cols, idx % self.mesh_cols), s))
    }
}

/// Splits `x` into `p` shards by rows (1D row partitioning).
///
/// # Panics
///
/// Panics if `p` does not divide `x.rows()`.
pub fn partition_rows(x: &Matrix, p: usize) -> Vec<Matrix> {
    x.vsplit(p)
}

/// Splits `x` into `p` shards by columns (1D column partitioning).
///
/// # Panics
///
/// Panics if `p` does not divide `x.cols()`.
pub fn partition_cols(x: &Matrix, p: usize) -> Vec<Matrix> {
    x.hsplit(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_assemble_round_trip() {
        let x = Matrix::random(12, 8, 77);
        for (pr, pc) in [(1, 1), (2, 2), (3, 4), (12, 8)] {
            let grid = ShardGrid::partition(&x, pr, pc);
            assert_eq!(grid.global_dims(), (12, 8));
            assert_eq!(grid.assemble(), x);
        }
    }

    #[test]
    fn shard_holds_expected_region() {
        let x = Matrix::from_fn(6, 6, |i, j| (i * 6 + j) as f32);
        let grid = ShardGrid::partition(&x, 3, 2);
        // Shard (2, 1) covers rows 4..6, cols 3..6.
        assert_eq!(grid.shard(2, 1)[(0, 0)], x[(4, 3)]);
        assert_eq!(grid.shard(2, 1)[(1, 2)], x[(5, 5)]);
    }

    #[test]
    fn shard_mut_writes_through_to_assembly() {
        let mut grid = ShardGrid::zeros(4, 4, 2, 2);
        grid.shard_mut(1, 0)[(0, 0)] = 5.0;
        assert_eq!(grid.assemble()[(2, 0)], 5.0);
    }

    #[test]
    fn from_shards_matches_partition() {
        let x = Matrix::random(4, 6, 3);
        let grid = ShardGrid::partition(&x, 2, 3);
        let rebuilt = ShardGrid::from_shards(2, 3, grid.iter().map(|(_, s)| s.clone()).collect());
        assert_eq!(rebuilt, grid);
    }

    #[test]
    fn iter_yields_mesh_coordinates_in_row_major_order() {
        let grid = ShardGrid::zeros(2, 4, 2, 2);
        let coords: Vec<_> = grid.iter().map(|(c, _)| c).collect();
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_partition_panics() {
        ShardGrid::partition(&Matrix::zeros(5, 4), 2, 2);
    }

    #[test]
    fn one_d_partitions() {
        let x = Matrix::random(8, 4, 9);
        let rows = partition_rows(&x, 4);
        assert_eq!(rows.len(), 4);
        assert_eq!(Matrix::vcat(&rows), x);
        let cols = partition_cols(&x, 2);
        assert_eq!(Matrix::hcat(&cols), x);
    }
}
