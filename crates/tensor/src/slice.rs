//! Blocked shard slicing — the paper's Algorithm 2.
//!
//! MeshSlice partitions each local matrix shard into `S` *sub-shards* and
//! processes one sub-shard per loop iteration. A naive slicing that takes
//! every `S`-th column vector would produce strided, non-contiguous memory
//! accesses, so the paper blocks the slicing: columns (or rows) are grouped
//! into blocks of `B` contiguous vectors (`B = 8` on TPUs, which access
//! memory in 128×8 chunks), and block `j` belongs to sub-shard `j mod S`.
//!
//! Formally, `slice_cols(X, spec, s)` reshapes an `R × C` matrix into
//! `<R, C/(S·B), S, B>` and selects `[:, :, s, :]`, exactly as in
//! Algorithm 2 of the paper.

use std::error::Error;
use std::fmt;

use crate::Matrix;

/// Parameters of the blocked slicing operation.
///
/// # Example
///
/// ```
/// use meshslice_tensor::slice::SliceSpec;
///
/// let spec = SliceSpec::new(4, 2); // S = 4 sub-shards, blocks of B = 2
/// assert!(spec.validates(16).is_ok());
/// assert!(spec.validates(12).is_err()); // 12 is not a multiple of S·B = 8
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SliceSpec {
    slice_count: usize,
    block: usize,
}

/// Error returned when a [`SliceSpec`] cannot slice a dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvalidSliceError {
    dim: usize,
    slice_count: usize,
    block: usize,
}

impl fmt::Display for InvalidSliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimension {} is not a positive multiple of slice_count {} x block {}",
            self.dim, self.slice_count, self.block
        )
    }
}

impl Error for InvalidSliceError {}

impl SliceSpec {
    /// Creates a spec with `slice_count` sub-shards and block size `block`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(slice_count: usize, block: usize) -> Self {
        assert!(slice_count > 0, "slice count must be positive");
        assert!(block > 0, "block size must be positive");
        SliceSpec { slice_count, block }
    }

    /// The number of sub-shards `S`.
    pub fn slice_count(&self) -> usize {
        self.slice_count
    }

    /// The block size `B` (contiguous vectors per block).
    pub fn block(&self) -> usize {
        self.block
    }

    /// Checks that a dimension of extent `dim` can be sliced by this spec,
    /// i.e. that `dim` is a positive multiple of `S · B`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSliceError`] when the divisibility requirement of
    /// Algorithm 2 is not met.
    pub fn validates(&self, dim: usize) -> Result<(), InvalidSliceError> {
        let unit = self.slice_count * self.block;
        if dim == 0 || !dim.is_multiple_of(unit) {
            Err(InvalidSliceError {
                dim,
                slice_count: self.slice_count,
                block: self.block,
            })
        } else {
            Ok(())
        }
    }

    /// The slice counts that can legally slice a dimension of extent `dim`
    /// with this spec's block size, in increasing order.
    ///
    /// Per the paper, "the user can then choose any slice count S from the
    /// divisors of C/B".
    pub fn legal_slice_counts(dim: usize, block: usize) -> Vec<usize> {
        if block == 0 || dim == 0 || !dim.is_multiple_of(block) {
            return Vec::new();
        }
        let blocks = dim / block;
        (1..=blocks).filter(|s| blocks.is_multiple_of(*s)).collect()
    }

    fn assert_valid(&self, dim: usize, what: &str) {
        assert!(
            self.validates(dim).is_ok(),
            "{what} extent {dim} is not a multiple of S*B = {}*{}",
            self.slice_count,
            self.block
        );
    }
}

/// Returns the (ascending) indices selected by sub-shard `s` in a dimension
/// of extent `dim`: all `i` with `(i / B) mod S == s`.
///
/// # Panics
///
/// Panics if `s >= spec.slice_count()` or the extent is not sliceable.
pub fn sliced_indices(dim: usize, spec: SliceSpec, s: usize) -> Vec<usize> {
    assert!(s < spec.slice_count(), "sub-shard index out of range");
    spec.assert_valid(dim, "dimension");
    (0..dim)
        .filter(|i| (i / spec.block()) % spec.slice_count() == s)
        .collect()
}

/// Extracts sub-shard `s`: every block of `B` columns whose block index is
/// congruent to `s` modulo `S`, concatenated in ascending order.
///
/// The result has `x.cols() / S` columns. This is `slice_col` of the paper's
/// Figure 5 / Algorithm 2.
///
/// # Panics
///
/// Panics if `s >= spec.slice_count()` or `x.cols()` is not a multiple of
/// `S · B`.
///
/// # Example
///
/// ```
/// use meshslice_tensor::{Matrix, slice::{slice_cols, SliceSpec}};
///
/// let x = Matrix::from_fn(1, 8, |_, j| j as f32);
/// let spec = SliceSpec::new(2, 2); // S = 2, B = 2
/// let s0 = slice_cols(&x, spec, 0);
/// assert_eq!(s0.as_slice(), &[0.0, 1.0, 4.0, 5.0]);
/// let s1 = slice_cols(&x, spec, 1);
/// assert_eq!(s1.as_slice(), &[2.0, 3.0, 6.0, 7.0]);
/// ```
pub fn slice_cols(x: &Matrix, spec: SliceSpec, s: usize) -> Matrix {
    assert!(s < spec.slice_count(), "sub-shard index out of range");
    spec.assert_valid(x.cols(), "column");
    let b = spec.block();
    let groups = x.cols() / (spec.slice_count() * b);
    let mut out = Matrix::zeros(x.rows(), x.cols() / spec.slice_count());
    for g in 0..groups {
        let src_col = (g * spec.slice_count() + s) * b;
        let block = x.block(0, src_col, x.rows(), b);
        out.set_block(0, g * b, &block);
    }
    out
}

/// Extracts sub-shard `s` of the rows: every block of `B` rows whose block
/// index is congruent to `s` modulo `S`, stacked in ascending order.
///
/// The result has `x.rows() / S` rows. This is `slice_row` of the paper's
/// Figure 5.
///
/// # Panics
///
/// Panics if `s >= spec.slice_count()` or `x.rows()` is not a multiple of
/// `S · B`.
pub fn slice_rows(x: &Matrix, spec: SliceSpec, s: usize) -> Matrix {
    assert!(s < spec.slice_count(), "sub-shard index out of range");
    spec.assert_valid(x.rows(), "row");
    let b = spec.block();
    let groups = x.rows() / (spec.slice_count() * b);
    let mut out = Matrix::zeros(x.rows() / spec.slice_count(), x.cols());
    for g in 0..groups {
        let src_row = (g * spec.slice_count() + s) * b;
        let block = x.block(src_row, 0, b, x.cols());
        out.set_block(g * b, 0, &block);
    }
    out
}

/// Scatters sub-shard `s` back into the columns it was sliced from —
/// the inverse of [`slice_cols`].
///
/// MeshSlice LS/RS use this to write the reduce-scattered partial outputs
/// `C_s` into the stationary output shard `C_ij`.
///
/// # Panics
///
/// Panics if shapes are inconsistent with the spec.
pub fn unslice_cols_into(dst: &mut Matrix, spec: SliceSpec, s: usize, src: &Matrix) {
    assert!(s < spec.slice_count(), "sub-shard index out of range");
    spec.assert_valid(dst.cols(), "column");
    assert_eq!(dst.rows(), src.rows(), "row count mismatch");
    assert_eq!(
        src.cols() * spec.slice_count(),
        dst.cols(),
        "sub-shard width inconsistent with slice count"
    );
    let b = spec.block();
    let groups = dst.cols() / (spec.slice_count() * b);
    for g in 0..groups {
        let dst_col = (g * spec.slice_count() + s) * b;
        let block = src.block(0, g * b, src.rows(), b);
        dst.set_block(0, dst_col, &block);
    }
}

/// Scatters sub-shard `s` back into the rows it was sliced from — the
/// inverse of [`slice_rows`].
///
/// # Panics
///
/// Panics if shapes are inconsistent with the spec.
pub fn unslice_rows_into(dst: &mut Matrix, spec: SliceSpec, s: usize, src: &Matrix) {
    assert!(s < spec.slice_count(), "sub-shard index out of range");
    spec.assert_valid(dst.rows(), "row");
    assert_eq!(dst.cols(), src.cols(), "column count mismatch");
    assert_eq!(
        src.rows() * spec.slice_count(),
        dst.rows(),
        "sub-shard height inconsistent with slice count"
    );
    let b = spec.block();
    let groups = dst.rows() / (spec.slice_count() * b);
    for g in 0..groups {
        let dst_row = (g * spec.slice_count() + s) * b;
        let block = src.block(g * b, 0, b, src.cols());
        dst.set_block(dst_row, 0, &block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_cols_selects_round_robin_blocks() {
        // 12 columns, S = 3, B = 2: blocks [0,1] [2,3] [4,5] [6,7] [8,9] [10,11]
        // belong to sub-shards 0,1,2,0,1,2.
        let x = Matrix::from_fn(2, 12, |_, j| j as f32);
        let spec = SliceSpec::new(3, 2);
        assert_eq!(slice_cols(&x, spec, 0).row(0), &[0.0, 1.0, 6.0, 7.0]);
        assert_eq!(slice_cols(&x, spec, 1).row(0), &[2.0, 3.0, 8.0, 9.0]);
        assert_eq!(slice_cols(&x, spec, 2).row(0), &[4.0, 5.0, 10.0, 11.0]);
    }

    #[test]
    fn slice_rows_matches_transposed_slice_cols() {
        let x = Matrix::random(12, 5, 3);
        let spec = SliceSpec::new(2, 3);
        for s in 0..2 {
            let by_rows = slice_rows(&x, spec, s);
            let by_cols = slice_cols(&x.transpose(), spec, s).transpose();
            assert_eq!(by_rows, by_cols);
        }
    }

    #[test]
    fn sub_shards_partition_all_columns() {
        let spec = SliceSpec::new(4, 2);
        let mut seen: Vec<usize> = (0..4).flat_map(|s| sliced_indices(24, spec, s)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..24).collect::<Vec<_>>());
    }

    #[test]
    fn unslice_cols_round_trips() {
        let x = Matrix::random(4, 24, 9);
        let spec = SliceSpec::new(3, 4);
        let mut rebuilt = Matrix::zeros(4, 24);
        for s in 0..3 {
            let sub = slice_cols(&x, spec, s);
            assert_eq!(sub.cols(), 8);
            unslice_cols_into(&mut rebuilt, spec, s, &sub);
        }
        assert_eq!(rebuilt, x);
    }

    #[test]
    fn unslice_rows_round_trips() {
        let x = Matrix::random(24, 4, 10);
        let spec = SliceSpec::new(4, 3);
        let mut rebuilt = Matrix::zeros(24, 4);
        for s in 0..4 {
            unslice_rows_into(&mut rebuilt, spec, s, &slice_rows(&x, spec, s));
        }
        assert_eq!(rebuilt, x);
    }

    #[test]
    fn slice_count_one_is_identity() {
        let x = Matrix::random(4, 8, 2);
        let spec = SliceSpec::new(1, 2);
        assert_eq!(slice_cols(&x, spec, 0), x);
        assert_eq!(slice_rows(&x, spec, 0), x);
    }

    #[test]
    fn legal_slice_counts_are_divisors_of_blocks() {
        // dim = 48, B = 8 -> 6 blocks -> S in {1, 2, 3, 6}.
        assert_eq!(SliceSpec::legal_slice_counts(48, 8), vec![1, 2, 3, 6]);
        assert!(SliceSpec::legal_slice_counts(10, 3).is_empty());
    }

    #[test]
    fn validates_reports_errors() {
        let spec = SliceSpec::new(4, 2);
        assert!(spec.validates(8).is_ok());
        let err = spec.validates(9).unwrap_err();
        assert!(err.to_string().contains("not a positive multiple"));
    }

    #[test]
    #[should_panic(expected = "sub-shard index out of range")]
    fn out_of_range_sub_shard_panics() {
        slice_cols(&Matrix::zeros(1, 8), SliceSpec::new(2, 2), 2);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn unsliceable_extent_panics() {
        slice_cols(&Matrix::zeros(1, 10), SliceSpec::new(2, 2), 0);
    }
}
