//! Property-based tests for the tensor substrate.

use meshslice_tensor::gemm::{matmul, matmul_a_bt, matmul_acc, matmul_at_b};
use meshslice_tensor::shard::ShardGrid;
use meshslice_tensor::slice::{
    slice_cols, slice_rows, sliced_indices, unslice_cols_into, unslice_rows_into, SliceSpec,
};
use meshslice_tensor::{GemmShape, Matrix};
use proptest::prelude::*;

/// Small positive dimension.
fn dim() -> impl Strategy<Value = usize> {
    1usize..12
}

proptest! {
    #[test]
    fn matmul_is_associative_with_identity(
        (m, k) in (dim(), dim()),
        seed in any::<u64>(),
    ) {
        let a = Matrix::random(m, k, seed);
        prop_assert!(matmul(&a, &Matrix::identity(k)).approx_eq(&a, 1e-5));
        prop_assert!(matmul(&Matrix::identity(m), &a).approx_eq(&a, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_addition(
        (m, k, n) in (dim(), dim(), dim()),
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let a = Matrix::random(m, k, s1);
        let b = Matrix::random(k, n, s2);
        let c = Matrix::random(k, n, s3);
        let lhs = matmul(&a, &(&b + &c));
        let rhs = &matmul(&a, &b) + &matmul(&a, &c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    fn transpose_variants_agree(
        (m, k, n) in (dim(), dim(), dim()),
        s1 in any::<u64>(), s2 in any::<u64>(),
    ) {
        let a = Matrix::random(m, k, s1);
        let b = Matrix::random(k, n, s2);
        let reference = matmul(&a, &b);
        // A·Bᵀ with B pre-transposed.
        prop_assert!(matmul_a_bt(&a, &b.transpose()).approx_eq(&reference, 1e-4));
        // Aᵀ·B with A pre-transposed.
        prop_assert!(matmul_at_b(&a.transpose(), &b).approx_eq(&reference, 1e-4));
    }

    #[test]
    fn matmul_acc_is_linear(
        (m, k, n) in (dim(), dim(), dim()),
        s1 in any::<u64>(), s2 in any::<u64>(),
    ) {
        let a = Matrix::random(m, k, s1);
        let b = Matrix::random(k, n, s2);
        let mut acc = Matrix::zeros(m, n);
        matmul_acc(&mut acc, &a, &b);
        matmul_acc(&mut acc, &a, &b);
        let mut doubled = matmul(&a, &b);
        doubled.scale(2.0);
        prop_assert!(acc.approx_eq(&doubled, 1e-4));
    }

    #[test]
    fn slicing_partitions_columns(
        s in 1usize..5,
        b in 1usize..5,
        groups in 1usize..4,
        rows in dim(),
        seed in any::<u64>(),
    ) {
        let cols = s * b * groups;
        let x = Matrix::random(rows, cols, seed);
        let spec = SliceSpec::new(s, b);
        // Every column appears in exactly one sub-shard, and unslicing
        // reconstructs the original matrix.
        let mut rebuilt = Matrix::zeros(rows, cols);
        let mut index_count = 0;
        for sub in 0..s {
            let part = slice_cols(&x, spec, sub);
            prop_assert_eq!(part.cols(), cols / s);
            unslice_cols_into(&mut rebuilt, spec, sub, &part);
            index_count += sliced_indices(cols, spec, sub).len();
        }
        prop_assert_eq!(index_count, cols);
        prop_assert_eq!(rebuilt, x);
    }

    #[test]
    fn slicing_partitions_rows(
        s in 1usize..5,
        b in 1usize..5,
        groups in 1usize..4,
        cols in dim(),
        seed in any::<u64>(),
    ) {
        let rows = s * b * groups;
        let x = Matrix::random(rows, cols, seed);
        let spec = SliceSpec::new(s, b);
        let mut rebuilt = Matrix::zeros(rows, cols);
        for sub in 0..s {
            unslice_rows_into(&mut rebuilt, spec, sub, &slice_rows(&x, spec, sub));
        }
        prop_assert_eq!(rebuilt, x);
    }

    #[test]
    fn sliced_gemm_equals_dense_gemm(
        s in 1usize..4,
        b in 1usize..4,
        groups in 1usize..3,
        (m, n) in (dim(), dim()),
        s1 in any::<u64>(), s2 in any::<u64>(),
    ) {
        // The essence of the paper's Algorithm 1: summing the partial
        // products of matching sub-shards of A's columns and B's rows
        // reproduces the dense product.
        let k = s * b * groups;
        let a = Matrix::random(m, k, s1);
        let bmat = Matrix::random(k, n, s2);
        let spec = SliceSpec::new(s, b);
        let mut c = Matrix::zeros(m, n);
        for sub in 0..s {
            let a_s = slice_cols(&a, spec, sub);
            let b_s = slice_rows(&bmat, spec, sub);
            matmul_acc(&mut c, &a_s, &b_s);
        }
        prop_assert!(c.approx_eq(&matmul(&a, &bmat), 1e-4));
    }

    #[test]
    fn shard_grid_round_trips(
        pr in 1usize..5,
        pc in 1usize..5,
        (r, c) in (1usize..4, 1usize..4),
        seed in any::<u64>(),
    ) {
        let x = Matrix::random(pr * r, pc * c, seed);
        let grid = ShardGrid::partition(&x, pr, pc);
        prop_assert_eq!(grid.shard_dims(), (r, c));
        prop_assert_eq!(grid.assemble(), x);
    }

    #[test]
    fn backward_shapes_preserve_flops(m in 1usize..100, n in 1usize..100, k in 1usize..100) {
        let s = GemmShape::new(m, n, k);
        prop_assert_eq!(s.flops(), s.backward_data().flops());
        prop_assert_eq!(s.flops(), s.backward_weight().flops());
        prop_assert_eq!(s.transposed().transposed(), s);
    }
}
