//! The MeshSlice LLM autotuner end to end: phase 1 picks the dataflow of
//! every FC layer (Table 1), phase 2 co-optimizes the mesh shape and the
//! per-pass slice counts with the analytical cost models — then the plan
//! is validated against the cluster simulator.
//!
//! ```text
//! cargo run --release --example autotune_llm [gpt3|megatron] [chips]
//! ```

use meshslice::autotuner::Autotuner;
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::report::Table;
use meshslice::training::{end_to_end, simulate_fc_step, Algorithm};
use meshslice::SimConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let model = match args.next().as_deref() {
        Some("megatron") => LlmConfig::megatron_nlg(),
        _ => LlmConfig::gpt3(),
    };
    let chips: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(256);
    let setup = TrainingSetup::weak_scaling(chips);
    let cfg = SimConfig::tpu_v4();

    println!("autotuning {model} for a {chips}-chip TPUv4 cluster");
    println!(
        "training setup: batch {}, sequence {}, {} tokens per step",
        setup.batch,
        setup.seq_len,
        setup.tokens()
    );
    println!("~{:.0}B parameters", model.param_count() as f64 / 1e9);
    println!();

    let tuner = Autotuner::new(cfg.clone());

    // Phase 1: dataflows.
    println!("phase 1 — dataflow selection (largest matrix stays stationary):");
    for (layer, st) in tuner.phase1(&model, setup) {
        println!(
            "  {:>4} ({} -> {}): {st:?}-stationary",
            layer.name, layer.input_dim, layer.output_dim
        );
    }
    println!();

    // Phase 2: mesh shape + slice counts.
    let plan = tuner.tune(&model, setup, chips);
    println!(
        "phase 2 — chosen mesh shape: {} (searched {} candidates)",
        plan.mesh_shape,
        Autotuner::candidate_meshes(chips).len()
    );
    let mut table = Table::new(vec![
        "layer".into(),
        "pass".into(),
        "dataflow".into(),
        "GeMM (MxNxK)".into(),
        "slice count S".into(),
    ]);
    for layer in &plan.layers {
        for pass in &layer.passes {
            table.row(vec![
                layer.layer.name.to_string(),
                pass.pass.to_string(),
                pass.problem.dataflow.to_string(),
                pass.problem.shape.to_string(),
                pass.slice_count.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "estimated FC time per transformer block: {:.3} ms",
        plan.estimated_block_time.as_secs() * 1e3
    );

    // Validate against the simulator.
    let fc = simulate_fc_step(&model, setup, chips, Algorithm::MeshSlice, &cfg)
        .expect("MeshSlice runs everywhere");
    let e2e = end_to_end(&model, setup, chips, &fc, &cfg);
    println!(
        "simulated FC time per block:             {:.3} ms ({:.1}% FLOP utilization)",
        fc.block_time().as_secs() * 1e3,
        fc.utilization() * 100.0
    );
    println!(
        "estimate error vs simulation: {:.1}%",
        (plan.estimated_block_time.as_secs() / fc.block_time().as_secs() - 1.0).abs() * 100.0
    );
    println!(
        "end-to-end training step ({} layers, incl. non-FC ops): {:.1} ms",
        model.layers,
        e2e.step.as_secs() * 1e3
    );
}
