//! Head-to-head comparison of all five 2D GeMM algorithms (plus the 1D
//! baselines) on one LLM-scale GeMM: every algorithm first proves itself
//! functionally on a small mesh, then races in the cluster simulator.
//!
//! ```text
//! cargo run --release --example compare_algorithms [chips]
//! ```

use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::report::{pct, Table};
use meshslice::training::{simulate_fc_step, Algorithm};
use meshslice::{
    Cannon, Collective, Dataflow, DistributedGemm, GemmProblem, GemmShape, MeshSlice, SimConfig,
    Summa, Wang,
};
use meshslice_mesh::Torus2d;

fn main() {
    // ---------------------------------------------------------------
    // 1. Functional agreement on a 2x2 mesh: all algorithms compute the
    //    same product.
    // ---------------------------------------------------------------
    let mesh = Torus2d::new(2, 2);
    let problem = GemmProblem::new(GemmShape::new(32, 32, 32), Dataflow::Os);
    let (a, b) = problem.random_inputs(&mesh, 7);
    let reference = problem.reference(&a.assemble(), &b.assemble());
    let algos: Vec<Box<dyn DistributedGemm>> = vec![
        Box::new(MeshSlice::new(2, 2)),
        Box::new(Collective),
        Box::new(Wang::new()),
        Box::new(Summa::auto(&mesh)),
        Box::new(Cannon),
    ];
    for algo in &algos {
        let c = algo
            .execute(&mesh, problem, &a, &b)
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        assert!(
            c.assemble().approx_eq(&reference, 1e-4),
            "{} disagrees with dense GeMM",
            algo.name()
        );
        println!("functional: {:>10} == dense GeMM  ok", algo.name());
    }

    // ---------------------------------------------------------------
    // 2. The race: one GPT-3 transformer block (12 FC GeMMs, forward +
    //    backward) on a TPUv4 cluster, each algorithm at its own tuned
    //    mesh shape and iteration counts.
    // ---------------------------------------------------------------
    let chips: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let model = LlmConfig::gpt3();
    let setup = TrainingSetup::weak_scaling(chips);
    let cfg = SimConfig::tpu_v4();
    println!();
    println!(
        "simulating one {} transformer block on {chips} TPUv4 chips (batch {}):",
        model.name, setup.batch
    );
    let mut table = Table::new(vec![
        "algorithm".into(),
        "mesh".into(),
        "block time".into(),
        "FLOP utilization".into(),
    ]);
    let mut results: Vec<(Algorithm, f64)> = Vec::new();
    for algo in Algorithm::ALL {
        match simulate_fc_step(&model, setup, chips, algo, &cfg) {
            Some(r) => {
                results.push((algo, r.block_time().as_secs()));
                table.row(vec![
                    algo.name().to_string(),
                    r.mesh_shape.to_string(),
                    format!("{:.3} ms", r.block_time().as_secs() * 1e3),
                    pct(r.utilization()),
                ]);
            }
            None => table.row(vec![
                algo.name().to_string(),
                "-".into(),
                "-".into(),
                "unsupported".into(),
            ]),
        }
    }
    println!("{table}");
    if let Some((winner, t)) = results.iter().min_by(|a, b| a.1.total_cmp(&b.1)) {
        println!("fastest: {winner} at {:.3} ms per block", t * 1e3);
    }
}
