//! §6 extension demo: running convolution layers as distributed GeMMs.
//!
//! A ResNet-50 stage is lowered to im2col GeMMs, padded to the mesh, and
//! simulated with MeshSlice vs Collective on a 16-chip cluster — showing
//! that the whole stack (algorithms, cost models, simulator) applies to
//! CNNs unchanged, exactly as the paper's discussion suggests.
//!
//! ```text
//! cargo run --release --example conv_resnet
//! ```

use meshslice::conv::Conv2d;
use meshslice::report::Table;
use meshslice::{Collective, Dataflow, DistributedGemm, Engine, GemmProblem, MeshSlice, SimConfig};
use meshslice_mesh::Torus2d;

fn main() {
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let batch = 256;

    // A slice of ResNet-50: (input extent, conv layer).
    let stage: Vec<(&str, usize, Conv2d)> = vec![
        ("conv2_3x3", 56, Conv2d::same(64, 64, 3)),
        ("conv3_3x3", 28, Conv2d::same(128, 128, 3)),
        ("conv4_3x3", 14, Conv2d::same(256, 256, 3)),
        ("conv5_3x3", 7, Conv2d::same(512, 512, 3)),
        ("conv5_1x1", 7, Conv2d::same(512, 2048, 1)),
    ];

    println!("ResNet-50 stage as distributed GeMMs on a 4x4 TPUv4 mesh (batch {batch}):");
    println!();
    let mut table = Table::new(vec![
        "layer".into(),
        "im2col GeMM (MxNxK)".into(),
        "pad overhead".into(),
        "MeshSlice".into(),
        "Collective".into(),
        "speedup".into(),
    ]);
    for (name, extent, conv) in &stage {
        let raw = GemmProblem::new(conv.as_gemm(batch, *extent, *extent), Dataflow::Os);
        // Convolution shapes are rarely mesh-divisible: pad (S·B = 16).
        let (problem, overhead) = raw.padded_for(mesh.shape(), 16);
        let run = |algo: &dyn DistributedGemm| {
            let program = algo
                .schedule(&mesh, problem, cfg.elem_bytes)
                .expect("padded problem divides the mesh");
            Engine::new(mesh.clone(), cfg.clone()).run(&program)
        };
        let ms = run(&MeshSlice::new(2, 8));
        let coll = run(&Collective);
        table.row(vec![
            name.to_string(),
            raw.shape.to_string(),
            format!("{:.1}%", overhead * 100.0),
            format!("{:.0} us", ms.makespan().as_secs() * 1e6),
            format!("{:.0} us", coll.makespan().as_secs() * 1e6),
            format!(
                "{:.2}x",
                coll.makespan().as_secs() / ms.makespan().as_secs()
            ),
        ]);
    }
    println!("{table}");
    println!("im2col inflates K by kernel-area; the 1x1 convolution is a plain GeMM.");
}
