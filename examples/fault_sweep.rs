//! Robustness-aware autotuning under injected cluster faults: sample
//! seeded fault profiles (a straggler chip plus heavy-tailed compute
//! jitter and degraded links), score every (mesh, slice count) candidate
//! by its p95 makespan across the draws, and compare the robust choice
//! against the fault-free optimum.
//!
//! ```text
//! cargo run --release --example fault_sweep [gpt3|megatron]
//! ```

use meshslice::autotuner::{Autotuner, RobustObjective};
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::report::Table;
use meshslice::SimConfig;
use meshslice_faults::{FaultSpec, JitterModel};

fn main() {
    let model = match std::env::args().nth(1).as_deref() {
        Some("megatron") => LlmConfig::megatron_nlg(),
        _ => LlmConfig::gpt3(),
    };
    let chips = 16;
    let seeds = 4;
    let cfg = SimConfig::tpu_v4();
    let setup = TrainingSetup::weak_scaling(chips);
    let tuner = Autotuner::new(cfg.clone());

    let spec = FaultSpec::stragglers(1, 1.5)
        .with_jitter(JitterModel::LogNormal { sigma: 0.05 })
        .with_link_degradation(0.25, 0.7);
    let profiles = spec.sample_profiles(chips, 42, seeds);

    println!(
        "{model} on {chips} chips, {seeds} seeded fault draws \
         (1.5x straggler, lognormal jitter, degraded links):"
    );
    println!();

    let plan = tuner.tune_robust(
        &model,
        setup,
        chips,
        &[1, 2, 4, 8],
        &profiles,
        RobustObjective::P95,
    );
    let mut t = Table::new(vec![
        "mesh".into(),
        "S".into(),
        "nominal".into(),
        "p95".into(),
        "degradation".into(),
    ]);
    for c in plan.candidates.iter().take(8) {
        t.row(vec![
            c.mesh_shape.to_string(),
            c.requested_s.to_string(),
            format!("{:.3} ms", c.nominal.as_secs() * 1e3),
            format!("{:.3} ms", c.score.as_secs() * 1e3),
            format!("{:.2}x", c.degradation()),
        ]);
    }
    println!("{t}");

    let best = plan.best();
    let nominal_best = plan
        .candidates
        .iter()
        .min_by(|a, b| a.nominal.as_secs().total_cmp(&b.nominal.as_secs()))
        .unwrap();
    println!(
        "robust choice: mesh {} S={} ({:.3} ms p95)",
        best.mesh_shape,
        best.requested_s,
        best.score.as_secs() * 1e3
    );
    println!(
        "fault-free optimum: mesh {} S={} ({:.3} ms p95 under faults)",
        nominal_best.mesh_shape,
        nominal_best.requested_s,
        nominal_best.score.as_secs() * 1e3
    );
}
