//! A 3D torus pod, end-to-end: describe a 4×4×4 pod with a straggler and
//! a degraded link, let the autotuner enumerate every 2D plane of the pod
//! through the N-D view algebra, project the pod's condition onto each
//! plane, and place MeshSlice on the winner — then price one MeshSlice
//! GeMM step on that plane under its actual faults.
//!
//! ```text
//! cargo run --release --example pod3d
//! ```

use meshslice::autotuner::Autotuner;
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::{DistributedGemm, Engine, MeshSlice, SimConfig};
use meshslice_mesh::{AxisName, ChipId, MeshShape, MeshView};
use meshslice_sim::PodProfile;

fn main() {
    // ---------------------------------------------------------------
    // 1. The physical pod: a 4×4×4 torus, 64 chips. Chip (0,0,0) is a
    //    2x straggler and its +y link runs at half rate, so every plane
    //    through it prices worse than a clean one.
    // ---------------------------------------------------------------
    let shape = MeshShape::nd(&[("x", 4), ("y", 4), ("z", 4)]).expect("valid pod shape");
    let pod = PodProfile::ideal(shape)
        .with_compute_slowdown(ChipId(0), 2.0)
        .with_link_multiplier(ChipId(0), AxisName::Y, true, 0.5);

    let planes = MeshView::full(shape).planes();
    println!(
        "pod {shape}: {} chips, {} candidate 2D planes",
        shape.num_chips(),
        planes.len()
    );

    // ---------------------------------------------------------------
    // 2. Tune: for every plane the autotuner projects the pod condition
    //    onto the plane's logical 4×4 torus, tunes dataflows and slice
    //    counts there, and simulates the FC block under the plane-local
    //    profile. The winner avoids the faulty corner entirely.
    // ---------------------------------------------------------------
    let model = LlmConfig::gpt3();
    let setup = TrainingSetup::weak_scaling(16);
    let tuner = Autotuner::new(SimConfig::tpu_v4());
    let plan = tuner
        .tune_pod(&model, setup, &pod)
        .expect("GPT-3 divides a 4x4 plane");

    println!(
        "winner: plane {} (logical {}), simulated FC block {:.2} ms (ideal estimate {:.2} ms)",
        plan.plane,
        plan.mesh_shape,
        plan.simulated_block_time.as_secs() * 1e3,
        plan.estimated_block_time.as_secs() * 1e3,
    );
    assert!(
        !plan.physical_chips.contains(&ChipId(0)),
        "the tuner must route around the degraded corner"
    );

    // ---------------------------------------------------------------
    // 3. Price one MeshSlice GeMM step on the chosen plane: rebuild the
    //    plane's logical torus + fault profile, schedule the first FC
    //    pass with its tuned slice count, and run the simulator.
    // ---------------------------------------------------------------
    let assignment = pod.project(&plan.plane.view).expect("plane is rank 2");
    let pass = &plan.layers[0].passes[0];
    let cfg = tuner.cost_model().config();
    let algo = MeshSlice::new(pass.slice_count, tuner.block());
    let program = algo
        .schedule(&assignment.torus, pass.problem, cfg.elem_bytes)
        .expect("tuned pass divides the plane");
    let report = Engine::new(assignment.torus.clone(), cfg.clone())
        .with_faults(assignment.profile.clone())
        .run(&program);
    println!(
        "one step of {}/{} on the plane: S = {}, {} ops, makespan {:.1} us",
        plan.layers[0].layer.name,
        pass.pass,
        pass.slice_count,
        program.len(),
        report.makespan().as_secs() * 1e6,
    );

    // The same step on a plane through the straggler is strictly slower.
    let dirty = planes
        .iter()
        .find(|p| p.view.chips().contains(&ChipId(0)))
        .expect("some plane passes through the corner");
    let dirty_assign = pod.project(&dirty.view).expect("plane is rank 2");
    let dirty_report = Engine::new(dirty_assign.torus.clone(), cfg.clone())
        .with_faults(dirty_assign.profile.clone())
        .run(&program);
    println!(
        "same step on fault-affected plane {}: makespan {:.1} us",
        dirty,
        dirty_report.makespan().as_secs() * 1e6,
    );
    assert!(dirty_report.makespan() > report.makespan());
}
