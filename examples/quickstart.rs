//! Quickstart: run the MeshSlice 2D GeMM algorithm functionally on a
//! small simulated mesh, verify the result against dense GeMM, and time
//! the same computation at LLM scale with the cluster simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use meshslice::{Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice, SimConfig};
use meshslice_mesh::Torus2d;

fn main() {
    // ---------------------------------------------------------------
    // 1. Functional: a 4x4 mesh of virtual chips computes C = A·B with
    //    MeshSlice's sliced partial collectives, moving real matrices.
    // ---------------------------------------------------------------
    let mesh = Torus2d::new(4, 4);
    let problem = GemmProblem::new(GemmShape::new(64, 64, 128), Dataflow::Os);
    let algo = MeshSlice::new(4, 2); // S = 4 sub-shards, block B = 2

    let (a, b) = problem.random_inputs(&mesh, 2025);
    let c = algo
        .execute(&mesh, problem, &a, &b)
        .expect("problem divides the mesh");
    let reference = problem.reference(&a.assemble(), &b.assemble());
    let err = c.assemble().max_abs_diff(&reference);
    println!(
        "functional check on {} chips: C = A·B, max |error| = {err:.2e}",
        mesh.num_chips()
    );
    assert!(c.assemble().approx_eq(&reference, 1e-4));

    // ---------------------------------------------------------------
    // 2. Timing: the same algorithm at GPT-3 scale (one FC-layer GeMM on
    //    256 TPUv4 chips), executed by the discrete-event simulator.
    // ---------------------------------------------------------------
    let cluster = Torus2d::new(32, 8);
    let cfg = SimConfig::tpu_v4();
    let big = GemmProblem::new(GemmShape::new(262_144, 49_152, 12_288), Dataflow::Os);
    let tuned = MeshSlice::with_tpu_block(16);
    let program = tuned
        .schedule(&cluster, big, cfg.elem_bytes)
        .expect("shape divides the cluster");
    println!(
        "simulating {} ops over {} chips...",
        program.len(),
        cluster.num_chips()
    );
    let report = Engine::new(cluster, cfg).run(&program);
    println!("GPT-3 FF1 forward GeMM on 32x8 TPUv4s with S = 16:");
    println!("  {report}");
    println!(
        "  -> {:.1}% FLOP utilization",
        report.flop_utilization() * 100.0
    );
}
