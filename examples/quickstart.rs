//! Quickstart: lower the MeshSlice 2D GeMM algorithm to its plan IR once,
//! then use that single plan both ways — interpret it functionally on a
//! small simulated mesh (verifying against dense GeMM), and run its
//! timing program at LLM scale with the cluster simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use meshslice::{Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice, SimConfig};
use meshslice_mesh::Torus2d;

fn main() {
    // ---------------------------------------------------------------
    // 1. One plan, two executions. Each algorithm lowers to a single
    //    data-annotated plan: a sim Program whose ops carry the tiles
    //    they move and the partial products they compute. Interpreting
    //    the plan moves real matrices; running it times the same ops.
    // ---------------------------------------------------------------
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let problem = GemmProblem::new(GemmShape::new(64, 64, 128), Dataflow::Os);
    let algo = MeshSlice::new(4, 2); // S = 4 sub-shards, block B = 2
    let plan = algo
        .plan(&mesh, problem, cfg.elem_bytes)
        .expect("problem divides the mesh");

    // Functional mode: the plan's dataflow annotations move real shards.
    let (a, b) = problem.random_inputs(&mesh, 2025);
    let c = plan.interpret(&a, &b).expect("plan is acyclic");
    let reference = problem.reference(&a.assemble(), &b.assemble());
    let err = c.assemble().max_abs_diff(&reference);
    println!(
        "functional check on {} chips: C = A·B, max |error| = {err:.2e}",
        mesh.num_chips()
    );
    assert!(c.assemble().approx_eq(&reference, 1e-4));

    // Timing mode: the very same plan's op graph through the simulator.
    let report = Engine::new(mesh, cfg.clone()).run(plan.program());
    println!(
        "same plan, timed: {} ops, makespan {:.1} us",
        plan.program().len(),
        report.makespan().as_secs() * 1e6
    );

    // ---------------------------------------------------------------
    // 2. The same algorithm at GPT-3 scale (one FC-layer GeMM on 256
    //    TPUv4 chips), executed by the discrete-event simulator.
    // ---------------------------------------------------------------
    let cluster = Torus2d::new(32, 8);
    let big = GemmProblem::new(GemmShape::new(262_144, 49_152, 12_288), Dataflow::Os);
    let tuned = MeshSlice::with_tpu_block(16);
    let big_plan = tuned
        .plan(&cluster, big, cfg.elem_bytes)
        .expect("shape divides the cluster");
    println!(
        "simulating {} ops over {} chips...",
        big_plan.program().len(),
        cluster.num_chips()
    );
    let report = Engine::new(cluster, cfg).run(big_plan.program());
    println!("GPT-3 FF1 forward GeMM on 32x8 TPUv4s with S = 16:");
    println!("  {report}");
    println!(
        "  -> {:.1}% FLOP utilization",
        report.flop_utilization() * 100.0
    );
}
