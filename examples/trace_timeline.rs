//! Visualize MeshSlice's software pipelining: trace one chip's operations
//! through the simulator and print a text timeline showing the partial
//! AllGathers of iteration s+1 running under the partial GeMM of
//! iteration s (the Figure 4 picture, regenerated from the simulator).
//!
//! The timeline is labelled from the plan IR: every timed op carries a
//! data annotation saying which tiles it moves or multiplies, so the
//! trace shows not just *when* each op ran but *what* it did.
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use meshslice::{
    DataOp, Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice, SimConfig,
};
use meshslice_mesh::{ChipId, Torus2d};
use meshslice_sim::OpKind;

fn data_label(op: &DataOp) -> String {
    match op {
        DataOp::Compute { steps } => {
            let s = &steps[0];
            format!(
                "C[r{}] += {:?} of r{} x r{}",
                s.dst.index(),
                s.kind,
                s.lhs.reg.index(),
                s.rhs.reg.index()
            )
        }
        DataOp::SliceCols {
            src, dst, index, ..
        }
        | DataOp::SliceRows {
            src, dst, index, ..
        } => {
            format!("r{} = sub-shard {index} of r{}", dst.index(), src.index())
        }
        DataOp::UnsliceCols {
            src, dst, index, ..
        }
        | DataOp::UnsliceRows {
            src, dst, index, ..
        } => {
            format!("r{}[{index}] = r{}", dst.index(), src.index())
        }
        DataOp::AllGather { src, dst, axis } => {
            format!("r{} = all-gather({axis}) r{}", dst.index(), src.index())
        }
        DataOp::ReduceScatter { src, dst, axis } => {
            format!("r{} = reduce-scatter({axis}) r{}", dst.index(), src.index())
        }
        DataOp::Carries { tile } => match tile.region {
            Some(r) => format!(
                "carries {}x{} tile of r{}",
                r.rows,
                r.cols,
                tile.reg.index()
            ),
            None => format!("carries r{}", tile.reg.index()),
        },
    }
}

fn main() {
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let s_count = 8;
    let problem = GemmProblem::new(GemmShape::new(16_384, 16_384, 16_384), Dataflow::Os);
    let algo = MeshSlice::new(s_count, 8);
    // One lowering: the same plan could also be interpreted functionally
    // (see examples/quickstart.rs) — here we price its timing program.
    let plan = algo.plan(&mesh, problem, cfg.elem_bytes).unwrap();
    let program = plan.program();
    let (report, traces) = Engine::new(mesh, cfg).run_traced(program);
    let makespan = report.makespan().as_secs();

    println!(
        "MeshSlice OS, S = {s_count}, on a 4x4 mesh: {} ops, makespan {:.3} ms, {:.1}% utilization",
        program.len(),
        makespan * 1e3,
        report.flop_utilization() * 100.0
    );
    println!();
    println!("chip 0 timeline (completion times; # marks position in the makespan):");
    let width = 48usize;
    for t in traces.iter().filter(|t| t.chip == ChipId(0)) {
        let op = &program.ops()[t.op.index()];
        let label = match &op.kind {
            OpKind::Gemm { shape } => format!("gemm {shape:?}"),
            OpKind::SliceCopy { bytes } => format!("slice {bytes} B"),
            OpKind::Collective { kind, axis, .. } => format!("{kind:?} {axis}"),
            OpKind::SendRecv { dir, .. } => format!("sendrecv {dir:?}"),
            OpKind::PipelinedBcast { axis, .. } => format!("bcast {axis}"),
        };
        let data = plan
            .annotations_for(t.op)
            .first()
            .map(|a| format!("  [{}]", data_label(&a.data)))
            .unwrap_or_default();
        let pos = ((t.completed.as_secs() / makespan) * width as f64).round() as usize;
        println!(
            "  {:>9.1} us |{}#{}| {label}{data}",
            t.completed.as_secs() * 1e6,
            "-".repeat(pos.min(width)),
            " ".repeat(width - pos.min(width)),
        );
    }
    println!();
    println!("note how AllGather s+1 completes before gemm s does: the collectives");
    println!("pipeline under the compute, in both mesh directions.");
}
