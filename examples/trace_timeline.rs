//! Visualize MeshSlice's software pipelining: trace one chip's operations
//! through the simulator and print a text timeline showing the partial
//! AllGathers of iteration s+1 running under the partial GeMM of
//! iteration s (the Figure 4 picture, regenerated from the simulator).
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use meshslice::{Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice, SimConfig};
use meshslice_mesh::{ChipId, Torus2d};
use meshslice_sim::OpKind;

fn main() {
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let s_count = 8;
    let problem = GemmProblem::new(GemmShape::new(16_384, 16_384, 16_384), Dataflow::Os);
    let algo = MeshSlice::new(s_count, 8);
    let program = algo.schedule(&mesh, problem, cfg.elem_bytes).unwrap();
    let (report, traces) = Engine::new(mesh, cfg).run_traced(&program);
    let makespan = report.makespan().as_secs();

    println!(
        "MeshSlice OS, S = {s_count}, on a 4x4 mesh: {} ops, makespan {:.3} ms, {:.1}% utilization",
        program.len(),
        makespan * 1e3,
        report.flop_utilization() * 100.0
    );
    println!();
    println!("chip 0 timeline (completion times; # marks position in the makespan):");
    let width = 64usize;
    for t in traces.iter().filter(|t| t.chip == ChipId(0)) {
        let op = &program.ops()[t.op.index()];
        let label = match &op.kind {
            OpKind::Gemm { shape } => format!("gemm {shape:?}"),
            OpKind::SliceCopy { bytes } => format!("slice {bytes} B"),
            OpKind::Collective { kind, axis, .. } => format!("{kind:?} {axis}"),
            OpKind::SendRecv { dir, .. } => format!("sendrecv {dir:?}"),
            OpKind::PipelinedBcast { axis, .. } => format!("bcast {axis}"),
        };
        let pos = ((t.completed.as_secs() / makespan) * width as f64).round() as usize;
        println!(
            "  {:>9.1} us |{}#{}| {label}",
            t.completed.as_secs() * 1e6,
            "-".repeat(pos.min(width)),
            " ".repeat(width - pos.min(width)),
        );
    }
    println!();
    println!("note how AllGather s+1 completes before gemm s does: the collectives");
    println!("pipeline under the compute, in both mesh directions.");
}
