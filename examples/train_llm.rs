//! Simulate full LLM training steps across cluster sizes and estimate
//! training throughput: the workload of the paper's introduction — how
//! far can 2D tensor parallelism scale an LLM?
//!
//! ```text
//! cargo run --release --example train_llm [gpt3|megatron]
//! ```

use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::report::{pct, Table};
use meshslice::training::{end_to_end, simulate_fc_step, Algorithm};
use meshslice::SimConfig;

fn main() {
    let model = match std::env::args().nth(1).as_deref() {
        Some("megatron") => LlmConfig::megatron_nlg(),
        _ => LlmConfig::gpt3(),
    };
    let cfg = SimConfig::tpu_v4();
    println!(
        "simulated training of {model} (~{:.0}B params) with MeshSlice 2D TP",
        model.param_count() as f64 / 1e9
    );
    println!();

    let mut table = Table::new(vec![
        "chips".into(),
        "batch".into(),
        "mesh".into(),
        "FC util".into(),
        "step time".into(),
        "tokens/s".into(),
        "vs 8-way 1D TP".into(),
    ]);
    for chips in [16usize, 32, 64, 128, 256] {
        let setup = TrainingSetup::weak_scaling(chips);
        let Some(fc) = simulate_fc_step(&model, setup, chips, Algorithm::MeshSlice, &cfg) else {
            continue;
        };
        let e2e = end_to_end(&model, setup, chips, &fc, &cfg);
        let tokens_per_s = setup.tokens() as f64 / e2e.step.as_secs();

        // Reference point: the conventional 8-way 1D TP cluster would need
        // chips/8 data-parallel replicas; its TP communication alone caps
        // the per-replica speed.
        let oned = simulate_fc_step(&model, setup, 8, Algorithm::OneDimTp, &cfg);
        let speedup = oned.map(|o| {
            // Per-chip FC throughput ratio (both normalized per chip).
            let ms = fc.utilization();
            let od = o.utilization();
            format!("{:.2}x / chip", ms / od)
        });
        table.row(vec![
            chips.to_string(),
            setup.batch.to_string(),
            fc.mesh_shape.to_string(),
            pct(fc.utilization()),
            format!("{:.1} ms", e2e.step.as_secs() * 1e3),
            format!("{tokens_per_s:.0}"),
            speedup.unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{table}");
    println!("weak scaling: batch = chips/2, sequence length 2048 (Megatron-NLG recipe);");
    println!(
        "step time covers all {} transformer blocks, FC + non-FC operations.",
        model.layers
    );
}
