//! Workspace root crate: re-exports the MeshSlice reproduction crates so the
//! integration tests in `tests/` and the runnable binaries in `examples/`
//! can exercise the whole stack through one dependency.

pub use meshslice;
pub use meshslice_collectives as collectives;
pub use meshslice_gemm as gemm;
pub use meshslice_mesh as mesh;
pub use meshslice_sim as sim;
pub use meshslice_telemetry as telemetry;
pub use meshslice_tensor as tensor;
