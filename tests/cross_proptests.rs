//! Cross-crate property tests: random problems through the full stack.

use meshslice::{
    Collective, Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice, SimConfig,
    Summa, Wang,
};
use meshslice_mesh::Torus2d;
use proptest::prelude::*;

fn dataflow() -> impl Strategy<Value = Dataflow> {
    prop_oneof![Just(Dataflow::Os), Just(Dataflow::Ls), Just(Dataflow::Rs)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulated makespan is bounded below by the per-chip ideal compute
    /// time and by the busiest link's transfer time, for every algorithm.
    #[test]
    fn makespan_respects_resource_lower_bounds(
        pr in 1usize..4, pc in 1usize..4,
        df in dataflow(),
        s in 1usize..3,
    ) {
        let mesh = Torus2d::new(pr, pc);
        let cfg = SimConfig::tpu_v4();
        let unit = 8 * pr * pc * s;
        let shape = GemmShape::new(unit * 4, unit * 4, unit * 4);
        let problem = GemmProblem::new(shape, df);
        let algos: Vec<Box<dyn DistributedGemm>> = vec![
            Box::new(MeshSlice::new(s, 4)),
            Box::new(Collective),
            Box::new(Wang::new()),
            Box::new(Summa::auto(&mesh)),
        ];
        let ideal = shape.flops() as f64 / (cfg.peak_flops * mesh.num_chips() as f64);
        for algo in algos {
            let program = algo.schedule(&mesh, problem, 2).unwrap();
            let report = Engine::new(mesh.clone(), cfg.clone()).run(&program);
            prop_assert!(
                report.makespan().as_secs() >= ideal,
                "{}: makespan {} < ideal {ideal}",
                algo.name(),
                report.makespan().as_secs()
            );
            prop_assert!(report.flop_utilization() <= 1.0);
            prop_assert_eq!(report.total_flops(), shape.flops());
        }
    }

    /// Functional execution of the tuned MeshSlice configuration matches
    /// dense GeMM for arbitrary problems.
    #[test]
    fn tuned_meshslice_remains_correct(
        pr in 1usize..4, pc in 1usize..4,
        df in dataflow(),
        s in 1usize..4, blk in 1usize..3,
        seed in any::<u64>(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let unit = pr * pc * s * blk;
        let shape = GemmShape::new(2 * unit, 2 * unit, 2 * unit);
        let problem = GemmProblem::new(shape, df);
        let algo = MeshSlice::new(s, blk);
        let (a, b) = problem.random_inputs(&mesh, seed);
        let c = algo.execute(&mesh, problem, &a, &b).unwrap();
        let reference = problem.reference(&a.assemble(), &b.assemble());
        prop_assert!(c.assemble().approx_eq(&reference, 1e-3));
    }

    /// Slower links never make a simulated program faster (monotonicity
    /// of the hardware model).
    #[test]
    fn slower_links_never_speed_things_up(
        pr in 2usize..4, pc in 2usize..4,
        df in dataflow(),
    ) {
        let mesh = Torus2d::new(pr, pc);
        let unit = 8 * pr * pc;
        let shape = GemmShape::new(unit * 4, unit * 4, unit * 4);
        let problem = GemmProblem::new(shape, df);
        let program = MeshSlice::new(2, 4).schedule(&mesh, problem, 2).unwrap();
        let fast = Engine::new(
            mesh.clone(),
            SimConfig { link_bandwidth: 100e9, ..SimConfig::tpu_v4() },
        )
        .run(&program);
        let slow = Engine::new(
            mesh,
            SimConfig { link_bandwidth: 10e9, ..SimConfig::tpu_v4() },
        )
        .run(&program);
        prop_assert!(slow.makespan() >= fast.makespan());
    }
}
