//! Integration tests spanning the whole stack: tensor substrate →
//! collectives → algorithms → simulator → autotuner → experiments.

use meshslice::autotuner::Autotuner;
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::training::{end_to_end, simulate_fc_step, Algorithm};
use meshslice::{
    Cannon, Collective, Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice,
    SimConfig, Summa, Wang,
};
use meshslice_mesh::Torus2d;

fn tiny_model() -> LlmConfig {
    LlmConfig {
        name: "Tiny".to_string(),
        hidden: 512,
        heads: 8,
        layers: 2,
        ffn_mult: 4,
    }
}

fn tiny_setup() -> TrainingSetup {
    TrainingSetup {
        batch: 4,
        seq_len: 512,
    }
}

#[test]
fn every_2d_algorithm_computes_the_same_product() {
    let mesh = Torus2d::new(2, 2);
    let problem = GemmProblem::new(GemmShape::new(32, 32, 32), Dataflow::Os);
    let (a, b) = problem.random_inputs(&mesh, 42);
    let reference = problem.reference(&a.assemble(), &b.assemble());
    let algos: Vec<Box<dyn DistributedGemm>> = vec![
        Box::new(MeshSlice::new(4, 2)),
        Box::new(Collective),
        Box::new(Wang::new()),
        Box::new(Summa::auto(&mesh)),
        Box::new(Cannon),
    ];
    for algo in algos {
        let c = algo.execute(&mesh, problem, &a, &b).unwrap();
        assert!(
            c.assemble().approx_eq(&reference, 1e-4),
            "{} diverges",
            algo.name()
        );
    }
}

#[test]
fn functional_and_schedule_agree_on_work() {
    // The schedule's GeMM FLOPs must equal the problem's FLOPs — the
    // timing layer simulates exactly the work the functional layer does.
    let mesh = Torus2d::new(2, 4);
    let shape = GemmShape::new(64, 64, 64);
    for df in [Dataflow::Os, Dataflow::Ls, Dataflow::Rs] {
        let problem = GemmProblem::new(shape, df);
        let algos: Vec<Box<dyn DistributedGemm>> = vec![
            Box::new(MeshSlice::new(2, 2)),
            Box::new(Collective),
            Box::new(Wang::new()),
            Box::new(Summa::auto(&mesh)),
        ];
        for algo in algos {
            let program = algo.schedule(&mesh, problem, 2).unwrap();
            assert_eq!(program.total_flops(), shape.flops(), "{} {df}", algo.name());
        }
    }
}

#[test]
fn simulated_time_never_beats_ideal_compute() {
    let mesh = Torus2d::new(2, 2);
    let cfg = SimConfig::tpu_v4();
    let shape = GemmShape::new(1024, 1024, 1024);
    let problem = GemmProblem::new(shape, Dataflow::Os);
    let program = MeshSlice::new(4, 8).schedule(&mesh, problem, 2).unwrap();
    let report = Engine::new(mesh, cfg.clone()).run(&program);
    let ideal = shape.flops() as f64 / (cfg.peak_flops * 4.0);
    assert!(report.makespan().as_secs() >= ideal);
    assert!(report.flop_utilization() <= 1.0);
}

#[test]
fn autotuned_plan_executes_and_beats_untuned() {
    let cfg = SimConfig::tpu_v4();
    let model = tiny_model();
    let setup = tiny_setup();
    let tuner = Autotuner::new(cfg.clone());
    let plan = tuner.tune(&model, setup, 8);
    // Every tuned pass must be schedulable and simulate without deadlock.
    let mesh = Torus2d::from_shape(plan.mesh_shape);
    for layer in &plan.layers {
        for pass in &layer.passes {
            let algo = MeshSlice::with_tpu_block(pass.slice_count);
            let algo = if algo.check(&mesh, pass.problem).is_ok() {
                algo
            } else {
                MeshSlice::new(pass.slice_count, 1)
            };
            let program = algo.schedule(&mesh, pass.problem, cfg.elem_bytes).unwrap();
            let report = Engine::new(mesh.clone(), cfg.clone()).run(&program);
            assert!(report.makespan().as_secs() > 0.0);
        }
    }
}

#[test]
fn meshslice_wins_the_tiny_training_race() {
    let cfg = SimConfig::tpu_v4();
    let model = tiny_model();
    let setup = tiny_setup();
    let ms = simulate_fc_step(&model, setup, 8, Algorithm::MeshSlice, &cfg).unwrap();
    for algo in [Algorithm::Collective, Algorithm::OneDimTp, Algorithm::Fsdp] {
        let other = simulate_fc_step(&model, setup, 8, algo, &cfg).unwrap();
        assert!(
            ms.block_time() <= other.block_time(),
            "MeshSlice {} vs {algo} {}",
            ms.block_time(),
            other.block_time()
        );
    }
}

#[test]
fn end_to_end_composition_is_consistent() {
    let cfg = SimConfig::tpu_v4();
    let model = tiny_model();
    let setup = tiny_setup();
    let fc = simulate_fc_step(&model, setup, 4, Algorithm::MeshSlice, &cfg).unwrap();
    let e2e = end_to_end(&model, setup, 4, &fc, &cfg);
    let per_block = e2e.fc_block.as_secs() + e2e.non_fc_block.as_secs();
    assert!((e2e.step.as_secs() - per_block * model.layers as f64).abs() < 1e-9);
}

#[test]
fn no_overlap_mode_is_never_faster() {
    let model = tiny_model();
    let setup = tiny_setup();
    let overlap = SimConfig::tpu_v4();
    let serial = SimConfig {
        overlap_collectives: false,
        ..SimConfig::tpu_v4()
    };
    for algo in [Algorithm::MeshSlice, Algorithm::Collective, Algorithm::Wang] {
        let fast = simulate_fc_step(&model, setup, 4, algo, &overlap).unwrap();
        let slow = simulate_fc_step(&model, setup, 4, algo, &serial).unwrap();
        assert!(
            slow.block_time() >= fast.block_time(),
            "{algo}: serial {} < overlapped {}",
            slow.block_time(),
            fast.block_time()
        );
    }
}

#[test]
fn deterministic_experiment_results() {
    let cfg = SimConfig::tpu_v4();
    let model = tiny_model();
    let setup = tiny_setup();
    let a = simulate_fc_step(&model, setup, 8, Algorithm::MeshSlice, &cfg).unwrap();
    let b = simulate_fc_step(&model, setup, 8, Algorithm::MeshSlice, &cfg).unwrap();
    assert_eq!(a.block_time(), b.block_time());
    assert_eq!(a.mesh_shape, b.mesh_shape);
}
