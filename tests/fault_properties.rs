//! Property tests for the fault-injection subsystem: seeded determinism,
//! zero-fault transparency, monotone response to fault severity, and
//! composition with the no-collective-overlap execution mode.

use meshslice::{Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice, SimConfig};
use meshslice_faults::{FailureSpec, FaultSpec};
use meshslice_mesh::{LinkDir, Torus2d};
use meshslice_sim::{ClusterProfile, SimReport};
use proptest::prelude::*;

/// Runs one MeshSlice GeMM sized to divide the mesh, under an optional
/// fault profile.
fn run(pr: usize, pc: usize, s: usize, profile: Option<ClusterProfile>) -> SimReport {
    let mesh = Torus2d::new(pr, pc);
    let mut cfg = SimConfig::tpu_v4();
    cfg.faults = profile;
    let unit = 8 * pr * pc * s;
    let problem = GemmProblem::new(GemmShape::new(unit * 4, unit * 4, unit * 4), Dataflow::Os);
    let program = MeshSlice::new(s, 4).schedule(&mesh, problem, 2).unwrap();
    Engine::new(mesh, cfg).run(&program)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same seed yields the same profile and, through the engine, a
    /// bit-for-bit identical report.
    #[test]
    fn same_seed_is_fully_deterministic(
        pr in 1usize..4, pc in 1usize..4, s in 1usize..3,
        severity in 1.0f64..3.0,
        seed in any::<u64>(),
    ) {
        let spec = FaultSpec::stragglers(1, severity)
            .with_link_degradation(0.5, 0.6)
            .with_outages(0.5, 1e-4, 0.25, 1e-2);
        let p1 = spec.sample(pr * pc, seed);
        let p2 = spec.sample(pr * pc, seed);
        prop_assert_eq!(&p1, &p2);
        let r1 = run(pr, pc, s, Some(p1));
        let r2 = run(pr, pc, s, Some(p2));
        prop_assert_eq!(r1, r2);
    }

    /// A zero-fault spec samples the ideal profile, and an ideal profile
    /// reproduces the baseline run exactly.
    #[test]
    fn zero_fault_profile_is_transparent(
        pr in 1usize..4, pc in 1usize..4, s in 1usize..3,
        seed in any::<u64>(),
    ) {
        let profile = FaultSpec::none().sample(pr * pc, seed);
        prop_assert!(profile.is_ideal());
        let baseline = run(pr, pc, s, None);
        let faulted = run(pr, pc, s, Some(profile));
        prop_assert_eq!(baseline, faulted);
    }

    /// For a fixed seed (hence a fixed straggler location), the makespan
    /// is monotone non-decreasing in the straggler's compute slowdown.
    #[test]
    fn makespan_is_monotone_in_straggler_severity(
        pr in 1usize..4, pc in 1usize..4, s in 1usize..3,
        base in 1.0f64..2.0, delta in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mild = FaultSpec::stragglers(1, base).sample(pr * pc, seed);
        let harsh = FaultSpec::stragglers(1, base + delta).sample(pr * pc, seed);
        let m_mild = run(pr, pc, s, Some(mild)).makespan().as_secs();
        let m_harsh = run(pr, pc, s, Some(harsh)).makespan().as_secs();
        prop_assert!(
            m_harsh >= m_mild - 1e-9,
            "severity {} -> {m_mild}, severity {} -> {m_harsh}",
            base, base + delta
        );
    }

    /// For a fixed seed, raising the degraded-link bandwidth floor (more
    /// bandwidth everywhere) never increases the makespan.
    #[test]
    fn makespan_does_not_increase_with_link_bandwidth(
        pr in 1usize..4, pc in 1usize..4, s in 1usize..3,
        low in 0.3f64..0.8, frac in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        let high = low + frac * (0.99 - low);
        let slow = FaultSpec::none().with_link_degradation(1.0, low).sample(pr * pc, seed);
        let fast = FaultSpec::none().with_link_degradation(1.0, high).sample(pr * pc, seed);
        let m_slow = run(pr, pc, s, Some(slow)).makespan().as_secs();
        let m_fast = run(pr, pc, s, Some(fast)).makespan().as_secs();
        prop_assert!(
            m_slow >= m_fast - 1e-9,
            "floor {low} -> {m_slow}, floor {high} -> {m_fast}"
        );
    }

    /// Every sampled outage window lands inside the horizon — even when
    /// the requested duration exceeds the horizon itself — and windows on
    /// one link never overlap.
    #[test]
    fn outage_windows_land_inside_the_horizon(
        chips in 1usize..9,
        per_link in 0.0f64..3.0,
        duration in 0.0f64..2e-2,
        horizon in 1e-3f64..1e-2,
        seed in any::<u64>(),
    ) {
        let profile = FaultSpec::none()
            .with_outages(per_link, duration, 0.25, horizon)
            .sample(chips, seed);
        for chip in 0..chips {
            for dir in LinkDir::ALL {
                let windows = profile.outages(chip, dir);
                for w in windows {
                    prop_assert!(
                        w.start >= 0.0 && w.start < w.end && w.end <= horizon,
                        "window [{}, {}) outside horizon {horizon}",
                        w.start, w.end
                    );
                }
                for pair in windows.windows(2) {
                    prop_assert!(pair[0].end <= pair[1].start);
                }
            }
        }
    }

    /// Permanent-failure draws land inside the horizon, sorted by time,
    /// and the same seed reproduces the same draw bit-for-bit.
    #[test]
    fn failure_draws_land_inside_the_horizon(
        chips in 1usize..17,
        chip_mtbf in 1e-2f64..10.0,
        link_mtbf in 1e-2f64..10.0,
        horizon in 1e-2f64..10.0,
        seed in any::<u64>(),
    ) {
        let spec = FailureSpec::chip_mtbf(chip_mtbf, horizon).with_link_mtbf(link_mtbf);
        prop_assert!(spec.validate().is_ok());
        let draw = spec.sample(chips, seed);
        prop_assert_eq!(&draw, &spec.sample(chips, seed));
        let times = draw.event_times();
        for pair in times.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
        for &at in &times {
            prop_assert!((0.0..horizon).contains(&at), "failure at {at} outside [0, {horizon})");
        }
    }
}

/// Out-of-range permanent-failure specs report a typed error instead of
/// sampling nonsense.
#[test]
fn invalid_failure_specs_are_rejected() {
    assert!(FailureSpec::chip_mtbf(0.0, 10.0).validate().is_err());
    assert!(FailureSpec::chip_mtbf(f64::NAN, 10.0).validate().is_err());
    assert!(FailureSpec::chip_mtbf(10.0, 0.0).validate().is_err());
    assert!(FailureSpec::chip_mtbf(10.0, f64::INFINITY)
        .validate()
        .is_err());
    assert!(FailureSpec::chip_mtbf(10.0, 10.0)
        .with_link_mtbf(-1.0)
        .validate()
        .is_err());
    assert!(FailureSpec::none().validate().is_ok());
}

/// Faults compose with the §5.3 no-collective-overlap mode: a straggler
/// chip serializes its (slowed) compute with its communication, so the
/// makespan is bounded below by the slowed compute alone and the run is
/// never faster than its overlapped counterpart.
#[test]
fn straggler_composes_with_no_overlap_mode() {
    let mesh = Torus2d::new(2, 2);
    let mut cfg = SimConfig::tpu_v4();
    cfg.overlap_collectives = false;
    let unit = 8 * 4 * 2;
    let problem = GemmProblem::new(GemmShape::new(unit * 4, unit * 4, unit * 4), Dataflow::Os);
    let program = MeshSlice::new(2, 4).schedule(&mesh, problem, 2).unwrap();

    let slowdown = 3.0;
    let profile = ClusterProfile::ideal(4).with_compute_slowdown(0, slowdown);

    let base = Engine::new(mesh.clone(), cfg.clone()).run(&program);
    let faulted = Engine::new(mesh.clone(), cfg.clone().with_faults(profile.clone())).run(&program);
    let mut overlapped_cfg = cfg.clone();
    overlapped_cfg.overlap_collectives = true;
    let overlapped = Engine::new(mesh, overlapped_cfg.with_faults(profile)).run(&program);

    // The straggler's serialized compute alone is a lower bound: its
    // fault-free compute busy time (uniform across chips) times the
    // slowdown.
    let compute_per_chip = base.totals().compute.as_secs() / 4.0;
    assert!(
        faulted.makespan().as_secs() >= slowdown * compute_per_chip - 1e-9,
        "faulted no-overlap makespan {} < slowed compute {}",
        faulted.makespan().as_secs(),
        slowdown * compute_per_chip
    );
    assert!(faulted.makespan() > base.makespan());
    // Serializing communication with the slowed compute can only hurt.
    assert!(
        faulted.makespan().as_secs() >= overlapped.makespan().as_secs() - 1e-9,
        "no-overlap {} vs overlapped {}",
        faulted.makespan().as_secs(),
        overlapped.makespan().as_secs()
    );
}
