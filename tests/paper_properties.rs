//! Integration tests asserting the paper's qualitative findings — the
//! *shape* of the evaluation — at test-friendly scales.

use meshslice::costmodel::CostModel;
use meshslice::experiments::{
    comm_model_validation, dataflow_ablation, slice_count_sweep, traffic_25d_example,
};
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::training::{simulate_fc_step, Algorithm};
use meshslice::{Dataflow, GemmProblem, GemmShape, MeshShape, SimConfig};

fn model() -> LlmConfig {
    LlmConfig {
        name: "Tiny".to_string(),
        hidden: 1024,
        heads: 8,
        layers: 2,
        ffn_mult: 4,
    }
}

/// A bandwidth-starved configuration that makes 16 chips behave like the
/// paper's 256 (communication-dominant), keeping tests fast.
fn comm_heavy() -> SimConfig {
    SimConfig {
        link_bandwidth: 8e9,
        ..SimConfig::tpu_v4()
    }
}

#[test]
fn meshslice_beats_all_baselines_when_comm_matters() {
    // Figure 9's headline at miniature scale.
    let cfg = comm_heavy();
    let m = model();
    let setup = TrainingSetup {
        batch: 8,
        seq_len: 512,
    };
    let ms = simulate_fc_step(&m, setup, 16, Algorithm::MeshSlice, &cfg).unwrap();
    for algo in [
        Algorithm::Collective,
        Algorithm::Wang,
        Algorithm::Summa,
        Algorithm::Cannon,
        Algorithm::OneDimTp,
        Algorithm::Fsdp,
    ] {
        let other = simulate_fc_step(&m, setup, 16, algo, &cfg).unwrap();
        assert!(
            ms.block_time().as_secs() < other.block_time().as_secs() * 1.001,
            "MeshSlice {} !< {algo} {}",
            ms.block_time(),
            other.block_time()
        );
    }
}

#[test]
fn one_d_baselines_scale_worse_than_2d() {
    // §2.2: 1D TP traffic grows linearly with chips; 2D only with the
    // ring lengths. Compare utilization decay from 4 to 16 chips.
    let cfg = comm_heavy();
    let m = model();
    let util = |algo, chips| {
        let setup = TrainingSetup {
            batch: chips / 2,
            seq_len: 512,
        };
        simulate_fc_step(&m, setup, chips, algo, &cfg)
            .unwrap()
            .utilization()
    };
    let oned_decay = util(Algorithm::OneDimTp, 4) / util(Algorithm::OneDimTp, 16);
    let ms_decay = util(Algorithm::MeshSlice, 4) / util(Algorithm::MeshSlice, 16);
    assert!(
        oned_decay > ms_decay,
        "1D decay {oned_decay} should exceed MeshSlice decay {ms_decay}"
    );
}

#[test]
fn summa_synchronization_overhead_grows_quadratically() {
    // §2.3.3: SUMMA's total synchronization count grows as O(P²).
    let cm = CostModel::new(SimConfig::tpu_v4());
    // Hold per-chip work constant (weak scaling) and double the ring.
    let t8 = cm.summa_time(
        MeshShape::new(8, 8),
        GemmProblem::new(GemmShape::new(4096, 4096, 4096), Dataflow::Os),
        8,
        2,
    );
    let t16 = cm.summa_time(
        MeshShape::new(16, 16),
        GemmProblem::new(GemmShape::new(8192, 8192, 8192), Dataflow::Os),
        16,
        2,
    );
    // Per-chip compute identical; SUMMA's overhead more than doubles.
    assert!(t16.as_secs() > 1.5 * t8.as_secs());
}

#[test]
fn dataflow_optimization_never_hurts() {
    // Table 2 at miniature scale.
    let row = dataflow_ablation(&model(), 16, &comm_heavy());
    assert!(row.optimized >= row.not_optimized * 0.999);
}

#[test]
fn cost_model_and_simulator_agree_on_the_slice_count_optimum() {
    // Figure 14's MATCH property at a small scale.
    let rows = slice_count_sweep(&model(), MeshShape::new(4, 4), &[1, 2, 4, 8], &comm_heavy());
    let best_est = rows
        .iter()
        .max_by(|a, b| a.estimated.total_cmp(&b.estimated))
        .unwrap();
    let best_sim = rows
        .iter()
        .max_by(|a, b| a.simulated.total_cmp(&b.simulated))
        .unwrap();
    // What matters is rank quality (§5.2): deploying the cost model's
    // choice must cost at most 2% of the simulated optimum.
    assert!(
        best_est.simulated >= 0.98 * best_sim.simulated,
        "cost model picks S={} ({}), simulator S={} ({})",
        best_est.requested_s,
        best_est.simulated,
        best_sim.requested_s,
        best_sim.simulated
    );
    // And slicing must beat no slicing in a comm-heavy regime.
    assert!(best_sim.requested_s > 1);
}

#[test]
fn comm_cost_model_error_is_small() {
    // Figure 15: the linear model fits ring collectives well.
    let rows = comm_model_validation(&[model()], &SimConfig::tpu_v4());
    for r in rows {
        assert!(
            r.error() < 0.15,
            "{}: error {:.1}%",
            r.label,
            r.error() * 100.0
        );
    }
}

#[test]
fn traffic_example_reproduces_the_papers_factors() {
    // §7: ~1.6 GB vs ~336 MB per chip.
    let rows = traffic_25d_example(2);
    let r25 = rows[0].per_chip_bytes as f64;
    let rms = rows[1].per_chip_bytes as f64;
    assert!((r25 / 1.6e9 - 1.0).abs() < 0.15, "2.5D {r25}");
    assert!((rms / 3.36e8 - 1.0).abs() < 0.15, "MeshSlice+DP {rms}");
}

#[test]
fn wang_degenerates_towards_collective_when_fully_comm_bound() {
    // Figure 12 at 256 chips: with nothing to hide behind, overlap stops
    // paying.
    let starved = SimConfig {
        link_bandwidth: 2e9,
        ..SimConfig::tpu_v4()
    };
    let m = model();
    let setup = TrainingSetup {
        batch: 4,
        seq_len: 512,
    };
    let wang = simulate_fc_step(&m, setup, 16, Algorithm::Wang, &starved).unwrap();
    let coll = simulate_fc_step(&m, setup, 16, Algorithm::Collective, &starved).unwrap();
    let ratio = wang.block_time().as_secs() / coll.block_time().as_secs();
    assert!(
        (0.8..1.4).contains(&ratio),
        "Wang/Collective ratio {ratio} should approach 1 when comm-bound"
    );
}
