//! End-to-end resilience: a chip dies mid-run, the engine detects it via
//! the neighbor-sync watchdog, and the training run completes through
//! checkpoint/restart with goodput < 1 — plus the degraded-collectives
//! numerical contract against the dense single-chip reference, and the
//! zero-failure bit-for-bit guarantee.

use meshslice::checkpoint::young_daly_interval;
use meshslice_collectives::{degraded_all_gather, degraded_reduce_scatter};
use meshslice_faults::FailureSpec;
use meshslice_mesh::{ChipId, CommAxis, Torus2d};
use meshslice_recovery::{simulate_recovery, RecoveryParams};
use meshslice_sim::{
    degraded_torus_profile, ChipFailure, Engine, GemmShape, Program, ProgramBuilder, SimConfig,
};
use meshslice_tensor::Matrix;
use proptest::prelude::*;

/// One "training step" program: a ring all-gather feeding a GeMM on every
/// chip, so every chip both computes and synchronizes with neighbors.
fn step_program(mesh: &Torus2d) -> Program {
    let mut b = ProgramBuilder::new(mesh);
    let tag = b.next_tag();
    for chip in mesh.chips() {
        let ag = b.all_gather(chip, tag, CommAxis::InterRow, 1 << 20, &[]);
        b.gemm(chip, GemmShape::new(512, 512, 512), &[ag]);
    }
    b.build()
}

#[test]
fn chip_death_mid_run_completes_via_checkpoint_restart_with_goodput_below_one() {
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let program = step_program(&mesh);
    let engine = Engine::new(mesh.clone(), cfg.clone());

    let baseline = engine.run(&program);
    let step_secs = baseline.makespan().as_secs();
    assert!(step_secs > 0.0);

    // A failure spec whose horizon is the modeled run: 50 steps.
    let num_steps = 50usize;
    let horizon = num_steps as f64 * step_secs;
    let spec = FailureSpec::chip_mtbf(4.0 * horizon, horizon);
    let draw = spec.sample(mesh.num_chips(), 42);
    let first = draw
        .first_chip_failure()
        .expect("cluster MTBF of horizon/4 fails within the horizon at seed 42");

    // Kill that chip mid-step at the engine level: the run aborts, and the
    // watchdog's detection instant trails the failure by at least the
    // neighbor-sync timeout.
    let sync_timeout = 1e-4 * step_secs;
    let failure = ChipFailure {
        chip: first.chip,
        at: 0.35 * step_secs,
    };
    let outcome = engine.run_with_failure(&program, failure, sync_timeout);
    let abort = outcome.aborted().expect("mid-step failure aborts the run");
    assert!(abort.detected_at.as_secs() >= failure.at + sync_timeout);
    assert!(abort.completed_nodes < abort.total_nodes);
    let detect_secs = abort.detected_at.as_secs() - failure.at;

    // Continuation runs on the degraded torus: rings route around the
    // dead chip at the extra-hop bandwidth cost.
    let degraded_profile = degraded_torus_profile(&mesh, first.chip);
    let degraded = Engine::new(mesh.clone(), cfg.clone().with_faults(degraded_profile))
        .run(&program)
        .makespan()
        .as_secs();
    assert!(degraded >= step_secs);

    // Checkpoint at the Young–Daly interval for this cluster's MTBF, then
    // replay the sampled failures through checkpoint/restart.
    let checkpoint_secs = 2.0 * step_secs;
    let tau = young_daly_interval(checkpoint_secs, spec.cluster_mtbf(mesh.num_chips()));
    let checkpoint_every = ((tau / step_secs).round() as usize).clamp(1, num_steps);
    let params = RecoveryParams {
        step_secs,
        degraded_step_secs: degraded,
        num_steps,
        checkpoint_every,
        checkpoint_secs,
        restore_secs: checkpoint_secs,
        detect_secs,
    };
    let report = simulate_recovery(&params, &draw);

    // The run completes every step despite the failure, at goodput < 1.
    assert_eq!(report.steps, num_steps);
    assert!(report.failures_hit >= 1);
    assert!(
        report.goodput() < 1.0,
        "goodput {} should be sub-unity",
        report.goodput()
    );
    assert!(report.goodput() > 0.0);
    assert!(report.lost > 0.0 || report.detection > 0.0);
    let buckets = report.useful
        + report.degraded_excess
        + report.checkpoint
        + report.lost
        + report.detection
        + report.restore;
    assert!(
        (buckets - report.wall_clock).abs() < 1e-9 * report.wall_clock.max(1.0),
        "buckets {buckets} vs wall clock {}",
        report.wall_clock
    );
}

#[test]
fn zero_failure_spec_is_bit_for_bit_identical_to_the_baseline() {
    let mesh = Torus2d::new(4, 4);
    let cfg = SimConfig::tpu_v4();
    let program = step_program(&mesh);
    let engine = Engine::new(mesh.clone(), cfg);

    let baseline = engine.run(&program);
    let draw = FailureSpec::none().sample(mesh.num_chips(), 7);
    assert!(draw.is_empty());

    // With no failure inside the run, the failure path must reproduce the
    // baseline report exactly.
    let beyond = ChipFailure {
        chip: 0,
        at: 2.0 * baseline.makespan().as_secs(),
    };
    let outcome = engine.run_with_failure(&program, beyond, 1e-6);
    assert_eq!(outcome.completed(), Some(&baseline));

    // And the recovery walk of an empty draw is pure useful time.
    let params = RecoveryParams {
        step_secs: 1.0,
        degraded_step_secs: 1.0,
        num_steps: 10,
        checkpoint_every: 0,
        checkpoint_secs: 1.0,
        restore_secs: 1.0,
        detect_secs: 1.0,
    };
    let report = simulate_recovery(&params, &draw);
    assert_eq!(report.goodput(), 1.0);
    assert_eq!(report.failures_hit, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Degraded all-gather equals the dense reference: every survivor of
    /// the re-formed ring holds exactly the concatenation of the
    /// survivors' shards (the redistributed global matrix), healthy rings
    /// are untouched, and the dead slot passes through.
    #[test]
    fn degraded_all_gather_matches_the_dense_reference(
        ring_len in 2usize..5, other in 1usize..4,
        shard_rows in 1usize..4, shard_cols in 1usize..4,
        inter_row in any::<bool>(),
        dead_pick in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let (mesh, axis) = if inter_row {
            (Torus2d::new(ring_len, other), CommAxis::InterRow)
        } else {
            (Torus2d::new(other, ring_len), CommAxis::InterCol)
        };
        let n = mesh.num_chips();
        let dead = ChipId(dead_pick % n);
        let shards: Vec<Matrix> = (0..n)
            .map(|i| Matrix::random(shard_rows, shard_cols, seed ^ (i as u64) << 8))
            .collect();
        let out = degraded_all_gather(&mesh, axis, dead, &shards);
        for ring in mesh.rings(axis) {
            let live: Vec<ChipId> = ring
                .members()
                .iter()
                .copied()
                .filter(|&c| c != dead)
                .collect();
            if live.is_empty() {
                continue;
            }
            let parts: Vec<Matrix> = live.iter().map(|&c| shards[c.index()].clone()).collect();
            // The dense single-chip reference: the ring's matrix assembled
            // in one place from the shards that survive.
            let dense = match axis {
                CommAxis::InterRow => Matrix::vcat(&parts),
                CommAxis::InterCol => Matrix::hcat(&parts),
            };
            for &chip in &live {
                prop_assert_eq!(&out[chip.index()], &dense);
            }
        }
        prop_assert_eq!(&out[dead.index()], &shards[dead.index()]);
    }

    /// Degraded reduce-scatter followed by degraded all-gather equals the
    /// dense single-chip sum of the survivors' partials, on every survivor
    /// of every ring.
    #[test]
    fn degraded_reduce_scatter_matches_the_dense_sum(
        ring_len in 2usize..5, other in 1usize..4,
        rows_unit in 1usize..3, cols in 1usize..4,
        inter_row in any::<bool>(),
        dead_pick in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let (mesh, axis) = if inter_row {
            (Torus2d::new(ring_len, other), CommAxis::InterRow)
        } else {
            (Torus2d::new(other, ring_len), CommAxis::InterCol)
        };
        let n = mesh.num_chips();
        let dead = ChipId(dead_pick % n);
        // Split dimension divisible by both the healthy ring length and
        // the survivor count, so every ring scatters evenly.
        let split = ring_len * (ring_len - 1) * rows_unit;
        let (r, c) = match axis {
            CommAxis::InterRow => (split, cols),
            CommAxis::InterCol => (cols, split),
        };
        let partials: Vec<Matrix> = (0..n)
            .map(|i| Matrix::random(r, c, seed ^ (i as u64) << 8))
            .collect();
        let scattered = degraded_reduce_scatter(&mesh, axis, dead, &partials);
        let gathered = degraded_all_gather(&mesh, axis, dead, &scattered);
        for ring in mesh.rings(axis) {
            let live: Vec<ChipId> = ring
                .members()
                .iter()
                .copied()
                .filter(|&c| c != dead)
                .collect();
            if live.is_empty() {
                continue;
            }
            // The dense single-chip reference: sum the surviving partials
            // in one place.
            let mut dense = partials[live[0].index()].clone();
            for &chip in &live[1..] {
                dense += &partials[chip.index()];
            }
            for &chip in &live {
                prop_assert!(
                    gathered[chip.index()].approx_eq(&dense, 1e-5),
                    "survivor {} diverges from the dense sum by {}",
                    chip.index(),
                    gathered[chip.index()].max_abs_diff(&dense)
                );
            }
        }
        prop_assert_eq!(&scattered[dead.index()], &partials[dead.index()]);
    }
}
