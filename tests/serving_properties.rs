//! Property tests for the serving subsystem: seeded arrival determinism,
//! thread-count invariance of the fleet simulation, KV accounting bounds,
//! survival of an injected chip death, the observability guarantees —
//! tracing never perturbs the report, event streams keep their ordering
//! invariants, and TTFT blame components sum exactly to measured TTFT —
//! and the serving fast path: shared cost tables and shared traces never
//! change a fleet report, and the cached/screened tuner paths reproduce
//! the exhaustive reference.

use std::sync::Arc;

use meshslice::autotuner::Autotuner;
use meshslice::llm::LlmConfig;
use meshslice::memory::{inference_footprint, HBM_BYTES};
use meshslice::{MeshShape, SimConfig};
use meshslice_faults::FailureSpec;
use meshslice_serving::{
    simulate_fleet, simulate_fleet_threads, simulate_fleet_traced, ArrivalSpec, ChaosSpec,
    ChipDeath, CostProfile, CostTableCache, LoadShape, OutcomeKind, Request, RouterPolicy,
    ScreenPolicy, ServingSpec, ServingTuning, ShedPolicy, TuneMode, MAX_PREFILL_TOKENS,
};
use meshslice_telemetry::ServingEvent;
use proptest::prelude::*;

fn tiny() -> LlmConfig {
    LlmConfig {
        name: "Tiny".to_string(),
        hidden: 256,
        heads: 4,
        layers: 2,
        ffn_mult: 4,
    }
}

/// A small fleet spec exercising both replicas of a 2x2 mesh.
fn spec(qps: f64, requests: usize, seed: u64) -> ServingSpec {
    let mut spec = ServingSpec::new(tiny(), MeshShape::new(2, 2), 2, qps);
    spec.num_requests = requests;
    spec.seed = seed;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same (spec, seed) draws a bit-for-bit identical request trace,
    /// for both steady Poisson and replayed bursty shapes.
    #[test]
    fn arrivals_are_deterministic_under_a_fixed_seed(
        qps in 1.0f64..200.0,
        n in 1usize..200,
        seed in any::<u64>(),
        bursty in any::<bool>(),
    ) {
        let mut arr = ArrivalSpec::poisson(qps);
        if bursty {
            arr.shape = LoadShape::bursty();
        }
        let a = arr.generate(n, seed);
        let b = arr.generate(n, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        for w in a.windows(2) {
            prop_assert!(w[0].arrival_secs <= w[1].arrival_secs, "arrivals sorted");
        }
    }

    /// Different seeds draw different traces (same structure, new draws).
    #[test]
    fn different_seeds_draw_different_traces(seed in any::<u64>()) {
        let arr = ArrivalSpec::poisson(25.0);
        let a = arr.generate(64, seed);
        let b = arr.generate(64, seed.wrapping_add(1));
        prop_assert_ne!(a, b);
    }

    /// The fleet report is bit-for-bit identical at any worker count.
    #[test]
    fn fleet_simulation_is_thread_count_invariant(
        qps in 5.0f64..100.0,
        requests in 10usize..80,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let spec = spec(qps, requests, seed);
        let serial = simulate_fleet(&spec, &cfg).expect("tiny fleet simulates");
        for threads in [2usize, 8] {
            let parallel =
                simulate_fleet_threads(&spec, &cfg, threads).expect("tiny fleet simulates");
            prop_assert_eq!(&serial, &parallel, "{} threads diverge from serial", threads);
        }
    }

    /// KV accounting never admits more bytes than the per-replica HBM
    /// budget left after weights — globally and per replica.
    #[test]
    fn kv_peak_never_exceeds_the_hbm_budget(
        qps in 20.0f64..400.0,
        requests in 20usize..120,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let spec = spec(qps, requests, seed);
        let report = simulate_fleet(&spec, &cfg).expect("tiny fleet simulates");
        let model = tiny();
        let budget = inference_footprint(&model, spec.mesh, spec.slice_count, MAX_PREFILL_TOKENS)
            .kv_budget(HBM_BYTES);
        prop_assert_eq!(report.kv_budget_bytes, budget);
        prop_assert!(report.kv_peak_bytes <= budget, "fleet peak over budget");
        for r in &report.per_replica {
            prop_assert!(r.kv_peak_bytes <= budget, "replica peak over budget");
        }
        prop_assert_eq!(report.offered, requests);
        prop_assert_eq!(report.completed + report.rejected, requests);
    }

    /// A chip death mid-trace degrades the fleet but never aborts it:
    /// the simulation completes with nonzero goodput.
    #[test]
    fn chip_death_degrades_but_never_aborts(
        // 60 requests at 50 qps span ~1.2 s of arrivals, so a death in
        // the first half second always lands mid-trace.
        at_secs in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let mut spec = spec(50.0, 60, seed);
        spec.failure = Some(ChipDeath { replica: 0, at_secs });
        let report = simulate_fleet(&spec, &cfg).expect("fleet survives the death");
        prop_assert_eq!(report.failovers, 1);
        prop_assert!(report.goodput_tokens_per_chip_s > 0.0, "goodput must stay nonzero");
        prop_assert!(report.per_replica[0].failed_over);
        prop_assert!(!report.per_replica[1].failed_over);
    }

    /// Recording a trace is observation-only: the traced run's report —
    /// struct and serialized artifact alike — is bit-for-bit identical
    /// to the untraced run, with and without an injected chip death.
    #[test]
    fn tracing_never_perturbs_the_report(
        qps in 5.0f64..300.0,
        requests in 10usize..80,
        seed in any::<u64>(),
        fail in any::<bool>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let mut spec = spec(qps, requests, seed);
        if fail {
            spec.failure = Some(ChipDeath { replica: 0, at_secs: 0.2 });
        }
        let untraced = simulate_fleet(&spec, &cfg).expect("tiny fleet simulates");
        let (traced, trace) =
            simulate_fleet_traced(&spec, &cfg, 2).expect("tiny fleet simulates");
        prop_assert_eq!(&untraced, &traced, "tracing changed the report");
        prop_assert_eq!(
            untraced.to_json().to_string_pretty(),
            traced.to_json().to_string_pretty(),
            "tracing changed the serialized artifact"
        );
        prop_assert!(!trace.is_empty(), "a run with requests must emit events");
    }

    /// Every recorded stream satisfies the trace invariants: the step
    /// lane is ordered and non-overlapping, per-request times are
    /// non-decreasing through the lifecycle, and spans nest.
    #[test]
    fn trace_streams_keep_their_ordering_invariants(
        qps in 5.0f64..500.0,
        requests in 10usize..80,
        seed in any::<u64>(),
        fail in any::<bool>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let mut spec = spec(qps, requests, seed);
        if fail {
            spec.failure = Some(ChipDeath { replica: 0, at_secs: 0.1 });
        }
        let (_, trace) =
            simulate_fleet_traced(&spec, &cfg, 1).expect("tiny fleet simulates");
        if let Err(e) = trace.check_invariants() {
            prop_assert!(false, "invariant violated: {}", e);
        }
    }

    /// The blame decomposition is exact: for every completed request,
    /// queueing + prefill + preemption + failover equals the TTFT the
    /// report measured, each component non-negative.
    #[test]
    fn blame_components_sum_exactly_to_ttft(
        qps in 5.0f64..500.0,
        requests in 10usize..80,
        seed in any::<u64>(),
        fail in any::<bool>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let mut spec = spec(qps, requests, seed);
        if fail {
            spec.failure = Some(ChipDeath { replica: 0, at_secs: 0.15 });
        }
        let (report, trace) =
            simulate_fleet_traced(&spec, &cfg, 1).expect("tiny fleet simulates");
        let blame = trace.blame();
        prop_assert_eq!(blame.requests.len(), report.completed);
        for b in &blame.requests {
            prop_assert!(b.queueing >= -1e-9, "queueing negative: {:?}", b);
            prop_assert!(b.prefill >= 0.0, "prefill negative: {:?}", b);
            prop_assert!(b.preemption >= -1e-9, "preemption negative: {:?}", b);
            prop_assert!(b.failover >= 0.0, "failover negative: {:?}", b);
            prop_assert!(
                (b.components_sum() - b.ttft).abs() < 1e-9,
                "components {} != ttft {} for request {}",
                b.components_sum(), b.ttft, b.id
            );
            let outcome = report
                .outcomes
                .iter()
                .find(|o| o.id == b.id)
                .expect("blamed request has an outcome");
            let measured = outcome.ttft_secs.expect("completed requests have a TTFT");
            prop_assert!(
                (b.ttft - measured).abs() < 1e-9,
                "trace ttft {} != report ttft {} for request {}",
                b.ttft, measured, b.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Handing `simulate_fleet` prebuilt cost tables (a Full-profile
    /// [`CostTableCache`] view) and a predrawn over-long arrival trace
    /// is invisible: the report — struct and serialized artifact — is
    /// bit-for-bit the plain run's, at any thread count, with and
    /// without an injected chip death.
    #[test]
    fn shared_tables_and_traces_never_change_the_report(
        qps in 5.0f64..200.0,
        requests in 10usize..60,
        extra in 0usize..40,
        seed in any::<u64>(),
        fail in any::<bool>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let mut plain = spec(qps, requests, seed);
        if fail {
            plain.failure = Some(ChipDeath { replica: 0, at_secs: 0.2 });
        }
        let baseline = simulate_fleet(&plain, &cfg).expect("tiny fleet simulates");

        let cache = CostTableCache::new(cfg.clone(), CostProfile::Full);
        let costs = cache
            .replica_costs(&tiny(), plain.mesh, plain.slice_count, plain.max_batch)
            .expect("tiny model prices");
        let trace: Arc<[Request]> =
            Arc::from(plain.arrivals.generate(requests + extra, seed));
        let mut shared = plain.clone();
        shared.shared_costs = Some(costs);
        shared.shared_trace = Some(trace);
        for threads in [1usize, 4] {
            let report = simulate_fleet_threads(&shared, &cfg, threads)
                .expect("shared-resource fleet simulates");
            prop_assert_eq!(&baseline, &report, "{} threads", threads);
            prop_assert_eq!(
                baseline.to_json().to_string_pretty(),
                report.to_json().to_string_pretty(),
                "shared resources changed the serialized artifact"
            );
        }
    }

    /// The cached fast tuner path (shared tables, one shared arrival
    /// draw, dedup'd eval units) reproduces the exhaustive reference bit
    /// for bit — the winner and every fully-evaluated candidate, at any
    /// thread count — and the screened path keeps the exhaustive winner
    /// while only dropping candidates, never rescoring survivors.
    #[test]
    fn fast_and_screened_tuning_match_the_exhaustive_reference(
        hidden_pow in 0usize..3,
        layers in 1usize..3,
        double_pool in any::<bool>(),
        qps in 5.0f64..200.0,
        seed in any::<u64>(),
    ) {
        let hidden = 128usize << hidden_pow;
        let chips = if double_pool { 8 } else { 4 };
        let model = LlmConfig {
            name: format!("p{hidden}"),
            hidden,
            heads: 4,
            layers,
            ffn_mult: 4,
        };
        let replicas = chips / 4;
        let requests = 24;
        let tuner = Autotuner::new(SimConfig::tpu_v4());
        let arrivals = ArrivalSpec::poisson(qps);
        let tune = |mode: TuneMode, threads: usize| {
            tuner.tune_serving_mode(
                &model, chips, Some(replicas), &arrivals, 500.0, requests, seed, mode, threads,
            )
        };

        let exhaustive = match tune(TuneMode::Exhaustive, 2) {
            Ok(plan) => plan,
            Err(e) => {
                // Unservable grids must fail identically on both paths.
                prop_assert_eq!(tune(TuneMode::Fast, 2).unwrap_err(), e);
                return Ok(());
            }
        };
        let fast = tune(TuneMode::Fast, 2).expect("fast path agrees on feasibility");
        prop_assert_eq!(&fast.candidates, &exhaustive.candidates);
        prop_assert_eq!(fast.screened_out, 0);
        let serial = tune(TuneMode::Fast, 1).expect("serial fast path tunes");
        prop_assert_eq!(&serial.candidates, &fast.candidates);

        let screened = tune(TuneMode::Screened(ScreenPolicy::auto(requests)), 2)
            .expect("screened path tunes");
        prop_assert_eq!(screened.best(), exhaustive.best());
        prop_assert_eq!(
            screened.candidates.len() + screened.screened_out,
            exhaustive.candidates.len()
        );
        for c in &screened.candidates {
            let twin = exhaustive.candidates.iter().find(|e| {
                e.mesh == c.mesh
                    && e.slice_count == c.slice_count
                    && e.replicas == c.replicas
                    && e.max_batch == c.max_batch
            });
            prop_assert_eq!(twin, Some(c), "survivor rescored by screening");
        }
    }

    /// Arming the whole resilience machinery without ever tripping it —
    /// zero-rate chaos (infinite MTBFs draw no deaths), a router with
    /// nothing to reroute, a shed policy whose thresholds are
    /// unreachable — leaves the fleet report *and* its serialized
    /// artifact byte-identical to the nominal run at any thread count.
    #[test]
    fn idle_resilience_machinery_is_byte_invisible(
        qps in 5.0f64..300.0,
        requests in 10usize..80,
        seed in any::<u64>(),
        chaos_seed in any::<u64>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let plain = spec(qps, requests, seed);
        let nominal = simulate_fleet(&plain, &cfg).expect("tiny fleet simulates");
        let mut guarded = plain.clone();
        guarded.chaos = Some(ChaosSpec::new(FailureSpec::none(), chaos_seed));
        guarded.router = Some(RouterPolicy::for_slo(plain.slo_p99_ttft_ms / 1e3));
        guarded.shed = Some(ShedPolicy {
            queue_depth: usize::MAX,
            ttft_factor: 1e18,
            degraded_max_batch: None,
        });
        for threads in [1usize, 2, 8] {
            let report = simulate_fleet_threads(&guarded, &cfg, threads)
                .expect("guarded fleet simulates");
            prop_assert_eq!(&nominal, &report, "{} threads", threads);
            prop_assert_eq!(
                nominal.to_json().to_string_pretty(),
                report.to_json().to_string_pretty(),
                "idle resilience machinery changed the serialized artifact"
            );
        }
    }

    /// Under real chaos with routing and shedding, every offered request
    /// reaches exactly one terminal outcome — completed, rejected, shed,
    /// or timed out — the report counters partition the trace, and the
    /// recorded event streams neither lose nor duplicate a request id.
    #[test]
    fn chaos_requests_reach_exactly_one_terminal_outcome(
        qps in 20.0f64..200.0,
        requests in 20usize..80,
        seed in any::<u64>(),
        chaos_seed in any::<u64>(),
    ) {
        let cfg = SimConfig::tpu_v4();
        let mut s = spec(qps, requests, seed);
        // MTBF of the arrival span: each 4-chip replica expects ~4
        // deaths over the trace, so most draws fire at least one.
        let horizon = (requests as f64 / qps).max(0.25);
        s.chaos = Some(ChaosSpec::new(FailureSpec::chip_mtbf(horizon, horizon), chaos_seed));
        s.router = Some(RouterPolicy::for_slo(s.slo_p99_ttft_ms / 1e3));
        s.shed = Some(ShedPolicy::for_queue_depth(16).with_degraded_cap(4));
        let (report, trace) = simulate_fleet_traced(&s, &cfg, 2).expect("chaos fleet simulates");
        prop_assert_eq!(
            report.completed + report.rejected + report.shed + report.timed_out,
            report.offered,
            "terminal outcomes must partition the offered load"
        );
        // One outcome per offered id, kind counters corroborating.
        let mut ids: Vec<usize> = report.outcomes.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..requests).collect::<Vec<_>>());
        let count = |kind: OutcomeKind| {
            report.outcomes.iter().filter(|o| o.kind == kind).count()
        };
        prop_assert_eq!(count(OutcomeKind::Completed), report.completed);
        prop_assert_eq!(count(OutcomeKind::Rejected), report.rejected);
        prop_assert_eq!(count(OutcomeKind::Shed), report.shed);
        prop_assert_eq!(count(OutcomeKind::TimedOut), report.timed_out);
        // The trace agrees: exactly one terminal event per id, however
        // many times the router retried it across replicas.
        let mut terminals = vec![0usize; requests];
        let mut retried = 0usize;
        for stream in &trace.events {
            for ev in stream {
                match ev {
                    ServingEvent::Completed { id, .. }
                    | ServingEvent::Rejected { id, .. }
                    | ServingEvent::Shed { id, .. }
                    | ServingEvent::TimedOut { id, .. } => terminals[*id] += 1,
                    ServingEvent::Retried { .. } => retried += 1,
                    _ => {}
                }
            }
        }
        for (id, &n) in terminals.iter().enumerate() {
            prop_assert_eq!(n, 1, "request {} has {} terminal events", id, n);
        }
        prop_assert_eq!(retried, report.retries, "trace retry count matches the report");
    }
}
