//! Property tests for the engine's span accounting and the telemetry
//! layer built on it: every algorithm and dataflow must emit spans that
//! stay inside the run, never double-book an exclusive lane, sum to the
//! report's time-breakdown buckets, and carry a critical path that
//! telescopes to the makespan with non-negative slack everywhere.

use meshslice::{
    Cannon, Collective, Dataflow, DistributedGemm, Engine, GemmProblem, GemmShape, MeshSlice,
    SimConfig, Summa, Wang,
};
use meshslice_mesh::Torus2d;
use meshslice_sim::{NodeSpan, SimReport, SpanTrack};
use meshslice_telemetry::{node_slacks, spans_overlap_and_buckets, CriticalPath};
use proptest::prelude::*;

/// The algorithm zoo, each boxed behind the scheduling trait. Cannon
/// requires a square mesh, so it carries a predicate.
fn algorithms() -> Vec<(&'static str, Box<dyn DistributedGemm>, bool)> {
    vec![
        ("meshslice", Box::new(MeshSlice::new(2, 4)), false),
        ("collective", Box::new(Collective), false),
        ("wang", Box::new(Wang::new()), false),
        ("summa", Box::new(Summa::new(4)), false),
        ("cannon", Box::new(Cannon), true),
    ]
}

/// Schedules and runs one divisible GeMM; `None` when the algorithm
/// rejects the (mesh, dataflow) combination.
fn run_spans(
    algo: &dyn DistributedGemm,
    pr: usize,
    pc: usize,
    dataflow: Dataflow,
) -> Option<(SimReport, Vec<NodeSpan>)> {
    let mesh = Torus2d::new(pr, pc);
    let unit = 8 * pr * pc * 2;
    let problem = GemmProblem::new(GemmShape::new(unit * 4, unit * 4, unit * 4), dataflow);
    let program = algo.schedule(&mesh, problem, 2).ok()?;
    Some(Engine::new(mesh, SimConfig::tpu_v4()).run_spans(&program))
}

/// Asserts the satellite span invariants on one run.
fn check_span_invariants(name: &str, report: &SimReport, spans: &[NodeSpan]) {
    let makespan = report.makespan().as_secs();
    // Every span lies within [0, makespan].
    for s in spans {
        let (a, b) = (s.start.as_secs(), s.end.as_secs());
        assert!(a >= 0.0 && b >= a, "{name}: span out of order {a}..{b}");
        assert!(
            b <= makespan + 1e-9 * makespan.max(1.0),
            "{name}: span end {b} beyond makespan {makespan}"
        );
    }
    // Exclusive lanes (compute, links) are never double-booked. The host
    // lane is intentionally excluded: launches hold no exclusive
    // resource, so concurrent collectives may overlap there.
    let mut by_lane: Vec<((usize, usize), (f64, f64))> = spans
        .iter()
        .filter(|s| !matches!(s.track, SpanTrack::Host))
        .map(|s| {
            (
                (s.chip.index(), s.track.lane()),
                (s.start.as_secs(), s.end.as_secs()),
            )
        })
        .collect();
    by_lane.sort_by(|x, y| x.0.cmp(&y.0).then(x.1 .0.total_cmp(&y.1 .0)));
    for w in by_lane.windows(2) {
        let ((lane_a, (_, end_a)), (lane_b, (start_b, _))) = (&w[0], &w[1]);
        if lane_a == lane_b {
            assert!(
                *start_b >= *end_a - 1e-12,
                "{name}: lane {lane_a:?} double-booked: ends {end_a}, next starts {start_b}"
            );
        }
    }
    // Per-kind span sums reproduce the report's time-breakdown buckets
    // (comm_sync has no busy spans, so it is structurally zero here).
    let (_, buckets) = spans_overlap_and_buckets(spans);
    let totals = report.totals();
    let want = [
        totals.compute.as_secs(),
        totals.slice.as_secs(),
        totals.comm_launch.as_secs(),
        0.0,
        totals.comm_transfer.as_secs(),
    ];
    for (i, (got, want)) in buckets.iter().zip(want).enumerate() {
        assert!(
            (got - want).abs() <= 1e-9 * want.max(1.0),
            "{name}: bucket {i}: spans sum to {got}, report says {want}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite (b): the span invariants hold for every algorithm and
    /// every dataflow it accepts, across mesh shapes.
    #[test]
    fn span_invariants_hold_for_every_algorithm_and_dataflow(
        pr in 1usize..4, pc in 1usize..4,
    ) {
        let mut ran = 0;
        for (name, algo, square_only) in algorithms() {
            if square_only && pr != pc {
                continue;
            }
            for dataflow in [Dataflow::Os, Dataflow::Ls, Dataflow::Rs] {
                if let Some((report, spans)) = run_spans(algo.as_ref(), pr, pc, dataflow) {
                    prop_assert!(!spans.is_empty(), "{} produced no spans", name);
                    check_span_invariants(name, &report, &spans);
                    ran += 1;
                }
            }
        }
        // MeshSlice at least must accept all three dataflows.
        prop_assert!(ran >= 3, "only {} (algorithm, dataflow) combos ran", ran);
    }

    /// The critical path telescopes to the makespan and every node has
    /// non-negative slack, for every mesh shape and slice count.
    #[test]
    fn critical_path_telescopes_and_slack_is_nonnegative(
        pr in 1usize..4, pc in 1usize..4, s in 1usize..3,
    ) {
        let mesh = Torus2d::new(pr, pc);
        let unit = 8 * pr * pc * s;
        let problem =
            GemmProblem::new(GemmShape::new(unit * 4, unit * 4, unit * 4), Dataflow::Os);
        let program = MeshSlice::new(s, 4).schedule(&mesh, problem, 2).unwrap();
        let (report, _, timeline) =
            Engine::new(mesh, SimConfig::tpu_v4()).run_instrumented(&program);
        let path = CriticalPath::extract(&timeline);
        let makespan = report.makespan().as_secs();
        prop_assert!(
            (path.attribution().total() - makespan).abs() <= 1e-9 * makespan.max(1.0),
            "critical path {} vs makespan {}",
            path.attribution().total(),
            makespan
        );
        for (i, slack) in node_slacks(&timeline).iter().enumerate() {
            prop_assert!(*slack >= 0.0, "node {} has negative slack {}", i, slack);
        }
    }

    /// Satellite (c): a serially merged report equals the telemetry
    /// recomputation over the concatenated spans, with the second run's
    /// spans shifted past the first run's makespan.
    #[test]
    fn merged_report_matches_concatenated_span_recomputation(
        pr in 1usize..4, pc in 1usize..4,
        s1 in 1usize..3, s2 in 1usize..3,
    ) {
        let mesh = Torus2d::new(pr, pc);
        let cfg = SimConfig::tpu_v4();
        let mut runs = Vec::new();
        for s in [s1, s2] {
            let unit = 8 * pr * pc * s;
            let problem =
                GemmProblem::new(GemmShape::new(unit * 4, unit * 4, unit * 4), Dataflow::Os);
            let program = MeshSlice::new(s, 4).schedule(&mesh, problem, 2).unwrap();
            runs.push(Engine::new(mesh.clone(), cfg.clone()).run_spans(&program));
        }
        let merged = SimReport::merge_serial(&[runs[0].0.clone(), runs[1].0.clone()]);

        let offset = runs[0].0.makespan();
        let mut spans = runs[0].1.clone();
        spans.extend(runs[1].1.iter().map(|sp| NodeSpan {
            start: sp.start + offset,
            end: sp.end + offset,
            ..*sp
        }));

        let (overlap, buckets) = spans_overlap_and_buckets(&spans);
        prop_assert!(
            (overlap - merged.overlapped_comm().as_secs()).abs() <= 1e-9,
            "overlap {} vs merged {}",
            overlap,
            merged.overlapped_comm().as_secs()
        );
        let totals = merged.totals();
        let want = [
            totals.compute.as_secs(),
            totals.slice.as_secs(),
            totals.comm_launch.as_secs(),
            0.0,
            totals.comm_transfer.as_secs(),
        ];
        for (got, want) in buckets.iter().zip(want) {
            prop_assert!(
                (got - want).abs() <= 1e-9 * want.max(1.0),
                "merged bucket {} vs {}",
                got,
                want
            );
        }
        // The merged makespan bounds every shifted span.
        let last = spans
            .iter()
            .map(|sp| sp.end.as_secs())
            .fold(0.0f64, f64::max);
        prop_assert!(last <= merged.makespan().as_secs() + 1e-9);
    }
}
