//! Determinism contract of the sweep fast paths: thread-count invariance
//! of the parallel drivers, and bit-identical reports from scratch reuse
//! and pre-lowered replay.

use meshslice::autotuner::{Autotuner, RobustObjective};
use meshslice::llm::{LlmConfig, TrainingSetup};
use meshslice::{Dataflow, DistributedGemm, GemmProblem, GemmShape, MeshShape, MeshSlice};
use meshslice_faults::{FailureSpec, FaultSpec, JitterModel};
use meshslice_mesh::Torus2d;
use meshslice_recovery::ResilientTuning;
use meshslice_sim::{Engine, RunScratch, SimConfig};

fn tiny() -> LlmConfig {
    LlmConfig {
        name: "Tiny".to_string(),
        hidden: 256,
        heads: 4,
        layers: 2,
        ffn_mult: 4,
    }
}

#[test]
fn tune_robust_is_thread_count_invariant() {
    let tuner = Autotuner::new(SimConfig::tpu_v4());
    let model = tiny();
    let chips = 4;
    let setup = TrainingSetup::weak_scaling(chips);
    let spec = FaultSpec::stragglers(1, 1.6)
        .with_jitter(JitterModel::LogNormal { sigma: 0.05 })
        .with_link_degradation(0.25, 0.7);
    let profiles = spec.sample_profiles(chips, 42, 3);
    let plans: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            tuner.tune_robust_threads(
                &model,
                setup,
                chips,
                &[1, 2, 4],
                &profiles,
                RobustObjective::P95,
                threads,
            )
        })
        .collect();
    assert_eq!(plans[0], plans[1], "2 threads diverge from serial");
    assert_eq!(plans[0], plans[2], "8 threads diverge from serial");
}

#[test]
fn tune_resilient_is_thread_count_invariant() {
    let tuner = Autotuner::new(SimConfig::tpu_v4());
    let model = tiny();
    let chips = 4;
    let setup = TrainingSetup::weak_scaling(chips);
    let spec = FailureSpec::chip_mtbf(3600.0, 86_400.0).with_link_mtbf(7200.0);
    let plans: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            tuner.tune_resilient_threads(&model, setup, chips, &[1, 2, 4], &spec, threads)
        })
        .collect();
    assert_eq!(plans[0], plans[1], "2 threads diverge from serial");
    assert_eq!(plans[0], plans[2], "8 threads diverge from serial");
}

#[test]
fn logged_tuning_is_thread_count_invariant() {
    let tuner = Autotuner::new(SimConfig::tpu_v4());
    let model = tiny();
    let setup = TrainingSetup::weak_scaling(4);
    let mesh = MeshShape::new(2, 2);
    let outputs: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&threads| {
            tuner
                .tune_on_mesh_logged_threads(&model, setup, mesh, threads)
                .expect("tiny model divides a 2x2 mesh")
        })
        .collect();
    assert_eq!(outputs[0], outputs[1], "2 threads diverge from serial");
    assert_eq!(outputs[0], outputs[2], "8 threads diverge from serial");
}

#[test]
fn scratch_reuse_matches_fresh_runs() {
    let mesh = Torus2d::new(2, 2);
    let cfg = SimConfig::tpu_v4();
    let engine = Engine::new(mesh.clone(), cfg.clone());
    let problems = [
        GemmProblem::new(GemmShape::new(256, 256, 256), Dataflow::Os),
        GemmProblem::new(GemmShape::new(512, 128, 256), Dataflow::Ls),
    ];
    let mut scratch = RunScratch::new();
    for problem in problems {
        let program = MeshSlice::new(2, 4)
            .schedule(&mesh, problem, cfg.elem_bytes)
            .expect("divisible by construction");
        let fresh = engine.run(&program);
        // Reuse the same scratch across programs and back-to-back runs:
        // recycled state must never leak between runs.
        let reused_a = engine.run_with_scratch(&program, &mut scratch);
        let reused_b = engine.run_with_scratch(&program, &mut scratch);
        assert_eq!(fresh, reused_a);
        assert_eq!(fresh, reused_b);
        let lowered = engine.lower_program(&program);
        let replayed = engine.run_lowered_with_scratch(&lowered, &mut scratch);
        assert_eq!(fresh, replayed);
    }
}

#[test]
fn block_draws_match_per_draw_block_simulations() {
    let tuner = Autotuner::new(SimConfig::tpu_v4());
    let model = tiny();
    let chips = 4;
    let setup = TrainingSetup::weak_scaling(chips);
    let mesh = MeshShape::new(2, 2);
    let profiles = FaultSpec::stragglers(1, 1.5).sample_profiles(chips, 7, 3);
    let base = tuner.cost_model().config().clone();
    let mut scratch = RunScratch::new();
    for s in [1usize, 2, 4] {
        let (nominal, per_draw) = tuner
            .simulate_block_draws(&model, setup, mesh, s, &profiles, &mut scratch)
            .expect("tiny model divides a 2x2 mesh");
        let expected_nominal = tuner
            .simulate_block(&model, setup, mesh, s, &base)
            .unwrap()
            .makespan();
        assert_eq!(nominal, expected_nominal, "S={s} nominal mismatch");
        for (i, p) in profiles.iter().enumerate() {
            let cfg = base.clone().with_faults(p.clone());
            let expected = tuner
                .simulate_block(&model, setup, mesh, s, &cfg)
                .unwrap()
                .makespan();
            assert_eq!(per_draw[i], expected, "S={s} draw {i} mismatch");
        }
    }
}
